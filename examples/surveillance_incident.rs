//! Surveillance scenario from the paper's introduction: after an incident,
//! witnesses report *a car and two people* seen together. Find every video
//! segment in which the same car and the same two people appear jointly for
//! at least 3 seconds (90 frames at 30 fps).
//!
//! The footage is produced by the simulated vision stack: a ground-truth
//! scene containing the suspects plus unrelated traffic, observed through a
//! static camera, detected and tracked with occlusion and identity-switch
//! effects.
//!
//! Run with:
//! ```text
//! cargo run --example surveillance_incident
//! ```

use tvq_common::{ClassId, DatasetStats, WindowSpec};
use tvq_engine::{EngineConfig, TemporalVideoQueryEngine};
use tvq_video::{populate_scene, Camera, Motion, Point, Scene, SceneObject, ScenePipeline};

use rand::rngs::StdRng;
use rand::SeedableRng;

// The class ids of the default registry.
const PERSON: ClassId = ClassId(0);
const CAR: ClassId = ClassId(1);

fn staged_scene() -> Scene {
    let mut scene = Scene::new(1920.0, 1080.0, 1200);
    // Background traffic and pedestrians.
    let mut rng = StdRng::seed_from_u64(2024);
    populate_scene(
        &mut scene,
        &mut rng,
        40,
        &[(PERSON, 1.0), (CAR, 1.5), (ClassId(2), 0.3)],
        60..=400,
    );
    // The incident: a parked car and two loitering people share the frame
    // between frames 300 and 700.
    scene.add_object(SceneObject {
        track: Default::default(),
        class: CAR,
        enters_at: 280,
        leaves_at: 720,
        spawn: Point::new(900.0, 600.0),
        width: 120.0,
        height: 70.0,
        motion: Motion::Loiter { step: 0.2 },
        depth: 5.0,
    });
    for (offset, x) in [(300u64, 830.0f64), (320, 1010.0)] {
        scene.add_object(SceneObject {
            track: Default::default(),
            class: PERSON,
            enters_at: offset,
            leaves_at: 700,
            spawn: Point::new(x, 640.0),
            width: 30.0,
            height: 80.0,
            motion: Motion::Loiter { step: 1.0 },
            depth: 4.0,
        });
    }
    scene
}

fn main() {
    // 1. Simulated detection & tracking over the staged scene.
    let pipeline = ScenePipeline::new(staged_scene(), Camera::fixed(1920.0, 1080.0));
    let relation = pipeline.run(7);
    println!(
        "detection/tracking produced: {}",
        DatasetStats::of(&relation)
    );

    // 2. The witness query: same car and same two people jointly for >= 90 of
    //    the last 120 frames (the duration threshold tolerates occlusions).
    let window = WindowSpec::new(120, 90).expect("valid window");
    let mut engine = TemporalVideoQueryEngine::builder(EngineConfig::new(window))
        .with_query_text("car >= 1 AND person >= 2")
        .expect("query parses")
        .build()
        .expect("engine builds");

    // 3. Stream the footage and collect matching segments (runs of frames
    //    with at least one match).
    let mut segments: Vec<(u64, u64)> = Vec::new();
    for frame in relation.frames() {
        let result = engine.observe(frame).expect("in-order frames");
        if result.any() {
            let fid = frame.fid.raw();
            match segments.last_mut() {
                Some(last) if last.1 + 1 == fid => last.1 = fid,
                _ => segments.push((fid, fid)),
            }
        }
    }

    println!("strategy used: {}", engine.strategy());
    if segments.is_empty() {
        println!("no segment matched the witness description");
    } else {
        println!("segments where a car and two people appear jointly (>= 3 s):");
        for (start, end) in &segments {
            println!(
                "  frames {start:>5} - {end:>5}  ({:.1} s - {:.1} s at 30 fps)",
                *start as f64 / 30.0,
                *end as f64 / 30.0
            );
        }
    }
    println!(
        "maintenance: {} states created, {} pruned, peak {} live",
        engine.metrics().states_created,
        engine.metrics().states_pruned,
        engine.metrics().peak_live_states
    );
}
