//! Quickstart: ask a temporal query over a tiny hand-made feed.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The query — "the same car and the same person appear jointly for at least
//! 4 of the last 6 frames" — is evaluated over a 10-frame feed in which a car
//! (object 1) and a pedestrian (object 2) overlap, with the pedestrian
//! briefly occluded.

use tvq_common::{ClassId, FrameId, FrameObjects, ObjectId, WindowSpec};
use tvq_engine::{EngineConfig, TemporalVideoQueryEngine};

fn main() {
    let window = WindowSpec::new(6, 4).expect("valid window");
    let mut engine = TemporalVideoQueryEngine::builder(EngineConfig::new(window))
        .with_query_text("car >= 1 AND person >= 1")
        .expect("query parses")
        .build()
        .expect("engine builds");

    let car = ClassId(1);
    let person = ClassId(0);

    // Frame contents: the car is present throughout; the person appears at
    // frame 2, is occluded at frames 5-6, and reappears afterwards.
    let person_visible = [
        false, false, true, true, true, false, false, true, true, true,
    ];

    println!("frame | objects          | matches");
    println!("------+------------------+--------------------------------------");
    for (fid, &person_here) in person_visible.iter().enumerate() {
        let mut detections = vec![(ObjectId(1), car)];
        if person_here {
            detections.push((ObjectId(2), person));
        }
        let frame = FrameObjects::new(FrameId(fid as u64), detections);
        let description = if person_here {
            "car + person"
        } else {
            "car only"
        };

        let result = engine.observe(&frame).expect("in-order frames");
        if result.any() {
            for m in &result.matches {
                println!(
                    "{fid:5} | {description:16} | query {} matched by {} over {} frames",
                    m.query,
                    m.objects,
                    m.frames.len()
                );
            }
        } else {
            println!("{fid:5} | {description:16} | -");
        }
    }

    println!();
    println!(
        "strategy: {}   states created: {}   states pruned: {}",
        engine.strategy(),
        engine.metrics().states_created,
        engine.metrics().states_pruned
    );
}
