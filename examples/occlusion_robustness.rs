//! Occlusion robustness: why the duration parameter `d` exists.
//!
//! The paper's query semantics deliberately require an MCOS to appear in
//! only `d` of the last `w` frames, because real trackers lose objects
//! behind occlusions. This example generates the same pedestrian-heavy feed
//! (an M2-like profile) with increasing amounts of artificial occlusion (the
//! `po` id-reuse parameter of Section 6.2 / Figure 7) and shows how
//!
//! * a strict query (`d = w`) stops matching as soon as occlusions appear,
//!   while a tolerant one (`d = 0.8 w`) keeps finding the co-occurrences;
//! * the number of states the maintainers manage grows with occlusion, which
//!   is exactly the effect Figure 7 measures.
//!
//! Run with:
//! ```text
//! cargo run --release --example occlusion_robustness
//! ```

use tvq_common::{DatasetStats, QueryId, WindowSpec};
use tvq_core::MaintainerKind;
use tvq_engine::run_workload;
use tvq_query::parse_query;
use tvq_video::{generate_with_id_reuse, DatasetProfile};

fn main() {
    let profile = DatasetProfile::m2().truncated(400);
    let mut registry = tvq_common::ClassRegistry::with_default_classes();
    let query = parse_query("person >= 2", QueryId(0), &mut registry).expect("query parses");

    println!("query: person >= 2 (two pedestrians jointly visible)");
    println!();
    println!("po | occ/obj | duration        | matching frames | peak states (MFS)");
    println!("---+---------+-----------------+-----------------+------------------");

    let window = 60;
    for po in 0..=3u32 {
        let relation = generate_with_id_reuse(&profile, po, 11);
        let stats = DatasetStats::of(&relation);
        for (label, duration) in [("strict d=w", window), ("tolerant d=0.8w", window * 8 / 10)] {
            let spec = WindowSpec::new(window, duration).expect("valid window");
            let report = run_workload(
                &relation,
                std::slice::from_ref(&query),
                spec,
                MaintainerKind::Mfs,
                false,
            )
            .expect("workload runs");
            println!(
                "{po:2} | {:7.2} | {label:15} | {:15} | {:17}",
                stats.occlusions_per_object,
                report.matching_frames,
                report.metrics.peak_live_states
            );
        }
    }

    println!();
    println!(
        "Reading: with occlusions (larger po), the strict query loses matches that the\n\
         tolerant duration threshold retains, and every additional occlusion inflates\n\
         the number of states the maintainer has to manage — the effect Figure 7\n\
         quantifies for NAIVE, MFS and SSG."
    );
}
