//! Traffic monitoring over a Detrac-like feed.
//!
//! Generates a structured relation with the statistics of the paper's D2
//! dataset (dense traffic, static camera), registers several monitoring
//! queries, and compares the three MCOS-generation strategies end to end —
//! the same comparison behind Figure 10 — including what the adaptive
//! selector would have picked.
//!
//! Run with:
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```

use tvq_common::{DatasetStats, QueryId, WindowSpec};
use tvq_core::MaintainerKind;
use tvq_engine::{choose_maintainer, run_workload};
use tvq_query::{parse_query, CnfQuery};
use tvq_video::{generate, DatasetProfile};

fn queries(registry: &mut tvq_common::ClassRegistry) -> Vec<CnfQuery> {
    let texts = [
        // Congestion: at least 8 vehicles sharing the road for 8 seconds.
        "car >= 8",
        // Heavy goods convoy: two trucks and a car travelling together.
        "truck >= 2 AND car >= 1",
        // Bus corridor usage together with pedestrians nearby.
        "bus >= 1 AND person >= 1",
        // A quiet road: at most two cars and nobody on foot.
        "car <= 2 AND person = 0",
    ];
    texts
        .iter()
        .enumerate()
        .map(|(i, text)| parse_query(text, QueryId(i as u32), registry).expect("query parses"))
        .collect()
}

fn main() {
    let profile = DatasetProfile::d2();
    let relation = generate(&profile, 42);
    let stats = DatasetStats::of(&relation);
    println!(
        "dataset {} (synthetic reproduction of Table 6 row)",
        profile.name
    );
    println!("  target:   {}", profile.target_stats());
    println!("  obtained: {stats}");
    println!();

    let mut registry = relation.registry().clone();
    let queries = queries(&mut registry);
    let window = WindowSpec::paper_default(); // w = 300 frames, d = 240 frames

    println!(
        "evaluating {} queries over {} frames (w={}, d={})",
        queries.len(),
        relation.num_frames(),
        window.window(),
        window.duration()
    );
    println!();
    println!("method | total time | per frame | matches | states created | states pruned");
    println!("-------+------------+-----------+---------+----------------+--------------");
    for kind in MaintainerKind::PRODUCTION {
        let report = run_workload(&relation, &queries, window, kind, false).expect("workload runs");
        println!(
            "{:6} | {:>10.2?} | {:>9.1?} | {:7} | {:14} | {:13}",
            report.strategy,
            report.elapsed,
            report.per_frame(),
            report.total_matches,
            report.metrics.states_created,
            report.metrics.states_pruned
        );
    }
    println!();
    println!(
        "adaptive selector recommends: {} (Obj/F = {:.1}, F/Obj = {:.1})",
        choose_maintainer(&stats),
        stats.objects_per_frame,
        stats.frames_per_object
    );
}
