//! Model-based conformance replay: every action sequence the traversal
//! enumerates is replayed through the **real** implementations, and the
//! observable state is compared against the model's canonical state.
//!
//! Three replay harnesses exist, at increasing integration depth:
//!
//! * [`replay_component`] drives `ObjectLifecycle` + `SetInterner` +
//!   shared `ClassStore` directly — the protocol objects themselves, with
//!   nothing in between;
//! * [`replay_engine`] drives two full [`TemporalVideoQueryEngine`]s
//!   sharing one class store, exercising the same protocol end to end
//!   (frame ingestion, MFS maintenance, alias translation at the result
//!   boundary, `compact_now` epochs);
//! * [`replay_catalog`] drives `PrunerVerdictCache` + `SetInterner`
//!   against a version-sensitive probe pruner, checking the catalog-swap
//!   coherence property on the real cache.
//!
//! Quantities the models normalise away — generation numbers, lifetime
//! counters (`generations_started`, `tracks_ended`, `retired_total`) — are
//! verified here instead, along the concrete run. Because the traversal
//! hands *every* edge to the replay hook and every path prefix is itself
//! an edge, each harness compares the full canonical state only at the end
//! of its path; intermediate states were already compared when their own
//! (shorter) edges replayed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};

use tvq_common::{
    shared_class_store, ClassId, FrameId, FrameObjects, FxHashMap, FxHashSet, ObjectId, ObjectSet,
    SetId, SetInterner, SharedClassMap, WindowSpec,
};
use tvq_core::{
    CompactionPolicy, MaintainerKind, ObjectLifecycle, PrunerVerdictCache, StatePruner,
};
use tvq_engine::{EngineConfig, TemporalVideoQueryEngine};

use crate::catalog_model::{verdict, CatalogAction, CatalogState, OBJECTS, VMOD};
use crate::lifecycle_model::{
    Internal, LifecycleAction, LifecycleModel, LifecycleState, CLASSES, EXT_IDS, FEEDS, WINDOW,
};
use crate::machine::Machine;

/// Real internal ids at or above this value are store-minted aliases (the
/// model's external universe is `0..EXT_IDS`; aliases are minted from the
/// top of the 32-bit space downward).
const ALIAS_BASE: u32 = EXT_IDS as u32;

fn relevant_classes() -> FxHashSet<ClassId> {
    (0..CLASSES).map(|class| ClassId(class as u16)).collect()
}

/// Maps real internal ids to canonical model internals. The map is built
/// per observation: live alias ids sorted *descending* reproduce mint
/// order (the store mints downward), which is exactly the model's dense
/// mint-order labelling.
struct AliasLabels {
    descending: Vec<u32>,
}

impl AliasLabels {
    fn new(mut raws: Vec<u32>) -> Self {
        raws.sort_unstable_by(|a, b| b.cmp(a));
        raws.dedup();
        AliasLabels { descending: raws }
    }

    fn canonical(&self, id: ObjectId) -> Result<Internal, String> {
        let raw = id.raw();
        if raw < ALIAS_BASE {
            return Ok(Internal::Ext(raw as u8));
        }
        self.descending
            .iter()
            .position(|&r| r == raw)
            .map(|index| Internal::Alias(index as u8))
            .ok_or_else(|| format!("internal id {raw} is not a live alias"))
    }
}

/// Gathers the live alias ids visible through a set of lifecycles and
/// their shared store.
fn alias_labels<'a>(
    store: &SharedClassMap,
    lifecycles: impl Iterator<Item = &'a ObjectLifecycle>,
) -> AliasLabels {
    let mut raws: Vec<u32> = store
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .snapshot()
        .iter()
        .map(|&(id, _, _)| id.raw())
        .filter(|&raw| raw >= ALIAS_BASE)
        .collect();
    for lifecycle in lifecycles {
        raws.extend(
            lifecycle
                .registered_ids()
                .iter()
                .map(|id| id.raw())
                .filter(|&raw| raw >= ALIAS_BASE),
        );
        raws.extend(
            lifecycle
                .alias_entries()
                .iter()
                .map(|(alias, _)| alias.raw()),
        );
    }
    AliasLabels::new(raws)
}

/// Builds the canonical observation of a shared store + per-feed
/// lifecycles. `windows` supplies each feed's window content (the window
/// lives outside the lifecycle: in the harness for component replay, in
/// the model for engine replay where the maintainer's window is not
/// directly observable).
fn observe_canonical(
    store: &SharedClassMap,
    lifecycles: &[&ObjectLifecycle],
    windows: &[Vec<Option<ObjectId>>],
    model_windows: Option<&[Vec<Option<Internal>>]>,
) -> Result<LifecycleState, String> {
    let labels = alias_labels(store, lifecycles.iter().copied());
    let mut state = LifecycleState::default();
    let snapshot = store
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .snapshot();
    for (id, class, refs) in snapshot {
        state
            .store
            .push((labels.canonical(id)?, class.0 as u8, refs as u8));
    }
    state.store.sort_unstable();
    for (f, lifecycle) in lifecycles.iter().enumerate() {
        let feed = &mut state.feeds[f];
        for ext in 0..EXT_IDS {
            if let Some(binding) = lifecycle.binding_of(ObjectId(ext as u32)) {
                feed.bindings.push((
                    ext,
                    labels.canonical(binding.internal)?,
                    binding.class.0 as u8,
                ));
            }
        }
        for (alias, external) in lifecycle.alias_entries() {
            let Internal::Alias(label) = labels.canonical(alias)? else {
                return Err(format!("alias entry {alias:?} is not in the alias range"));
            };
            feed.aliases.push((label, external.raw() as u8));
        }
        feed.aliases.sort_unstable();
        for id in lifecycle.registered_ids() {
            feed.registered.push(labels.canonical(id)?);
        }
        feed.registered.sort_unstable();
        feed.window = match model_windows {
            Some(model) => model[f].clone(),
            None => windows[f]
                .iter()
                .map(|slot| slot.map(|id| labels.canonical(id)).transpose())
                .collect::<Result<_, _>>()?,
        };
    }
    Ok(state)
}

fn expect_eq<T: PartialEq + std::fmt::Debug>(
    what: &str,
    real: &T,
    model: &T,
) -> Result<(), String> {
    if real == model {
        Ok(())
    } else {
        Err(format!(
            "{what} diverged\n    real:  {real:?}\n    model: {model:?}"
        ))
    }
}

// ---------------------------------------------------------------------------
// Component-level replay: ObjectLifecycle + SetInterner + shared ClassStore.
// ---------------------------------------------------------------------------

struct ComponentFeed {
    lifecycle: ObjectLifecycle,
    interner: SetInterner,
    /// The window as `(state handle, frame's internal id)` pairs.
    window: VecDeque<(SetId, Option<ObjectId>)>,
    /// Singleton handle per live internal id — used to assert that every
    /// retired id's handle dies in the remap and every surviving id's
    /// handle remaps.
    interned: Vec<(ObjectId, SetId)>,
    /// Last generation number seen per external id (monotonicity probe).
    last_generation: FxHashMap<u8, u64>,
    expected_generations: u64,
    expected_ends: u64,
    expected_retired: u64,
}

impl ComponentFeed {
    fn new(store: &SharedClassMap) -> Self {
        ComponentFeed {
            lifecycle: ObjectLifecycle::new(Arc::clone(store)),
            interner: SetInterner::new(),
            window: VecDeque::new(),
            interned: Vec::new(),
            last_generation: FxHashMap::default(),
            expected_generations: 0,
            expected_ends: 0,
            expected_retired: 0,
        }
    }

    fn check_counters(&self) -> Result<(), String> {
        expect_eq(
            "generations_started",
            &self.lifecycle.generations_started(),
            &self.expected_generations,
        )?;
        expect_eq(
            "tracks_ended",
            &self.lifecycle.tracks_ended(),
            &self.expected_ends,
        )?;
        expect_eq(
            "retired_total",
            &self.lifecycle.retired_total(),
            &self.expected_retired,
        )?;
        // The load-bearing agreement: the interner's universe and the
        // lifecycle's registered set are the same set of ids — this is what
        // makes each compaction epoch's retire set total.
        expect_eq(
            "interner universe vs lifecycle registered set",
            &self.interner.universe_object_ids(),
            &self.lifecycle.registered_ids(),
        )
    }
}

/// Replays one enumerated action sequence through the real protocol
/// objects, checking counters at every step and the full canonical state
/// at the end of the path.
pub fn replay_component(path: &[LifecycleAction]) -> Result<(), String> {
    let model = LifecycleModel;
    let mut state = model.initial();
    let store = shared_class_store();
    let mut feeds: Vec<ComponentFeed> = (0..FEEDS).map(|_| ComponentFeed::new(&store)).collect();
    let relevant = relevant_classes();

    for (step, action) in path.iter().enumerate() {
        let fail = |message: String| format!("step {} ({action:?}): {message}", step + 1);
        match *action {
            LifecycleAction::Observe { feed, ext, class } => {
                let new_generation =
                    LifecycleModel::observe_is_new_generation(&state, feed, ext, class);
                let harness = &mut feeds[feed as usize];
                let mut out = Vec::new();
                harness.lifecycle.resolve_frame(
                    &[(ObjectId(ext as u32), ClassId(class as u16))],
                    &relevant,
                    &mut out,
                );
                if out.len() != 1 {
                    return Err(fail(format!(
                        "resolved {} internals, expected 1",
                        out.len()
                    )));
                }
                let internal = out[0];
                if new_generation {
                    harness.expected_generations += 1;
                }
                let binding = harness
                    .lifecycle
                    .binding_of(ObjectId(ext as u32))
                    .ok_or_else(|| fail("no live binding after observe".into()))?;
                if binding.internal != internal {
                    return Err(fail(format!(
                        "binding internal {:?} != resolved {internal:?}",
                        binding.internal
                    )));
                }
                // Generation numbers are engine-wide monotone: a new
                // generation is strictly newer than anything this external
                // id carried before; a fast-path hit keeps it unchanged.
                match harness.last_generation.get(&ext) {
                    Some(&previous) if new_generation && binding.generation <= previous => {
                        return Err(fail(format!(
                            "generation did not advance: {} after {previous}",
                            binding.generation
                        )));
                    }
                    Some(&previous) if !new_generation && binding.generation != previous => {
                        return Err(fail(format!(
                            "fast path changed the generation: {} != {previous}",
                            binding.generation
                        )));
                    }
                    _ => {}
                }
                harness.last_generation.insert(ext, binding.generation);
                let sid = harness.interner.intern(&ObjectSet::from_ids([internal]));
                if !harness.interned.iter().any(|&(id, _)| id == internal) {
                    harness.interned.push((internal, sid));
                }
                harness.window.push_back((sid, Some(internal)));
                if harness.window.len() > WINDOW {
                    harness.window.pop_front();
                }
                harness.check_counters().map_err(fail)?;
            }
            LifecycleAction::EndTrack { feed, ext } => {
                if state.feeds[feed as usize]
                    .bindings
                    .iter()
                    .any(|&(e, _, _)| e == ext)
                {
                    feeds[feed as usize].expected_ends += 1;
                }
                let harness = &mut feeds[feed as usize];
                harness.lifecycle.end_tracks(&[ObjectId(ext as u32)]);
                harness.window.push_back((SetId::EMPTY, None));
                if harness.window.len() > WINDOW {
                    harness.window.pop_front();
                }
                harness.check_counters().map_err(fail)?;
            }
            LifecycleAction::Compact { feed } => {
                let model_feed = &state.feeds[feed as usize];
                let mut survivors: Vec<Internal> =
                    model_feed.window.iter().flatten().copied().collect();
                survivors.sort_unstable();
                survivors.dedup();
                let expected_retired_now = (model_feed.registered.len() - survivors.len()) as u64;

                let harness = &mut feeds[feed as usize];
                let live: Vec<SetId> = harness.window.iter().map(|&(sid, _)| sid).collect();
                let mut table = harness.interner.compact(&live);
                let retired = table.take_retired_objects();
                expect_eq(
                    "epoch retire-set size",
                    &(retired.len() as u64),
                    &expected_retired_now,
                )
                .map_err(&fail)?;
                // No stale SetId survives remap: retired ids' handles must
                // die, surviving ids' handles must re-key.
                let mut interned = std::mem::take(&mut harness.interned);
                interned.retain(|&(id, _)| !retired.contains(&id));
                for (id, sid) in &mut interned {
                    *sid = table.remap(*sid).ok_or_else(|| {
                        fail(format!("live id {id:?} lost its handle in the remap"))
                    })?;
                }
                harness.interned = interned;
                for (sid, _) in harness.window.iter_mut() {
                    *sid = table
                        .remap(*sid)
                        .ok_or_else(|| fail("window handle went stale across remap".into()))?;
                }
                // Negative-control mutant: skip the lifecycle retirement on
                // feed 1 only. A feed-*asymmetric* planted bug — the mutant
                // suite asserts the symmetry-reduced traversal still finds
                // it, proving the quotient explores concrete runs on both
                // feeds, not just the representative's feed 0.
                #[cfg(feature = "check-mutants")]
                let skip_retire = feed == 1 && tvq_core::mutants::asymmetric_retire();
                #[cfg(not(feature = "check-mutants"))]
                let skip_retire = false;
                if !skip_retire {
                    harness.lifecycle.retire(&retired);
                }
                harness.expected_retired += retired.len() as u64;
                harness.check_counters().map_err(fail)?;
            }
        }
        state = model
            .transition(&state, action)
            .map_err(|e| fail(format!("model rejected replayed action: {e}")))?;
    }

    let lifecycles: Vec<&ObjectLifecycle> = feeds.iter().map(|f| &f.lifecycle).collect();
    let windows: Vec<Vec<Option<ObjectId>>> = feeds
        .iter()
        .map(|f| f.window.iter().map(|&(_, slot)| slot).collect())
        .collect();
    let observed = observe_canonical(&store, &lifecycles, &windows, None)?;
    expect_eq("canonical state after path", &observed, &state)
}

// ---------------------------------------------------------------------------
// Engine-level replay: two full engines sharing one class store.
// ---------------------------------------------------------------------------

fn build_engine(store: &SharedClassMap) -> Result<TemporalVideoQueryEngine, String> {
    // Window = the model's WINDOW frames, duration 1, MFS, pruning off (a
    // terminated state would leave the window early and break the
    // model/maintainer window correspondence), auto-compaction disabled
    // (check_interval never reached) so epochs run exactly at the model's
    // Compact actions via `compact_now`.
    let config =
        EngineConfig::new(WindowSpec::new(WINDOW, 1).map_err(|e| format!("window spec: {e}"))?)
            .with_maintainer(MaintainerKind::Mfs)
            .with_pruning(false)
            .with_compaction(Some(CompactionPolicy {
                check_interval: u64::MAX,
                max_live_ratio: 1.0,
                min_interned: 0,
            }));
    TemporalVideoQueryEngine::builder(config)
        .with_class_store(Arc::clone(store))
        .with_query_text("person >= 1")
        .and_then(|builder| builder.with_query_text("car >= 1"))
        .and_then(|builder| builder.build())
        .map_err(|e| format!("engine build: {e}"))
}

/// Replays one enumerated action sequence through two real engines
/// sharing a class store. Model class `0` is `person`, class `1` is `car`
/// (the default registry's first two classes); each `Observe` becomes a
/// single-detection frame, each `EndTrack` an empty frame carrying the
/// end-of-track event, each `Compact` a `compact_now` call.
pub fn replay_engine(path: &[LifecycleAction]) -> Result<(), String> {
    let model = LifecycleModel;
    let mut state = model.initial();
    let store = shared_class_store();
    let mut engines = Vec::with_capacity(FEEDS);
    for _ in 0..FEEDS {
        engines.push(build_engine(&store)?);
    }
    let mut next_fid = [1u64; FEEDS];
    let mut last_generation: Vec<FxHashMap<u8, u64>> =
        (0..FEEDS).map(|_| FxHashMap::default()).collect();
    let mut expected_generations = [0u64; FEEDS];
    let mut expected_ends = [0u64; FEEDS];
    let mut expected_retired = [0u64; FEEDS];

    for (step, action) in path.iter().enumerate() {
        let fail = |message: String| format!("step {} ({action:?}): {message}", step + 1);
        match *action {
            LifecycleAction::Observe { feed, ext, class } => {
                let f = feed as usize;
                let new_generation =
                    LifecycleModel::observe_is_new_generation(&state, feed, ext, class);
                let frame = FrameObjects::new(
                    FrameId(next_fid[f]),
                    vec![(ObjectId(ext as u32), ClassId(class as u16))],
                );
                next_fid[f] += 1;
                let result = engines[f]
                    .observe(&frame)
                    .map_err(|e| fail(e.to_string()))?;
                // Matches must report tracker ids as ingested: any raw id
                // in the alias range leaked an untranslated internal.
                for m in &result.matches {
                    if let Some(id) = m.objects.iter().find(|id| id.raw() >= ALIAS_BASE) {
                        return Err(fail(format!(
                            "match for query {:?} leaked internal alias id {id:?}",
                            m.query
                        )));
                    }
                }
                if new_generation {
                    expected_generations[f] += 1;
                }
                let lifecycle = engines[f].lifecycle();
                let binding = lifecycle
                    .binding_of(ObjectId(ext as u32))
                    .ok_or_else(|| fail("no live binding after observe".into()))?;
                match last_generation[f].get(&ext) {
                    Some(&previous) if new_generation && binding.generation <= previous => {
                        return Err(fail(format!(
                            "generation did not advance: {} after {previous}",
                            binding.generation
                        )));
                    }
                    Some(&previous) if !new_generation && binding.generation != previous => {
                        return Err(fail(format!(
                            "fast path changed the generation: {} != {previous}",
                            binding.generation
                        )));
                    }
                    _ => {}
                }
                last_generation[f].insert(ext, binding.generation);
                expect_eq(
                    "generations_started",
                    &lifecycle.generations_started(),
                    &expected_generations[f],
                )
                .map_err(fail)?;
            }
            LifecycleAction::EndTrack { feed, ext } => {
                let f = feed as usize;
                if state.feeds[f].bindings.iter().any(|&(e, _, _)| e == ext) {
                    expected_ends[f] += 1;
                }
                let frame = FrameObjects::new(FrameId(next_fid[f]), Vec::new())
                    .with_track_ends(vec![ObjectId(ext as u32)]);
                next_fid[f] += 1;
                engines[f]
                    .observe(&frame)
                    .map_err(|e| fail(e.to_string()))?;
                expect_eq(
                    "tracks_ended",
                    &engines[f].lifecycle().tracks_ended(),
                    &expected_ends[f],
                )
                .map_err(fail)?;
            }
            LifecycleAction::Compact { feed } => {
                let f = feed as usize;
                let model_feed = &state.feeds[f];
                let mut survivors: Vec<Internal> =
                    model_feed.window.iter().flatten().copied().collect();
                survivors.sort_unstable();
                survivors.dedup();
                let retiring = (model_feed.registered.len() - survivors.len()) as u64;
                let ran = engines[f].compact_now();
                if retiring > 0 && !ran {
                    return Err(fail(format!(
                        "model retires {retiring} ids but the engine declined to compact"
                    )));
                }
                expected_retired[f] += retiring;
                expect_eq(
                    "retired_total",
                    &engines[f].lifecycle().retired_total(),
                    &expected_retired[f],
                )
                .map_err(fail)?;
            }
        }
        state = model
            .transition(&state, action)
            .map_err(|e| fail(format!("model rejected replayed action: {e}")))?;
        // The maintainer's live states are the distinct non-empty window
        // frames (singleton detections, MFS): cheap per-step probe that the
        // engine's window tracks the model's.
        let f = match *action {
            LifecycleAction::Observe { feed, .. }
            | LifecycleAction::EndTrack { feed, .. }
            | LifecycleAction::Compact { feed } => feed as usize,
        };
        let mut distinct: Vec<Internal> = state.feeds[f].window.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        expect_eq("live_states", &engines[f].live_states(), &distinct.len())
            .map_err(|e| format!("step {} ({action:?}): {e}", step + 1))?;
    }

    let lifecycles: Vec<&ObjectLifecycle> = engines.iter().map(|e| e.lifecycle()).collect();
    let model_windows: Vec<Vec<Option<Internal>>> =
        state.feeds.iter().map(|feed| feed.window.clone()).collect();
    let observed = observe_canonical(&store, &lifecycles, &[], Some(&model_windows))?;
    expect_eq("canonical state after path", &observed, &state)
}

// ---------------------------------------------------------------------------
// Catalog-swap replay: PrunerVerdictCache + SetInterner + probe pruner.
// ---------------------------------------------------------------------------

/// A version-sensitive pruner: its verdict is a function of the object set
/// *and* the current catalog version, so any verdict consulted across a
/// swap is observably wrong. Mirrors [`verdict`] exactly.
struct ProbePruner {
    version: Arc<AtomicU64>,
}

impl StatePruner for ProbePruner {
    fn should_terminate(&self, objects: &ObjectSet) -> bool {
        let version = self.version.load(Ordering::Relaxed);
        let sum: u64 = objects.iter().map(|id| id.raw() as u64 + 1).sum();
        (sum + version).is_multiple_of(VMOD as u64)
    }
}

fn mask_set(mask: u8) -> ObjectSet {
    ObjectSet::from_raw((0..OBJECTS as u32).filter(|bit| mask & (1 << bit) != 0))
}

/// Replays one enumerated catalog action sequence through the real
/// verdict cache, checking after every step that each cached verdict
/// agrees with what the *current* version would produce — i.e. that no
/// verdict computed under version `v` is consulted under `v' != v`.
pub fn replay_catalog(path: &[CatalogAction]) -> Result<(), String> {
    let model = crate::catalog_model::CatalogModel;
    let mut state: CatalogState = model.initial();
    let version = Arc::new(AtomicU64::new(0));
    let pruner = ProbePruner {
        version: Arc::clone(&version),
    };
    let mut interner = SetInterner::new();
    let mut cache = PrunerVerdictCache::new();
    let mut sids: Vec<Option<SetId>> = vec![None; crate::catalog_model::MASKS as usize];
    let mut terminated_counter = 0u64;

    let sid_of = |interner: &mut SetInterner, sids: &mut Vec<Option<SetId>>, mask: u8| -> SetId {
        let slot = &mut sids[mask as usize - 1];
        match *slot {
            Some(sid) => sid,
            None => {
                let sid = interner.intern(&mask_set(mask));
                *slot = Some(sid);
                sid
            }
        }
    };

    for (step, action) in path.iter().enumerate() {
        let fail = |message: String| format!("step {} ({action:?}): {message}", step + 1);
        match *action {
            CatalogAction::Judge(mask) => {
                let sid = sid_of(&mut interner, &mut sids, mask);
                let got = cache.judge(&pruner, &interner, sid, &mut terminated_counter);
                let expected = verdict(mask, state.vmod);
                if got != expected {
                    return Err(fail(format!(
                        "verdict {got} for mask {mask:#05b}, current catalog says {expected} \
                         (stale verdict consulted across a version boundary)"
                    )));
                }
            }
            CatalogAction::Observe(mask) => {
                sid_of(&mut interner, &mut sids, mask);
            }
            CatalogAction::Swap => {
                version.fetch_add(1, Ordering::Relaxed);
                cache.clear();
            }
            CatalogAction::Compact => {
                let live: Vec<SetId> = state
                    .window
                    .iter()
                    .map(|&mask| {
                        sids[mask as usize - 1]
                            .ok_or_else(|| format!("window mask {mask} was never interned"))
                    })
                    .collect::<Result<_, _>>()
                    .map_err(&fail)?;
                let table = interner.compact(&live);
                cache.remap(&table);
                for (index, slot) in sids.iter_mut().enumerate() {
                    let mask = index as u8 + 1;
                    let survives = state.window.contains(&mask);
                    *slot = match (*slot, survives) {
                        (Some(sid), true) => Some(table.remap(sid).ok_or_else(|| {
                            format!("window handle for mask {mask} went stale across remap")
                        })?),
                        (Some(sid), false) => {
                            if let Some(kept) = table.remap(sid) {
                                return Err(format!(
                                    "retired handle for mask {mask} survived remap as {kept:?}"
                                ));
                            }
                            None
                        }
                        (None, _) => None,
                    };
                }
            }
        }
        state = model
            .transition(&state, action)
            .map_err(|e| fail(format!("model rejected replayed action: {e}")))?;
        // Element-wise coherence: for every interned handle, the cache's
        // positive verdict must match the model's entry under the *current*
        // version; entries the model dropped (swap/compact) must be gone.
        for (index, slot) in sids.iter().enumerate() {
            let mask = index as u8 + 1;
            if let Some(sid) = *slot {
                let model_terminated = state.entries[index] == Some(true);
                let real_terminated = cache.is_terminated(sid);
                if model_terminated != real_terminated {
                    return Err(fail(format!(
                        "cache terminated({mask:#05b}) = {real_terminated}, model says \
                         {model_terminated} (verdict crossed a version or epoch boundary)"
                    )));
                }
            }
        }
        let model_terminated_total = state.entries.iter().filter(|&&e| e == Some(true)).count();
        expect_eq(
            "terminated_len",
            &cache.terminated_len(),
            &model_terminated_total,
        )
        .map_err(fail)?;
    }
    Ok(())
}
