//! Canonical model of the tracker-id lifecycle / shared class store /
//! interner-universe protocol across two feeds.
//!
//! The model mirrors, in a bounded universe (≤ [`EXT_IDS`] tracker ids,
//! ≤ [`CLASSES`] classes, [`FEEDS`] feeds sharing one class store, a
//! [`WINDOW`]-frame window per feed), the exact rules implemented by
//! `ObjectLifecycle` + `ClassStore` + `SetInterner`:
//!
//! * first sight binds an external id to itself; a class-changing or
//!   otherwise conflicting reappearance mints a store-owned **alias**;
//! * `end_tracks` severs the live binding but keeps the registration (the
//!   ended generation's states may still be live in the window);
//! * a compaction epoch retires every registered internal no window frame
//!   references, releasing its store reference and its binding/alias
//!   entries;
//! * the store is reference counted and first-writer-wins per live entry.
//!
//! **Canonicalisation.** Two quantities are unbounded along a run and are
//! normalised out of the state so that the traversal's dedup works:
//! generation numbers (dropped — their monotonicity is verified by the
//! conformance replay, which sees the concrete run) and absolute alias
//! values (relabelled densely in mint order: the `k`-th oldest live alias
//! is [`Internal::Alias`]`(k)`). Both normalisations are sound because
//! neither quantity influences any transition, only observations.

use crate::machine::Machine;

/// External (tracker) identifiers range over `0..EXT_IDS`.
pub const EXT_IDS: u8 = 3;
/// Classes range over `0..CLASSES`.
pub const CLASSES: u8 = 2;
/// Number of feeds sharing one class store.
pub const FEEDS: usize = 2;
/// Frames per feed window (what compaction keeps alive).
pub const WINDOW: usize = 2;

/// A model-level internal identifier: either an external id bound to
/// itself, or the `k`-th oldest live alias (canonical mint-order label).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Internal {
    /// First-generation binding: internal == external.
    Ext(u8),
    /// Reuse generation behind the `k`-th oldest live alias.
    Alias(u8),
}

/// Per-feed model state. All vectors are sorted (and alias labels dense),
/// so equal protocol situations compare equal. `Ord` is derived so the
/// symmetry reduction can pick the lexicographically minimal orbit
/// representative.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FeedState {
    /// Live bindings, sorted by external id: `(external, internal, class)`.
    pub bindings: Vec<(u8, Internal, u8)>,
    /// Alias translations, sorted by label: `(alias label, external)`.
    pub aliases: Vec<(u8, u8)>,
    /// Registered internals (each holds one store reference), sorted.
    /// Mirrors the interner universe — the model asserts they never
    /// diverge, which is what makes retire sets total.
    pub registered: Vec<Internal>,
    /// The last ≤ [`WINDOW`] frames, oldest first; `None` is a frame with
    /// no (relevant) detection.
    pub window: Vec<Option<Internal>>,
}

impl FeedState {
    fn binding_of(&self, ext: u8) -> Option<(Internal, u8)> {
        self.bindings
            .iter()
            .find(|(e, _, _)| *e == ext)
            .map(|&(_, internal, class)| (internal, class))
    }

    fn push_frame(&mut self, frame: Option<Internal>) {
        self.window.push(frame);
        if self.window.len() > WINDOW {
            self.window.remove(0);
        }
    }

    fn is_registered(&self, id: Internal) -> bool {
        self.registered.binary_search(&id).is_ok()
    }
}

/// The whole canonical model state: the shared store plus each feed.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LifecycleState {
    /// Shared class store, sorted by internal id: `(id, class, refs)`.
    pub store: Vec<(Internal, u8, u8)>,
    /// Per-feed state.
    pub feeds: [FeedState; FEEDS],
}

impl LifecycleState {
    fn store_class(&self, id: Internal) -> Option<u8> {
        self.store
            .iter()
            .find(|(sid, _, _)| *sid == id)
            .map(|&(_, class, _)| class)
    }

    /// Mirrors `ClassStore::register`: refs +1, first writer wins on the
    /// class. Returns the class the entry actually holds.
    fn store_register(&mut self, id: Internal, class: u8) -> u8 {
        match self.store.iter_mut().find(|(sid, _, _)| *sid == id) {
            Some((_, held, refs)) => {
                *refs += 1;
                *held
            }
            None => {
                self.store.push((id, class, 1));
                self.store.sort_unstable();
                class
            }
        }
    }

    /// Mirrors `ClassStore::release`: refs -1, evict at zero. Releasing an
    /// absent entry is a protocol violation at model level (the real store
    /// tolerates it, but the lifecycle must never do it).
    fn store_release(&mut self, id: Internal) -> Result<(), String> {
        let index = self
            .store
            .iter()
            .position(|(sid, _, _)| *sid == id)
            .ok_or_else(|| format!("released {id:?}, which holds no store entry"))?;
        let (_, _, refs) = &mut self.store[index];
        *refs -= 1;
        if *refs == 0 {
            self.store.remove(index);
        }
        Ok(())
    }

    /// The next working alias label (labels are dense, so it is the count
    /// of live aliases; robust against gaps anyway).
    fn next_alias_label(&self) -> u8 {
        self.live_alias_labels().last().map_or(0, |&k| k + 1)
    }

    /// Every alias label referenced anywhere in the state, sorted.
    fn live_alias_labels(&self) -> Vec<u8> {
        fn note(labels: &mut Vec<u8>, id: &Internal) {
            if let Internal::Alias(k) = id {
                labels.push(*k);
            }
        }
        let mut labels = Vec::new();
        for (id, _, _) in &self.store {
            note(&mut labels, id);
        }
        for feed in &self.feeds {
            for (_, internal, _) in &feed.bindings {
                note(&mut labels, internal);
            }
            for (k, _) in &feed.aliases {
                labels.push(*k);
            }
            for id in &feed.registered {
                note(&mut labels, id);
            }
            for frame in feed.window.iter().flatten() {
                note(&mut labels, frame);
            }
        }
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Relabels live aliases densely (0..n) in mint order. The relabel map
    /// is monotone, so every sorted vector stays sorted.
    fn canonicalize(&mut self) {
        let labels = self.live_alias_labels();
        if labels.iter().copied().eq(0..labels.len() as u8) {
            return;
        }
        let relabel = |id: Internal| match id {
            Internal::Ext(e) => Internal::Ext(e),
            Internal::Alias(k) => Internal::Alias(
                labels
                    .binary_search(&k)
                    .expect("live label was just collected") as u8,
            ),
        };
        for (id, _, _) in &mut self.store {
            *id = relabel(*id);
        }
        for feed in &mut self.feeds {
            for (_, internal, _) in &mut feed.bindings {
                *internal = relabel(*internal);
            }
            for (k, _) in &mut feed.aliases {
                *k = labels
                    .binary_search(k)
                    .expect("live label was just collected") as u8;
            }
            for id in &mut feed.registered {
                *id = relabel(*id);
            }
            for frame in feed.window.iter_mut().flatten() {
                *frame = relabel(*frame);
            }
        }
    }
}

/// One protocol step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LifecycleAction {
    /// One frame on `feed` with a single detection `(ext, class)`.
    Observe {
        /// The observing feed.
        feed: u8,
        /// The external (tracker) identifier detected.
        ext: u8,
        /// The detection's class.
        class: u8,
    },
    /// One frame on `feed` with no detection, carrying an end-of-track
    /// event for `ext` (the tracker may or may not have a live binding).
    EndTrack {
        /// The feed whose tracker ended the track.
        feed: u8,
        /// The external identifier whose track ended.
        ext: u8,
    },
    /// A compaction epoch on `feed`: every registered internal outside the
    /// window retires.
    Compact {
        /// The compacting feed.
        feed: u8,
    },
}

/// One element of the lifecycle model's symmetry group: the Klein
/// four-group generated by swapping the two feed ids and swapping the two
/// class labels. Both generators are bijections on reachable states that
/// commute with every transition (no rule distinguishes feed 0 from feed 1
/// or class 0 from class 1 — classes are only compared for equality, and
/// alias mint-order labels are feed- and class-blind), and the invariant
/// quantifies uniformly over feeds and classes, so the quotient
/// exploration is sound.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct LifecycleSym {
    /// Exchange the two feeds.
    pub swap_feeds: bool,
    /// Exchange the two class labels.
    pub swap_classes: bool,
}

// The swaps below are only involutions (and the group only covers the full
// permutation groups) for exactly two feeds and two classes.
const _: () = assert!(
    FEEDS == 2 && CLASSES == 2,
    "swap symmetry assumes 2 feeds and 2 classes"
);

impl LifecycleSym {
    /// The whole group in a fixed order, identity first — orbit-minimum
    /// ties resolve to the earliest element, keeping `reduce` deterministic.
    pub const ALL: [LifecycleSym; 4] = [
        LifecycleSym {
            swap_feeds: false,
            swap_classes: false,
        },
        LifecycleSym {
            swap_feeds: false,
            swap_classes: true,
        },
        LifecycleSym {
            swap_feeds: true,
            swap_classes: false,
        },
        LifecycleSym {
            swap_feeds: true,
            swap_classes: true,
        },
    ];

    /// The image of a feed id.
    pub fn feed(self, feed: u8) -> u8 {
        if self.swap_feeds {
            1 - feed
        } else {
            feed
        }
    }

    /// The image of a class label.
    pub fn class(self, class: u8) -> u8 {
        if self.swap_classes {
            1 - class
        } else {
            class
        }
    }

    /// Applies this element to a state. Every sorted vector stays sorted:
    /// the store is keyed by (unique) internal id, bindings by (unique)
    /// external id, and neither key is touched by a feed or class swap.
    pub fn apply(self, state: &LifecycleState) -> LifecycleState {
        let mut next = state.clone();
        if self.swap_feeds {
            next.feeds.swap(0, 1);
        }
        if self.swap_classes {
            for (_, class, _) in &mut next.store {
                *class = 1 - *class;
            }
            for feed in &mut next.feeds {
                for (_, _, class) in &mut feed.bindings {
                    *class = 1 - *class;
                }
            }
        }
        next
    }
}

/// The machine over [`LifecycleState`] / [`LifecycleAction`].
#[derive(Debug, Default, Clone, Copy)]
pub struct LifecycleModel;

impl LifecycleModel {
    /// Whether this observation takes the slow path (binds a new
    /// generation) in `state`. Exposed so the conformance replay can tell
    /// when the real implementation must mint a generation.
    pub fn observe_is_new_generation(state: &LifecycleState, feed: u8, ext: u8, class: u8) -> bool {
        !matches!(
            state.feeds[feed as usize].binding_of(ext),
            Some((_, held)) if held == class
        )
    }

    fn observe(
        &self,
        state: &LifecycleState,
        feed: usize,
        ext: u8,
        class: u8,
    ) -> Result<LifecycleState, String> {
        let mut next = state.clone();
        if let Some((internal, held)) = next.feeds[feed].binding_of(ext) {
            if held == class {
                // Fast path: the binding answers; the window frame is the
                // only change.
                next.feeds[feed].push_frame(Some(internal));
                return Ok(next);
            }
        }
        // Slow path, mirroring `ObjectLifecycle::resolve_frame`: the
        // external id itself is reusable only if this feed does not still
        // register it and no store sharer holds it under another class.
        let taken = next.feeds[feed].is_registered(Internal::Ext(ext))
            || next
                .store_class(Internal::Ext(ext))
                .is_some_and(|held| held != class);
        let internal = if taken {
            let label = next.next_alias_label();
            next.feeds[feed].aliases.push((label, ext));
            next.feeds[feed].aliases.sort_unstable();
            Internal::Alias(label)
        } else {
            Internal::Ext(ext)
        };
        let actual = next.store_register(internal, class);
        if actual != class {
            return Err(format!(
                "fresh registration of {internal:?} saw incumbent class {actual} != {class} \
                 (the newcomer must have been given a non-fresh internal id)"
            ));
        }
        if !next.feeds[feed].is_registered(internal) {
            next.feeds[feed].registered.push(internal);
            next.feeds[feed].registered.sort_unstable();
        } else {
            return Err(format!(
                "rebound {internal:?} while it is still registered (would splice generations)"
            ));
        }
        next.feeds[feed].bindings.retain(|(e, _, _)| *e != ext);
        next.feeds[feed].bindings.push((ext, internal, class));
        next.feeds[feed].bindings.sort_unstable();
        next.feeds[feed].push_frame(Some(internal));
        next.canonicalize();
        Ok(next)
    }

    fn end_track(&self, state: &LifecycleState, feed: usize, ext: u8) -> LifecycleState {
        let mut next = state.clone();
        next.feeds[feed].bindings.retain(|(e, _, _)| *e != ext);
        next.feeds[feed].push_frame(None);
        // No alias/registration/store change: the ended generation keeps
        // its references until epoch retirement.
        next
    }

    fn compact(&self, state: &LifecycleState, feed: usize) -> Result<LifecycleState, String> {
        let mut next = state.clone();
        let live: Vec<Internal> = next.feeds[feed].window.iter().flatten().copied().collect();
        let retired: Vec<Internal> = next.feeds[feed]
            .registered
            .iter()
            .copied()
            .filter(|id| !live.contains(id))
            .collect();
        for id in retired {
            next.store_release(id)?;
            let external = match id {
                Internal::Ext(e) => e,
                Internal::Alias(k) => {
                    let index = next.feeds[feed]
                        .aliases
                        .iter()
                        .position(|(label, _)| *label == k)
                        .ok_or_else(|| {
                            format!("retired alias {k} has no translation entry on feed {feed}")
                        })?;
                    next.feeds[feed].aliases.remove(index).1
                }
            };
            next.feeds[feed]
                .bindings
                .retain(|(e, internal, _)| *e != external || *internal != id);
            next.feeds[feed].registered.retain(|r| *r != id);
        }
        next.canonicalize();
        Ok(next)
    }
}

/// Byte-codec helpers for the spill path. Counts all fit in a `u8` in this
/// bounded universe; every collection is length-prefixed, so the encoding
/// is injective.
fn put_internal(out: &mut Vec<u8>, id: Internal) {
    match id {
        Internal::Ext(e) => out.extend_from_slice(&[0, e]),
        Internal::Alias(k) => out.extend_from_slice(&[1, k]),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn internal(&mut self) -> Option<Internal> {
        match self.u8()? {
            0 => Some(Internal::Ext(self.u8()?)),
            1 => Some(Internal::Alias(self.u8()?)),
            _ => None,
        }
    }
}

impl Machine for LifecycleModel {
    type State = LifecycleState;
    type Action = LifecycleAction;
    type Sym = LifecycleSym;

    fn initial(&self) -> LifecycleState {
        LifecycleState::default()
    }

    fn actions(&self, _state: &LifecycleState, out: &mut Vec<LifecycleAction>) {
        for feed in 0..FEEDS as u8 {
            for ext in 0..EXT_IDS {
                for class in 0..CLASSES {
                    out.push(LifecycleAction::Observe { feed, ext, class });
                }
                out.push(LifecycleAction::EndTrack { feed, ext });
            }
            out.push(LifecycleAction::Compact { feed });
        }
    }

    fn transition(
        &self,
        state: &LifecycleState,
        action: &LifecycleAction,
    ) -> Result<LifecycleState, String> {
        match *action {
            LifecycleAction::Observe { feed, ext, class } => {
                self.observe(state, feed as usize, ext, class)
            }
            LifecycleAction::EndTrack { feed, ext } => {
                Ok(self.end_track(state, feed as usize, ext))
            }
            LifecycleAction::Compact { feed } => self.compact(state, feed as usize),
        }
    }

    fn invariant(&self, state: &LifecycleState) -> Result<(), String> {
        // Store entries: refs equal the number of feeds registering the id,
        // never zero; alias entries are single-owner by construction.
        for &(id, _, refs) in &state.store {
            let held = state
                .feeds
                .iter()
                .filter(|feed| feed.is_registered(id))
                .count() as u8;
            if refs == 0 {
                return Err(format!(
                    "store entry {id:?} has zero refs but was not evicted"
                ));
            }
            if refs != held {
                return Err(format!(
                    "store entry {id:?} holds {refs} refs but {held} feeds register it \
                     (strand/double-free)"
                ));
            }
            if matches!(id, Internal::Alias(_)) && refs != 1 {
                return Err(format!("alias {id:?} is registered by {refs} feeds"));
            }
        }
        for (f, feed) in state.feeds.iter().enumerate() {
            // Every registered internal holds a store entry.
            for &id in &feed.registered {
                if state.store_class(id).is_none() {
                    return Err(format!(
                        "feed {f} registers {id:?} but the store has no entry (dangling ref)"
                    ));
                }
            }
            // Bindings: internal registered, class agrees with the store,
            // self-binding for Ext, translated for Alias.
            for &(ext, internal, class) in &feed.bindings {
                if !feed.is_registered(internal) {
                    return Err(format!("feed {f} binds {ext} to unregistered {internal:?}"));
                }
                if state.store_class(internal) != Some(class) {
                    return Err(format!(
                        "feed {f} binding {ext}->{internal:?} class {class} disagrees with \
                         store class {:?} (stale class)",
                        state.store_class(internal)
                    ));
                }
                match internal {
                    Internal::Ext(e) if e != ext => {
                        return Err(format!(
                            "feed {f} binds {ext} to foreign external {internal:?}"
                        ));
                    }
                    Internal::Alias(k) => {
                        let translated = feed
                            .aliases
                            .iter()
                            .find(|(label, _)| *label == k)
                            .map(|&(_, e)| e);
                        if translated != Some(ext) {
                            return Err(format!(
                                "feed {f} alias {k} translates to {translated:?}, bound to {ext}"
                            ));
                        }
                    }
                    Internal::Ext(_) => {}
                }
            }
            // Distinct bindings use distinct internals (one generation per
            // internal id).
            for (i, &(_, a, _)) in feed.bindings.iter().enumerate() {
                if feed.bindings[i + 1..].iter().any(|&(_, b, _)| a == b) {
                    return Err(format!("feed {f} binds two externals to {a:?}"));
                }
            }
            // Alias translations only exist while the alias is registered.
            for &(k, _) in &feed.aliases {
                if !feed.is_registered(Internal::Alias(k)) {
                    return Err(format!(
                        "feed {f} keeps a translation for retired alias {k}"
                    ));
                }
            }
            // Window frames only reference registered internals (a frame
            // referencing a retired id is exactly the stale-handle bug).
            for frame in feed.window.iter().flatten() {
                if !feed.is_registered(*frame) {
                    return Err(format!(
                        "feed {f} window references retired {frame:?} (stale handle)"
                    ));
                }
            }
            if feed.window.len() > WINDOW {
                return Err(format!("feed {f} window overflowed: {:?}", feed.window));
            }
        }
        Ok(())
    }

    fn reduce(&self, state: LifecycleState) -> (LifecycleState, LifecycleSym) {
        let mut best: Option<(LifecycleState, LifecycleSym)> = None;
        for h in LifecycleSym::ALL {
            let candidate = h.apply(&state);
            if best.as_ref().is_none_or(|(held, _)| candidate < *held) {
                best = Some((candidate, h));
            }
        }
        // Every element is self-inverse, so the `h` minimizing `h(state)`
        // is also the element mapping the representative back to `state`.
        best.expect("the group is non-empty")
    }

    fn sym_compose(&self, a: &LifecycleSym, b: &LifecycleSym) -> LifecycleSym {
        LifecycleSym {
            swap_feeds: a.swap_feeds != b.swap_feeds,
            swap_classes: a.swap_classes != b.swap_classes,
        }
    }

    fn sym_action(&self, g: &LifecycleSym, action: &LifecycleAction) -> LifecycleAction {
        match *action {
            LifecycleAction::Observe { feed, ext, class } => LifecycleAction::Observe {
                feed: g.feed(feed),
                ext,
                class: g.class(class),
            },
            LifecycleAction::EndTrack { feed, ext } => LifecycleAction::EndTrack {
                feed: g.feed(feed),
                ext,
            },
            LifecycleAction::Compact { feed } => LifecycleAction::Compact { feed: g.feed(feed) },
        }
    }

    fn sym_state(&self, g: &LifecycleSym, state: &LifecycleState) -> LifecycleState {
        g.apply(state)
    }

    fn encode_state(&self, state: &LifecycleState, out: &mut Vec<u8>) -> bool {
        out.push(state.store.len() as u8);
        for &(id, class, refs) in &state.store {
            put_internal(out, id);
            out.extend_from_slice(&[class, refs]);
        }
        for feed in &state.feeds {
            out.push(feed.bindings.len() as u8);
            for &(ext, internal, class) in &feed.bindings {
                out.push(ext);
                put_internal(out, internal);
                out.push(class);
            }
            out.push(feed.aliases.len() as u8);
            for &(label, ext) in &feed.aliases {
                out.extend_from_slice(&[label, ext]);
            }
            out.push(feed.registered.len() as u8);
            for &id in &feed.registered {
                put_internal(out, id);
            }
            out.push(feed.window.len() as u8);
            for frame in &feed.window {
                match frame {
                    None => out.push(0),
                    Some(id) => {
                        out.push(1);
                        put_internal(out, *id);
                    }
                }
            }
        }
        true
    }

    fn decode_state(&self, bytes: &[u8]) -> Option<LifecycleState> {
        let mut cur = Cursor { bytes, at: 0 };
        let mut state = LifecycleState::default();
        for _ in 0..cur.u8()? {
            let id = cur.internal()?;
            let class = cur.u8()?;
            let refs = cur.u8()?;
            state.store.push((id, class, refs));
        }
        for feed in &mut state.feeds {
            for _ in 0..cur.u8()? {
                let ext = cur.u8()?;
                let internal = cur.internal()?;
                let class = cur.u8()?;
                feed.bindings.push((ext, internal, class));
            }
            for _ in 0..cur.u8()? {
                let label = cur.u8()?;
                let ext = cur.u8()?;
                feed.aliases.push((label, ext));
            }
            for _ in 0..cur.u8()? {
                feed.registered.push(cur.internal()?);
            }
            for _ in 0..cur.u8()? {
                feed.window.push(match cur.u8()? {
                    0 => None,
                    1 => Some(cur.internal()?),
                    _ => return None,
                });
            }
        }
        (cur.at == bytes.len()).then_some(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(model: &LifecycleModel, actions: &[LifecycleAction]) -> LifecycleState {
        let mut state = model.initial();
        for action in actions {
            state = model.transition(&state, action).expect("legal action");
            model.invariant(&state).expect("invariant holds");
        }
        state
    }

    #[test]
    fn first_sight_binds_to_itself() {
        let model = LifecycleModel;
        let state = apply(
            &model,
            &[LifecycleAction::Observe {
                feed: 0,
                ext: 1,
                class: 0,
            }],
        );
        assert_eq!(state.feeds[0].bindings, vec![(1, Internal::Ext(1), 0)]);
        assert_eq!(state.feeds[0].registered, vec![Internal::Ext(1)]);
        assert_eq!(state.store, vec![(Internal::Ext(1), 0, 1)]);
        assert_eq!(state.feeds[0].window, vec![Some(Internal::Ext(1))]);
    }

    #[test]
    fn class_change_mints_an_alias_and_keeps_the_old_registration() {
        let model = LifecycleModel;
        let state = apply(
            &model,
            &[
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 0,
                },
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 1,
                },
            ],
        );
        assert_eq!(state.feeds[0].bindings, vec![(1, Internal::Alias(0), 1)]);
        assert_eq!(state.feeds[0].aliases, vec![(0, 1)]);
        assert_eq!(
            state.store,
            vec![(Internal::Ext(1), 0, 1), (Internal::Alias(0), 1, 1)]
        );
    }

    #[test]
    fn compaction_retires_out_of_window_generations_and_relabels() {
        let model = LifecycleModel;
        // Mint two aliases on ext 1 (class flip-flop), slide the first out
        // of the window, compact: the older alias retires and the younger
        // is relabelled back to 0.
        let state = apply(
            &model,
            &[
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 0,
                },
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 1,
                },
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 0,
                },
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 0,
                },
                LifecycleAction::Compact { feed: 0 },
            ],
        );
        // Ext(1) (gen 0) and Alias(0) (gen 1) both left the window; the
        // second alias (gen 2) survives and is relabelled to 0.
        assert_eq!(state.feeds[0].registered, vec![Internal::Alias(0)]);
        assert_eq!(state.feeds[0].aliases, vec![(0, 1)]);
        assert_eq!(state.store, vec![(Internal::Alias(0), 0, 1)]);
        assert_eq!(state.feeds[0].bindings, vec![(1, Internal::Alias(0), 0)]);
    }

    #[test]
    fn shared_store_refcounts_across_feeds() {
        let model = LifecycleModel;
        let state = apply(
            &model,
            &[
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 2,
                    class: 1,
                },
                LifecycleAction::Observe {
                    feed: 1,
                    ext: 2,
                    class: 1,
                },
            ],
        );
        assert_eq!(state.store, vec![(Internal::Ext(2), 1, 2)]);
        // One feed compacting (empty window overlap is impossible here —
        // the observation is in its window — so slide it out first).
        let state = apply(
            &model,
            &[
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 2,
                    class: 1,
                },
                LifecycleAction::Observe {
                    feed: 1,
                    ext: 2,
                    class: 1,
                },
                LifecycleAction::EndTrack { feed: 0, ext: 2 },
                LifecycleAction::EndTrack { feed: 0, ext: 2 },
                LifecycleAction::Compact { feed: 0 },
            ],
        );
        assert_eq!(
            state.store,
            vec![(Internal::Ext(2), 1, 1)],
            "feed 1's reference keeps the entry"
        );
        assert!(state.feeds[0].registered.is_empty());
    }

    #[test]
    fn cross_feed_class_conflict_mints_an_alias() {
        let model = LifecycleModel;
        let state = apply(
            &model,
            &[
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 0,
                    class: 0,
                },
                LifecycleAction::Observe {
                    feed: 1,
                    ext: 0,
                    class: 1,
                },
            ],
        );
        assert_eq!(state.feeds[1].bindings, vec![(0, Internal::Alias(0), 1)]);
        assert_eq!(
            state.store,
            vec![(Internal::Ext(0), 0, 1), (Internal::Alias(0), 1, 1)]
        );
    }

    #[test]
    fn end_track_severs_the_binding_but_keeps_the_registration() {
        let model = LifecycleModel;
        let state = apply(
            &model,
            &[
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 0,
                },
                LifecycleAction::EndTrack { feed: 0, ext: 1 },
            ],
        );
        assert!(state.feeds[0].bindings.is_empty());
        assert_eq!(state.feeds[0].registered, vec![Internal::Ext(1)]);
        // Same-class reappearance now mints an alias (new generation).
        let state = apply(
            &model,
            &[
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 0,
                },
                LifecycleAction::EndTrack { feed: 0, ext: 1 },
                LifecycleAction::Observe {
                    feed: 0,
                    ext: 1,
                    class: 0,
                },
            ],
        );
        assert_eq!(state.feeds[0].bindings, vec![(1, Internal::Alias(0), 0)]);
        assert_eq!(state.feeds[0].registered.len(), 2);
    }
}
