//! The [`Machine`] abstraction: a state-transition system the
//! [`Traversal`](crate::traversal::Traversal) can enumerate exhaustively.
//!
//! A machine is the *specification* half of the checker: it describes what
//! the protocol under test is supposed to do, in a state space small enough
//! to enumerate. The implementation half is supplied separately as a replay
//! hook (see [`conformance`](crate::conformance)), so the same model can be
//! traversed alone (fast, pure invariant checking) or in lock-step with the
//! real code (conformance checking).

/// A finite state-transition system with per-state invariants.
///
/// `State` must be *canonical*: two states that should be considered the
/// same point in the protocol must compare equal, or the traversal's dedup
/// degenerates into path enumeration. Anything unbounded along a run —
/// monotone counters, absolute alias values, version numbers — must be
/// normalised out of `State` and verified by the conformance replay instead
/// (which sees the concrete run, not the canonical quotient).
pub trait Machine {
    /// Canonical model state.
    type State: Clone + Eq + std::hash::Hash + std::fmt::Debug;
    /// One protocol step.
    type Action: Clone + std::fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Enumerates every action applicable in `state`, appending to `out`
    /// (cleared by the caller). Actions must be enumerated
    /// deterministically so counterexample traces are reproducible.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Applies one action, returning the successor state or a description
    /// of a *transition-level* violation (an operation the protocol forbids
    /// outright, e.g. releasing a class-store reference that was never
    /// held).
    fn transition(&self, state: &Self::State, action: &Self::Action)
        -> Result<Self::State, String>;

    /// Checks the per-state invariants, returning a description of the
    /// first violated one. Called on every state the traversal discovers,
    /// including the initial state.
    fn invariant(&self, state: &Self::State) -> Result<(), String>;
}
