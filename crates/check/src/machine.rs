//! The [`Machine`] abstraction: a state-transition system the
//! [`Traversal`](crate::traversal::Traversal) can enumerate exhaustively.
//!
//! A machine is the *specification* half of the checker: it describes what
//! the protocol under test is supposed to do, in a state space small enough
//! to enumerate. The implementation half is supplied separately as a replay
//! hook (see [`conformance`](crate::conformance)), so the same model can be
//! traversed alone (fast, pure invariant checking) or in lock-step with the
//! real code (conformance checking).
//!
//! Beyond the four core methods, a machine may declare two optional
//! capabilities the traversal exploits:
//!
//! * a **symmetry group** ([`Machine::Sym`] + [`Machine::reduce`]): a group
//!   of state bijections that commute with the transition relation and
//!   preserve the invariant. The traversal then deduplicates on orbit
//!   representatives (quotient exploration) and reconstructs *concrete*
//!   counterexample/replay paths by relabelling actions through the
//!   accumulated group element, so conformance replay still drives the real
//!   implementation with genuine runs;
//! * a **state codec** ([`Machine::encode_state`] /
//!   [`Machine::decode_state`]): an injective byte encoding of canonical
//!   states, enabling the disk-backed seen-set/frontier spill for runs too
//!   deep to fit in memory.

/// A finite state-transition system with per-state invariants.
///
/// `State` must be *canonical*: two states that should be considered the
/// same point in the protocol must compare equal, or the traversal's dedup
/// degenerates into path enumeration. Anything unbounded along a run —
/// monotone counters, absolute alias values, version numbers — must be
/// normalised out of `State` and verified by the conformance replay instead
/// (which sees the concrete run, not the canonical quotient).
pub trait Machine {
    /// Canonical model state.
    type State: Clone + Eq + std::hash::Hash + std::fmt::Debug;
    /// One protocol step.
    type Action: Clone + std::fmt::Debug;
    /// One element of the model's symmetry group.
    ///
    /// `Default::default()` must be the **identity** element. Models with
    /// only the trivial group use `()` and inherit every default method
    /// below; models declaring a nontrivial group (by overriding
    /// [`reduce`](Self::reduce)) **must** override [`sym_compose`],
    /// [`sym_action`] and [`sym_state`] as well — the defaults
    /// `debug_assert` that they are only ever handed identity elements.
    ///
    /// [`sym_compose`]: Self::sym_compose
    /// [`sym_action`]: Self::sym_action
    /// [`sym_state`]: Self::sym_state
    type Sym: Clone + PartialEq + Default + std::fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Enumerates every action applicable in `state`, appending to `out`
    /// (cleared by the caller). Actions must be enumerated
    /// deterministically so counterexample traces are reproducible.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Applies one action, returning the successor state or a description
    /// of a *transition-level* violation (an operation the protocol forbids
    /// outright, e.g. releasing a class-store reference that was never
    /// held).
    fn transition(&self, state: &Self::State, action: &Self::Action)
        -> Result<Self::State, String>;

    /// Checks the per-state invariants, returning a description of the
    /// first violated one. Called on every state the traversal discovers,
    /// including the initial state. When the model declares a symmetry
    /// group, the invariant must be group-invariant (hold on a state iff it
    /// holds on every state in its orbit) for quotient exploration to be
    /// sound.
    fn invariant(&self, state: &Self::State) -> Result<(), String>;

    // ------------------------------------------------------------------
    // Symmetry group (optional; defaults implement the trivial group).
    // ------------------------------------------------------------------

    /// Maps `state` to the canonical representative of its symmetry orbit,
    /// returning the representative and the group element `g` such that
    /// [`sym_state`](Self::sym_state)`(g, representative) == state`.
    ///
    /// The contract that makes quotient exploration sound: every group
    /// element must be a bijection on reachable states that **commutes
    /// with the transition relation** (`transition(g(s), sym_action(g, a))
    /// == g(transition(s, a))`) and preserves both the invariant and the
    /// enabled-action sets. `reduce` itself must be orbit-constant (equal
    /// representatives for any two states in one orbit) — the usual
    /// implementation picks the lexicographically minimal element of the
    /// orbit. The default is the trivial group: every state is its own
    /// representative.
    ///
    /// `reduce` is only invoked on invariant-satisfying states, so a model
    /// whose group action is only well-defined on the invariant-closed
    /// subset (e.g. when part of the state is redundant under the
    /// invariant) may rely on that.
    fn reduce(&self, state: Self::State) -> (Self::State, Self::Sym) {
        (state, Self::Sym::default())
    }

    /// Composes two group elements: `sym_state(compose(a, b), s) ==
    /// sym_state(a, sym_state(b, s))`.
    fn sym_compose(&self, a: &Self::Sym, b: &Self::Sym) -> Self::Sym {
        debug_assert!(
            *a == Self::Sym::default() && *b == Self::Sym::default(),
            "models overriding `reduce` must override `sym_compose`"
        );
        Self::Sym::default()
    }

    /// Relabels an action by a group element (e.g. renames the feed an
    /// observation happens on). Used to reconstruct concrete counterexample
    /// and replay paths from quotient-space edges.
    fn sym_action(&self, g: &Self::Sym, action: &Self::Action) -> Self::Action {
        debug_assert!(
            *g == Self::Sym::default(),
            "models overriding `reduce` must override `sym_action`"
        );
        action.clone()
    }

    /// Applies a group element to a state.
    fn sym_state(&self, g: &Self::Sym, state: &Self::State) -> Self::State {
        debug_assert!(
            *g == Self::Sym::default(),
            "models overriding `reduce` must override `sym_state`"
        );
        state.clone()
    }

    // ------------------------------------------------------------------
    // State codec (optional; required only for the disk-backed spill).
    // ------------------------------------------------------------------

    /// Encodes a canonical state into `out`, returning `false` when the
    /// model does not support spilling. The encoding must be **injective
    /// and functional**: equal states produce equal bytes and distinct
    /// states produce distinct bytes — the spill's exact dedup compares
    /// encoded forms byte for byte.
    fn encode_state(&self, _state: &Self::State, _out: &mut Vec<u8>) -> bool {
        false
    }

    /// Decodes a state previously produced by
    /// [`encode_state`](Self::encode_state); `None` on malformed bytes
    /// (surfaced by the traversal as a corruption error, never a silently
    /// wrong state).
    fn decode_state(&self, _bytes: &[u8]) -> Option<Self::State> {
        None
    }
}
