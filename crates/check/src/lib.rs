//! # tvq-check — explicit-state model checking for the lifecycle protocol
//!
//! The engine's correctness rests on a small concurrent-by-composition
//! protocol: tracker-id reuse mints generation-aware internal ids, a
//! shared reference-counted class store coordinates feeds, compaction
//! epochs retire dead ids and re-key every live handle, and catalog swaps
//! invalidate every pruner verdict. Unit tests probe these rules pointwise;
//! this crate checks them **exhaustively** over a bounded universe.
//!
//! Three layers:
//!
//! * [`machine::Machine`] + [`traversal::Traversal`] — a small
//!   explicit-state model checker: breadth-first enumeration of every
//!   reachable canonical state within a depth bound, invariants checked at
//!   every state, shortest counterexample trace on violation;
//! * [`lifecycle_model`] and [`catalog_model`] — the two protocol models:
//!   tracker-id lifecycle across two feeds sharing a class store, and
//!   catalog-swap verdict coherence;
//! * [`conformance`] — model-based conformance replay: every enumerated
//!   action sequence is replayed through the *real* implementations
//!   (`ObjectLifecycle` + `SetInterner` directly, two full engines end to
//!   end, and the `PrunerVerdictCache`), comparing observable state
//!   against the model after every path.
//!
//! The `model_check` binary runs the bounded traversals at full depth and
//! prints explored-state counts; CI runs it and fails on any violation.
//! The `check-mutants` feature (never on in tier-1 builds) re-introduces
//! two historical bugs as negative controls and the test suite asserts the
//! checker *finds* both — evidence the exhaustive pass is not vacuous.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog_model;
pub mod conformance;
pub mod lifecycle_model;
pub mod machine;
pub mod traversal;

pub use catalog_model::{CatalogAction, CatalogModel, CatalogState};
pub use conformance::{replay_catalog, replay_component, replay_engine};
pub use lifecycle_model::{Internal, LifecycleAction, LifecycleModel, LifecycleState};
pub use machine::Machine;
pub use traversal::{Report, Traversal, Violation};
