//! # tvq-check — explicit-state model checking for the lifecycle protocol
//!
//! The engine's correctness rests on a small concurrent-by-composition
//! protocol: tracker-id reuse mints generation-aware internal ids, a
//! shared reference-counted class store coordinates feeds, compaction
//! epochs retire dead ids and re-key every live handle, and catalog swaps
//! invalidate every pruner verdict. Unit tests probe these rules pointwise;
//! this crate checks them **exhaustively** over a bounded universe.
//!
//! Three layers:
//!
//! * [`machine::Machine`] + [`traversal::Traversal`] — a small
//!   explicit-state model checker: breadth-first enumeration of every
//!   reachable canonical state within a depth bound, invariants checked at
//!   every state, shortest counterexample trace on violation. The frontier
//!   can be sharded across worker threads (`--workers`), explored in the
//!   quotient of a model-declared symmetry group (`--symmetry`), and
//!   spilled to per-shard disk logs (`--spill-dir`) — all three are
//!   report-preserving, so any configuration prints the same counters and
//!   counterexamples;
//! * [`lifecycle_model`] and [`catalog_model`] — the two protocol models:
//!   tracker-id lifecycle across two feeds sharing a class store, and
//!   catalog-swap verdict coherence;
//! * [`conformance`] — model-based conformance replay: every enumerated
//!   action sequence is replayed through the *real* implementations
//!   (`ObjectLifecycle` + `SetInterner` directly, two full engines end to
//!   end, and the `PrunerVerdictCache`), comparing observable state
//!   against the model after every path.
//!
//! The `model_check` binary runs the bounded traversals at full depth and
//! prints explored-state counts; CI runs it and fails on any violation.
//! The `check-mutants` feature (never on in tier-1 builds) plants bugs as
//! negative controls — two historical ones plus a feed-asymmetric
//! retirement skip that exists on feed 1 only — and the test suite asserts
//! the checker *finds* all of them (the asymmetric one under `--symmetry`,
//! proving quotient replay still drives concrete runs on both feeds).
//! Evidence the exhaustive pass is not vacuous.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog_model;
pub mod conformance;
pub mod lifecycle_model;
pub mod machine;
pub mod traversal;

pub use catalog_model::{CatalogAction, CatalogModel, CatalogState, CatalogSym};
pub use conformance::{replay_catalog, replay_component, replay_engine};
pub use lifecycle_model::{
    Internal, LifecycleAction, LifecycleModel, LifecycleState, LifecycleSym,
};
pub use machine::Machine;
pub use traversal::{DepthStats, Report, SpillError, Traversal, Violation};
