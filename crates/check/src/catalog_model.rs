//! Canonical model of the catalog-swap / verdict-cache protocol.
//!
//! The property under check is version coherence: **no pruner verdict
//! computed under catalog version `v` is ever consulted under a version
//! `v' != v`**. The real implementation enforces this by clearing the
//! [`PrunerVerdictCache`](tvq_core::PrunerVerdictCache) on every catalog
//! swap and re-keying it through the remap table on every compaction; the
//! model makes the property directly checkable by recording, for every
//! cached verdict, the verdict the *current* version would produce — a
//! stale entry is then an invariant violation, not a silent wrong answer.
//!
//! The bounded universe: [`OBJECTS`] objects, every non-empty subset as a
//! candidate state ([`MASKS`] handles), a synthetic version-dependent
//! pruner whose verdict is `(Σ(id+1) + v) % `[`VMOD`]` == 0` over the
//! subset's members, and a [`CWINDOW`]-slot window determining which
//! handles survive compaction. Versions are unbounded, but the verdict
//! function only depends on `v mod VMOD`, so the canonical state keeps the
//! residue — the conformance replay drives the real `AtomicU64` version and
//! checks the concrete behaviour.

use crate::machine::Machine;

/// Objects range over `0..OBJECTS`; subsets are bitmasks over them.
pub const OBJECTS: u8 = 3;
/// Candidate-state handles: every non-empty subset mask `1..=MASKS`.
pub const MASKS: u8 = (1 << OBJECTS) - 1;
/// The verdict function's modulus (versions matter modulo this).
pub const VMOD: u8 = 3;
/// Window slots: masks observed in the last `CWINDOW` frames survive
/// compaction.
pub const CWINDOW: usize = 2;

/// The synthetic pruner's verdict for `mask` under version residue `vmod`.
/// Deliberately version-sensitive: any stale consult after a swap flips the
/// answer for some mask, so staleness is always observable.
pub fn verdict(mask: u8, vmod: u8) -> bool {
    let sum: u32 = (0..OBJECTS)
        .filter(|bit| mask & (1 << bit) != 0)
        .map(|bit| bit as u32 + 1)
        .sum();
    (sum + vmod as u32).is_multiple_of(VMOD as u32)
}

/// Canonical model state. `Ord` is derived (with `vmod` as the leading
/// field) so the symmetry reduction's rotate-to-residue-zero representative
/// is exactly the lexicographically minimal element of the orbit.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CatalogState {
    /// The catalog version, modulo [`VMOD`].
    pub vmod: u8,
    /// Cached verdict per mask (`entries[mask - 1]`); `None` = not judged
    /// under the current version/window regime.
    pub entries: Vec<Option<bool>>,
    /// The last ≤ [`CWINDOW`] observed masks, oldest first (compaction
    /// keeps exactly these).
    pub window: Vec<u8>,
}

/// One protocol step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CatalogAction {
    /// Judge the mask's candidate state under the current catalog.
    Judge(u8),
    /// A frame whose window state is this mask (keeps its handle live
    /// across the next compaction).
    Observe(u8),
    /// Swap the catalog: version bumps, every cached verdict must die.
    Swap,
    /// A compaction epoch: handles outside the window retire, surviving
    /// verdicts are re-keyed.
    Compact,
}

/// One element of the catalog model's symmetry group: a rotation of the
/// version residue by `0..VMOD`. A rotation maps each cached verdict to
/// the value with the same *staleness* under the rotated version (`fresh`
/// stays `fresh`, `stale` stays `stale`), which is what makes every
/// rotation a transition-commuting, invariant-preserving bijection: Judge
/// writes a fresh verdict on both sides, Swap clears entries on both
/// sides, and no action names a version. Actions are untouched
/// (`sym_action` is the identity).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CatalogSym(
    /// The rotation amount, `0..VMOD`; `0` is the identity.
    pub u8,
);

impl CatalogSym {
    /// Applies the rotation to a state.
    pub fn apply(self, state: &CatalogState) -> CatalogState {
        let target = (state.vmod + self.0) % VMOD;
        let mut next = state.clone();
        next.vmod = target;
        for (index, slot) in next.entries.iter_mut().enumerate() {
            if let Some(cached) = slot {
                let mask = index as u8 + 1;
                let was_fresh = *cached == verdict(mask, state.vmod);
                let fresh = verdict(mask, target);
                *cached = if was_fresh { fresh } else { !fresh };
            }
        }
        next
    }
}

/// The machine over [`CatalogState`] / [`CatalogAction`].
#[derive(Debug, Default, Clone, Copy)]
pub struct CatalogModel;

impl Machine for CatalogModel {
    type State = CatalogState;
    type Action = CatalogAction;
    type Sym = CatalogSym;

    fn initial(&self) -> CatalogState {
        CatalogState {
            vmod: 0,
            entries: vec![None; MASKS as usize],
            window: Vec::new(),
        }
    }

    fn actions(&self, _state: &CatalogState, out: &mut Vec<CatalogAction>) {
        for mask in 1..=MASKS {
            out.push(CatalogAction::Judge(mask));
            out.push(CatalogAction::Observe(mask));
        }
        out.push(CatalogAction::Swap);
        out.push(CatalogAction::Compact);
    }

    fn transition(
        &self,
        state: &CatalogState,
        action: &CatalogAction,
    ) -> Result<CatalogState, String> {
        let mut next = state.clone();
        match *action {
            CatalogAction::Judge(mask) => {
                let slot = &mut next.entries[mask as usize - 1];
                match *slot {
                    // A cached verdict is consulted as-is: if it is stale,
                    // the invariant (below) already flagged the state.
                    Some(_) => {}
                    None => *slot = Some(verdict(mask, next.vmod)),
                }
            }
            CatalogAction::Observe(mask) => {
                next.window.push(mask);
                if next.window.len() > CWINDOW {
                    next.window.remove(0);
                }
            }
            CatalogAction::Swap => {
                next.vmod = (next.vmod + 1) % VMOD;
                // The whole point: verdicts formed under the old version
                // must not survive the swap.
                next.entries.iter_mut().for_each(|slot| *slot = None);
            }
            CatalogAction::Compact => {
                for mask in 1..=MASKS {
                    if !next.window.contains(&mask) {
                        next.entries[mask as usize - 1] = None;
                    }
                }
            }
        }
        Ok(next)
    }

    fn invariant(&self, state: &CatalogState) -> Result<(), String> {
        for mask in 1..=MASKS {
            if let Some(cached) = state.entries[mask as usize - 1] {
                let fresh = verdict(mask, state.vmod);
                if cached != fresh {
                    return Err(format!(
                        "mask {mask:#05b}: cached verdict {cached} was computed under a stale \
                         catalog version (current version would say {fresh})"
                    ));
                }
            }
        }
        if state.window.len() > CWINDOW {
            return Err(format!("window overflowed: {:?}", state.window));
        }
        Ok(())
    }

    fn reduce(&self, state: CatalogState) -> (CatalogState, CatalogSym) {
        // Rotate the residue to zero; the inverse rotation (by the
        // original residue) maps the representative back to `state`.
        let back = CatalogSym(state.vmod);
        let repr = CatalogSym((VMOD - state.vmod) % VMOD).apply(&state);
        (repr, back)
    }

    fn sym_compose(&self, a: &CatalogSym, b: &CatalogSym) -> CatalogSym {
        CatalogSym((a.0 + b.0) % VMOD)
    }

    fn sym_action(&self, _g: &CatalogSym, action: &CatalogAction) -> CatalogAction {
        *action
    }

    fn sym_state(&self, g: &CatalogSym, state: &CatalogState) -> CatalogState {
        g.apply(state)
    }

    fn encode_state(&self, state: &CatalogState, out: &mut Vec<u8>) -> bool {
        out.push(state.vmod);
        for slot in &state.entries {
            out.push(match slot {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }
        out.push(state.window.len() as u8);
        out.extend_from_slice(&state.window);
        true
    }

    fn decode_state(&self, bytes: &[u8]) -> Option<CatalogState> {
        let (&vmod, rest) = bytes.split_first()?;
        let entries: Vec<Option<bool>> = rest
            .get(..MASKS as usize)?
            .iter()
            .map(|&b| match b {
                0 => Some(None),
                1 => Some(Some(false)),
                2 => Some(Some(true)),
                _ => None,
            })
            .collect::<Option<_>>()?;
        let rest = &rest[MASKS as usize..];
        let (&window_len, window) = rest.split_first()?;
        (window.len() == window_len as usize).then(|| CatalogState {
            vmod,
            entries,
            window: window.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_is_version_sensitive_for_every_mask() {
        // The staleness probe only works if a swap flips the verdict of at
        // least the masks involved; with sum+v mod 3, *every* mask flips at
        // some version within VMOD steps.
        for mask in 1..=MASKS {
            let answers: Vec<bool> = (0..VMOD).map(|v| verdict(mask, v)).collect();
            assert!(
                answers.contains(&true) && answers.contains(&false),
                "mask {mask} must be version-sensitive, got {answers:?}"
            );
        }
    }

    #[test]
    fn swap_clears_and_compact_drops_out_of_window_entries() {
        let model = CatalogModel;
        let mut state = model.initial();
        for action in [
            CatalogAction::Judge(0b011),
            CatalogAction::Observe(0b011),
            CatalogAction::Judge(0b100),
            CatalogAction::Compact,
        ] {
            state = model.transition(&state, &action).unwrap();
            model.invariant(&state).unwrap();
        }
        assert_eq!(state.entries[0b011 - 1], Some(verdict(0b011, 0)));
        assert_eq!(
            state.entries[0b100 - 1],
            None,
            "out-of-window entry dropped"
        );
        state = model.transition(&state, &CatalogAction::Swap).unwrap();
        assert!(state.entries.iter().all(Option::is_none), "swap clears all");
        assert_eq!(state.vmod, 1);
    }
}
