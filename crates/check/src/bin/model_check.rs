//! Bounded exhaustive model check of the lifecycle/compaction/remap and
//! catalog-swap protocols, with conformance replay against the real
//! implementations. CI runs this in release mode; any violation exits
//! non-zero after printing the shortest counterexample trace.
//!
//! Usage: `model_check [--lifecycle-depth N] [--engine-depth N]
//! [--catalog-depth N] [--skip-engine]`

use std::process::ExitCode;

use tvq_check::{conformance, CatalogModel, LifecycleModel, Machine, Report, Traversal};

struct Args {
    lifecycle_depth: usize,
    engine_depth: usize,
    catalog_depth: usize,
    skip_engine: bool,
}

fn parse_args() -> Result<Args, String> {
    // Defaults sized for a sub-minute release-mode CI run: lifecycle 6 is
    // ~700k states / 2.1M transitions, engine 5 replays 104k states through
    // two real engines, catalog 8 is the full ~20k-state fixpoint region.
    // Depth 7 lifecycle (4.3M states) passes too but takes ~4 minutes.
    let mut args = Args {
        lifecycle_depth: 6,
        engine_depth: 5,
        catalog_depth: 8,
        skip_engine: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut depth = |name: &str| -> Result<usize, String> {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--lifecycle-depth" => args.lifecycle_depth = depth("--lifecycle-depth")?,
            "--engine-depth" => args.engine_depth = depth("--engine-depth")?,
            "--catalog-depth" => args.catalog_depth = depth("--catalog-depth")?,
            "--skip-engine" => args.skip_engine = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run<M: Machine>(name: &str, report: &Report<M>) -> bool {
    print!("{}", report.render(name));
    report.ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("model_check: {message}");
            return ExitCode::from(2);
        }
    };
    let mut ok = true;

    // Lifecycle model with component-level conformance replay: every edge's
    // witness path drives ObjectLifecycle + SetInterner + shared ClassStore.
    let lifecycle = Traversal::new(LifecycleModel, args.lifecycle_depth);
    let report = lifecycle.run_with(|path, _| conformance::replay_component(path));
    ok &= run("lifecycle (component replay)", &report);

    // The same model replayed through two full engines sharing a class
    // store — shallower (each edge builds two engines) but end to end.
    if args.skip_engine {
        println!("model lifecycle (engine replay): skipped");
    } else {
        let engine = Traversal::new(LifecycleModel, args.engine_depth);
        let report = engine.run_with(|path, _| conformance::replay_engine(path));
        ok &= run("lifecycle (engine replay)", &report);
    }

    // Catalog-swap model with verdict-cache conformance replay.
    let catalog = Traversal::new(CatalogModel, args.catalog_depth);
    let report = catalog.run_with(|path, _| conformance::replay_catalog(path));
    ok &= run("catalog-swap (verdict-cache replay)", &report);

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
