//! Bounded exhaustive model check of the lifecycle/compaction/remap and
//! catalog-swap protocols, with conformance replay against the real
//! implementations. CI runs this in release mode; any violation exits
//! non-zero after printing the shortest counterexample trace.
//!
//! Usage: `model_check [--lifecycle-depth N] [--engine-depth N]
//! [--catalog-depth N] [--skip-engine] [--workers N] [--symmetry]
//! [--spill-dir DIR]`
//!
//! `--symmetry` explores each model's symmetry quotient (feed/class swaps
//! for the lifecycle model, version-residue rotation for the catalog
//! model), `--workers N` shards the frontier across N threads, and
//! `--spill-dir DIR` keeps canonical states in per-shard logs on the real
//! filesystem instead of RAM. All three are report-preserving: any
//! configuration prints byte-identical output for the same depths.

use std::process::ExitCode;

use tvq_check::{conformance, CatalogModel, LifecycleModel, Machine, Report, Traversal};
use tvq_store::RealIo;

struct Args {
    lifecycle_depth: usize,
    engine_depth: usize,
    catalog_depth: usize,
    skip_engine: bool,
    workers: usize,
    symmetry: bool,
    spill_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    // Defaults sized for a sub-minute release-mode CI run: lifecycle 6 is
    // ~700k states / 2.1M transitions, engine 5 replays 104k states through
    // two real engines, catalog 8 is the full ~20k-state fixpoint region.
    // Deeper lifecycle runs want `--symmetry` (≈4× fewer canonical states)
    // and, past depth 9, `--spill-dir`.
    let mut args = Args {
        lifecycle_depth: 6,
        engine_depth: 5,
        catalog_depth: 8,
        skip_engine: false,
        workers: 1,
        symmetry: false,
        spill_dir: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let mut depth = |name: &str| -> Result<usize, String> {
            value(name)?.parse().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--lifecycle-depth" => args.lifecycle_depth = depth("--lifecycle-depth")?,
            "--engine-depth" => args.engine_depth = depth("--engine-depth")?,
            "--catalog-depth" => args.catalog_depth = depth("--catalog-depth")?,
            "--skip-engine" => args.skip_engine = true,
            "--workers" => args.workers = depth("--workers")?.max(1),
            "--symmetry" => args.symmetry = true,
            "--spill-dir" => args.spill_dir = Some(value("--spill-dir")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

impl Args {
    /// Applies the shared exploration flags to a traversal, giving each
    /// model its own spill subdirectory.
    fn configure<M: Machine>(&self, traversal: Traversal<M>, name: &str) -> Traversal<M> {
        let traversal = traversal
            .with_workers(self.workers)
            .with_symmetry(self.symmetry);
        match &self.spill_dir {
            Some(dir) => {
                traversal.with_spill(RealIo::shared(), std::path::Path::new(dir).join(name))
            }
            None => traversal,
        }
    }
}

fn run<M: Machine>(name: &str, report: &Report<M>) -> bool {
    print!("{}", report.render(name));
    report.ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("model_check: {message}");
            return ExitCode::from(2);
        }
    };
    let mut ok = true;

    // Lifecycle model with component-level conformance replay: every edge's
    // witness path drives ObjectLifecycle + SetInterner + shared ClassStore
    // (one independent replay stack per worker lane).
    let lifecycle = args.configure(
        Traversal::new(LifecycleModel, args.lifecycle_depth),
        "lifecycle",
    );
    let report =
        lifecycle.run_sharded(|_worker| |path: &[_], _: &_| conformance::replay_component(path));
    ok &= run("lifecycle (component replay)", &report);

    // The same model replayed through two full engines sharing a class
    // store — shallower (each edge builds two engines) but end to end.
    if args.skip_engine {
        println!("model lifecycle (engine replay): skipped");
    } else {
        let engine = args.configure(Traversal::new(LifecycleModel, args.engine_depth), "engine");
        let report =
            engine.run_sharded(|_worker| |path: &[_], _: &_| conformance::replay_engine(path));
        ok &= run("lifecycle (engine replay)", &report);
    }

    // Catalog-swap model with verdict-cache conformance replay.
    let catalog = args.configure(Traversal::new(CatalogModel, args.catalog_depth), "catalog");
    let report =
        catalog.run_sharded(|_worker| |path: &[_], _: &_| conformance::replay_catalog(path));
    ok &= run("catalog-swap (verdict-cache replay)", &report);

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
