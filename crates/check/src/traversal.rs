//! Exhaustive breadth-first traversal: symmetry-reduced, shardable across
//! worker threads, optionally disk-backed — with canonical-state dedup and
//! shortest-counterexample extraction.
//!
//! The traversal explores every state a [`Machine`] can reach within a
//! depth bound, checking the machine's invariant at every examined edge and
//! optionally handing every edge (witness path + landed state) to a replay
//! hook. Because exploration is breadth-first and level-synchronized, the
//! first violation found is reached by a shortest action sequence — the
//! printed counterexample is minimal in length, which is what makes it
//! readable.
//!
//! Three orthogonal scaling levers, all preserving the exact sequential
//! semantics (identical reports, byte for byte, whatever the
//! configuration):
//!
//! * **Symmetry reduction** ([`Traversal::with_symmetry`]): when the model
//!   declares a symmetry group ([`Machine::reduce`]), states are
//!   deduplicated on orbit representatives. Each stored node carries the
//!   accumulated group element σ mapping its representative back to the
//!   concrete state the run actually reaches, and every stored edge carries
//!   the σ-relabeled *concrete* action — so counterexample traces and
//!   conformance replays are genuine concrete runs, not quotient-space
//!   artifacts.
//! * **Sharded parallel exploration** ([`Traversal::with_workers`]): the
//!   frontier and seen-set are partitioned by canonical-state hash across N
//!   worker threads. Exploration is level-synchronized in three phases —
//!   parallel expand, parallel hash-owned dedup, then a single-threaded
//!   merge that orders newly discovered states by (parent rank, action
//!   index). That order is exactly the order a sequential BFS discovers
//!   them in, which is what makes reports worker-count-independent.
//! * **Disk spill** ([`Traversal::with_spill`]): canonical states live in
//!   per-shard append-only logs on a [`StoreIo`](tvq_store::StoreIo) (checksummed records, RAM
//!   keeps only a hash → location index), so frontiers beyond RAM fit on a
//!   real disk. Dedup stays *exact* — hash hits are resolved by reading the
//!   stored bytes back and comparing — and any IO failure or checksum
//!   mismatch aborts the run with a [`SpillError`], never a silently wrong
//!   verdict.
//!
//! When a level produces violations, the whole level is still completed
//! (counters stay configuration-independent), every violation is collected,
//! and the list is sorted by (trace length, message, state) so the primary
//! counterexample — and the rendered report — is stable across runs,
//! worker counts, and backings.

use std::io;
use std::path::{Path, PathBuf};

use tvq_common::{FxHashMap, FxHashSet, FxHasher};
use tvq_store::SharedIo;

use crate::machine::Machine;

/// Why a spill-backed traversal could not complete. `run`/`run_with`
/// panic on these; the `try_` variants surface them. A traversal that
/// returns an error has made **no** verdict — it is never a wrong
/// "no violation".
#[derive(Debug)]
pub enum SpillError {
    /// The backing [`StoreIo`](tvq_store::StoreIo) failed (e.g. an injected crash).
    Io(io::Error),
    /// A spilled record failed its length, checksum, or decode check.
    Corrupt(String),
    /// Spill was requested but the machine has no state codec
    /// ([`Machine::encode_state`] returned `false`).
    Unsupported,
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill io error: {e}"),
            SpillError::Corrupt(why) => write!(f, "spill corruption: {why}"),
            SpillError::Unsupported => write!(f, "machine does not support state spill"),
        }
    }
}

impl std::error::Error for SpillError {}

fn corrupt(why: &str) -> SpillError {
    SpillError::Corrupt(why.to_owned())
}

/// Per-depth exploration counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DepthStats {
    /// Distinct canonical states first discovered at this depth.
    pub states: usize,
    /// Edges examined out of this depth's states.
    pub transitions: usize,
}

/// What a traversal found.
#[derive(Debug)]
pub struct Report<M: Machine> {
    /// Distinct canonical states discovered (including the initial state).
    pub states_explored: usize,
    /// Edges examined (state × applicable action pairs, within the bound).
    pub transitions: usize,
    /// Depth of the deepest discovered state (bounded by `max_depth`).
    pub max_depth_reached: usize,
    /// Counters broken down by depth: `per_depth[d]` covers the states
    /// first discovered at depth `d` and the edges expanded out of them.
    pub per_depth: Vec<DepthStats>,
    /// Edges whose successor was folded onto a different orbit
    /// representative (the symmetry group element was not the identity) —
    /// the "dedup by symmetry" count. Always 0 without symmetry reduction.
    pub symmetry_relabels: u64,
    /// Worker lanes the traversal ran with (reports are identical for any
    /// value; recorded for the rendered artifact).
    pub workers: usize,
    /// Whether symmetry reduction was enabled.
    pub symmetry: bool,
    /// Whether states were spilled to a [`StoreIo`](tvq_store::StoreIo) backing.
    pub spilled: bool,
    /// Every violation found on the first violating level, sorted by
    /// (trace length, message, state) — deterministic across runs, worker
    /// counts, and backings. Empty means every reachable state within the
    /// bound satisfies every invariant (and every edge replayed
    /// conformantly, when a replay hook was supplied).
    pub violations: Vec<Violation<M>>,
}

/// A violated invariant (or failed conformance replay) with the shortest
/// action trace reaching it.
#[derive(Debug)]
pub struct Violation<M: Machine> {
    /// What went wrong.
    pub message: String,
    /// The concrete actions from the initial state to the violation, in
    /// order (already relabeled out of the symmetry quotient).
    pub trace: Vec<M::Action>,
    /// Debug rendering of the concrete model state at (or, for transition
    /// errors, immediately before) the violation.
    pub state: String,
}

impl<M: Machine> Report<M> {
    /// Whether the traversal completed with no violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The primary (first, shortest-then-lexicographic) violation, if any.
    pub fn violation(&self) -> Option<&Violation<M>> {
        self.violations.first()
    }

    /// Renders the report for humans and CI artifacts: the exploration
    /// counters, the per-depth table, and — when violations were found —
    /// the numbered counterexample trace of the primary violation plus a
    /// one-line summary of each co-discovered one.
    pub fn render(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "model {name}: {} states, {} transitions, depth {}\n",
            self.states_explored, self.transitions, self.max_depth_reached
        );
        let _ = writeln!(
            out,
            "  workers {}, symmetry {} ({} symmetry-relabeled edges), spill {}",
            self.workers,
            if self.symmetry { "on" } else { "off" },
            self.symmetry_relabels,
            if self.spilled { "on" } else { "off" }
        );
        out.push_str("  depth    states    transitions\n");
        for (depth, stats) in self.per_depth.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {depth:>5} {:>9} {:>14}",
                stats.states, stats.transitions
            );
        }
        if self.violations.is_empty() {
            out.push_str("  no invariant violations\n");
        } else {
            let violation = &self.violations[0];
            let _ = writeln!(
                out,
                "  VIOLATION: {}\n  counterexample ({} steps):",
                violation.message,
                violation.trace.len()
            );
            for (i, action) in violation.trace.iter().enumerate() {
                let _ = writeln!(out, "    {:>2}. {action:?}", i + 1);
            }
            let _ = writeln!(out, "  state: {}", violation.state);
            for other in &self.violations[1..] {
                let _ = writeln!(
                    out,
                    "  also at depth {}: {}",
                    other.trace.len(),
                    other.message
                );
            }
        }
        out
    }
}

/// Breadth-first explorer of a [`Machine`]'s reachable states.
pub struct Traversal<M: Machine> {
    machine: M,
    max_depth: usize,
    workers: usize,
    symmetry: bool,
    spill: Option<(SharedIo, PathBuf)>,
}

/// Per-node bookkeeping shared by every backing: the predecessor link used
/// to rebuild the shortest concrete witness path, the accumulated symmetry
/// element σ (concrete state = `sym_state(σ, representative)`), and the
/// worker lane owning the node's representative.
struct Meta<M: Machine> {
    parent: Option<(u32, M::Action)>,
    sym: M::Sym,
    home: u16,
}

/// Where representative states live: in RAM (indexed by node id) or in
/// per-lane spill logs (located by byte range).
enum Backing<M: Machine> {
    Mem(Vec<M::State>),
    Disk(Vec<(u64, u32)>),
}

/// One lane's seen-set shard.
enum LaneSeen<M: Machine> {
    Mem(FxHashSet<M::State>),
    Disk {
        /// state hash → candidate record locations in this lane's log.
        index: FxHashMap<u64, Vec<(u64, u32)>>,
        /// Current length of this lane's log file.
        len: u64,
    },
}

/// A successor produced by phase A, routed to the lane owning its hash.
struct Candidate<M: Machine> {
    hash: u64,
    repr: M::State,
    sym: M::Sym,
    parent: u32,
    aidx: u32,
    action: M::Action,
}

/// A deduplicated new state produced by phase B, awaiting its global rank.
struct Fresh<M: Machine> {
    parent: u32,
    aidx: u32,
    action: M::Action,
    sym: M::Sym,
    home: u16,
    state: Option<M::State>,
    loc: (u64, u32),
}

/// Phase A output for one lane.
struct Expanded<M: Machine> {
    outbox: Vec<Vec<Candidate<M>>>,
    violations: Vec<Violation<M>>,
    transitions: usize,
    relabels: u64,
}

fn hash_state<S: std::hash::Hash>(state: &S) -> u64 {
    use std::hash::Hasher as _;
    let mut hasher = FxHasher::default();
    state.hash(&mut hasher);
    hasher.finish()
}

fn checksum(payload: &[u8]) -> u32 {
    use std::hash::Hasher as _;
    let mut hasher = FxHasher::default();
    hasher.write(payload);
    hasher.finish() as u32
}

/// Appends one `[len][payload][checksum]` record to `buf`, returning the
/// record's total length.
fn push_record(buf: &mut Vec<u8>, payload: &[u8]) -> u32 {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&checksum(payload).to_le_bytes());
    (payload.len() + 8) as u32
}

/// Validates one record read back from a spill log, returning its payload.
fn parse_record(record: &[u8]) -> Result<&[u8], SpillError> {
    if record.len() < 8 {
        return Err(corrupt("spill record shorter than its header"));
    }
    let payload_len = u32::from_le_bytes(record[0..4].try_into().expect("4-byte slice")) as usize;
    if payload_len + 8 != record.len() {
        return Err(corrupt("spill record length mismatch"));
    }
    let payload = &record[4..4 + payload_len];
    let stored = u32::from_le_bytes(record[4 + payload_len..].try_into().expect("4-byte slice"));
    if stored != checksum(payload) {
        return Err(corrupt("spill record checksum mismatch"));
    }
    Ok(payload)
}

fn shard_path(dir: &Path, lane: u16) -> PathBuf {
    dir.join(format!("shard-{lane:03}.log"))
}

/// The hook type [`Traversal::try_run`] fills its lanes with.
type NoopHook<M> = fn(&[<M as Machine>::Action], &<M as Machine>::State) -> Result<(), String>;

fn noop_hook<M: Machine>(_: &[M::Action], _: &M::State) -> Result<(), String> {
    Ok(())
}

impl<M: Machine> Traversal<M> {
    /// Creates a traversal exploring up to `max_depth` actions deep
    /// (sequential, no symmetry reduction, fully in-memory).
    pub fn new(machine: M, max_depth: usize) -> Self {
        Traversal {
            machine,
            max_depth,
            workers: 1,
            symmetry: false,
            spill: None,
        }
    }

    /// Shards the frontier and seen-set across `workers` threads. The
    /// report is identical for every worker count; only wall-clock changes.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables symmetry reduction (requires the machine to declare its
    /// group via [`Machine::reduce`]; a machine with the trivial default
    /// group is simply unaffected).
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Spills canonical states to per-lane logs under `dir` on the given
    /// [`StoreIo`](tvq_store::StoreIo) (requires the machine to implement the state codec).
    /// Existing shard files under `dir` are reset.
    pub fn with_spill(mut self, io: SharedIo, dir: impl Into<PathBuf>) -> Self {
        self.spill = Some((io, dir.into()));
        self
    }

    /// The machine under traversal.
    pub fn machine(&self) -> &M {
        &self.machine
    }
}

impl<M> Traversal<M>
where
    M: Machine + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    M::Sym: Send + Sync,
{
    /// Explores the model alone (no conformance replay), honoring the
    /// configured worker count. Panics on [`SpillError`] (only possible
    /// when a spill backing is configured); use [`try_run`](Self::try_run)
    /// to handle spill failures.
    pub fn run(&self) -> Report<M> {
        self.try_run().expect("traversal aborted")
    }

    /// Fallible variant of [`run`](Self::run).
    pub fn try_run(&self) -> Result<Report<M>, SpillError> {
        let lanes = self.workers;
        let mut hooks: Vec<NoopHook<M>> = vec![noop_hook::<M>; lanes];
        self.explore(&mut hooks)
    }

    /// Explores the model, additionally invoking `on_edge` for the initial
    /// state (empty path) and for **every** examined edge with the shortest
    /// concrete witness path to the edge's endpoint and the concrete model
    /// state it lands in. The hook replays the path through the real
    /// implementation and returns `Err` on any observable divergence; such
    /// an error is reported exactly like an invariant violation, trace
    /// included.
    ///
    /// A single `FnMut` hook cannot be shared across threads, so this
    /// variant explores on one lane regardless of
    /// [`with_workers`](Self::with_workers) — the report is identical
    /// either way. Use [`run_sharded`](Self::run_sharded) to combine
    /// parallel lanes with per-lane replay stacks.
    pub fn run_with<F>(&self, on_edge: F) -> Report<M>
    where
        F: FnMut(&[M::Action], &M::State) -> Result<(), String> + Send,
    {
        self.try_run_with(on_edge).expect("traversal aborted")
    }

    /// Fallible variant of [`run_with`](Self::run_with).
    pub fn try_run_with<F>(&self, on_edge: F) -> Result<Report<M>, SpillError>
    where
        F: FnMut(&[M::Action], &M::State) -> Result<(), String> + Send,
    {
        let mut hooks = [on_edge];
        self.explore(&mut hooks)
    }

    /// Explores with the configured worker count, building one independent
    /// replay hook per lane via `per_worker` (so each worker replays
    /// through its own engine stack). Semantics per edge are those of
    /// [`run_with`](Self::run_with).
    pub fn run_sharded<F, H>(&self, per_worker: F) -> Report<M>
    where
        F: Fn(usize) -> H,
        H: FnMut(&[M::Action], &M::State) -> Result<(), String> + Send,
    {
        self.try_run_sharded(per_worker).expect("traversal aborted")
    }

    /// Fallible variant of [`run_sharded`](Self::run_sharded).
    pub fn try_run_sharded<F, H>(&self, per_worker: F) -> Result<Report<M>, SpillError>
    where
        F: Fn(usize) -> H,
        H: FnMut(&[M::Action], &M::State) -> Result<(), String> + Send,
    {
        let mut hooks: Vec<H> = (0..self.workers).map(per_worker).collect();
        self.explore(&mut hooks)
    }

    /// The level-synchronized engine. One lane per hook; every public run
    /// variant funnels here, which is what guarantees identical reports
    /// across configurations.
    fn explore<H>(&self, hooks: &mut [H]) -> Result<Report<M>, SpillError>
    where
        H: FnMut(&[M::Action], &M::State) -> Result<(), String> + Send,
    {
        let lanes = hooks.len().max(1);
        let mut report = Report {
            states_explored: 1,
            transitions: 0,
            max_depth_reached: 0,
            per_depth: vec![DepthStats {
                states: 1,
                transitions: 0,
            }],
            symmetry_relabels: 0,
            workers: lanes,
            symmetry: self.symmetry,
            spilled: self.spill.is_some(),
            violations: Vec::new(),
        };

        let initial = self.machine.initial();
        if let Err(message) = self.machine.invariant(&initial) {
            report.violations.push(Violation {
                message,
                trace: Vec::new(),
                state: format!("{initial:?}"),
            });
            return Ok(report);
        }
        if let Err(message) = hooks[0](&[], &initial) {
            report.violations.push(Violation {
                message,
                trace: Vec::new(),
                state: format!("{initial:?}"),
            });
            return Ok(report);
        }

        let (repr0, sym0) = if self.symmetry {
            self.machine.reduce(initial)
        } else {
            (initial, M::Sym::default())
        };
        let home0 = (hash_state(&repr0) % lanes as u64) as u16;

        let mut meta: Vec<Meta<M>> = vec![Meta {
            parent: None,
            sym: sym0,
            home: home0,
        }];
        let mut seen: Vec<LaneSeen<M>>;
        let mut backing: Backing<M>;
        if let Some((io, dir)) = &self.spill {
            io.create_dir_all(dir).map_err(SpillError::Io)?;
            seen = Vec::with_capacity(lanes);
            for lane in 0..lanes {
                io.write_file(&shard_path(dir, lane as u16), b"")
                    .map_err(SpillError::Io)?;
                seen.push(LaneSeen::Disk {
                    index: FxHashMap::default(),
                    len: 0,
                });
            }
            let mut payload = Vec::new();
            if !self.machine.encode_state(&repr0, &mut payload) {
                return Err(SpillError::Unsupported);
            }
            let mut buf = Vec::new();
            let record_len = push_record(&mut buf, &payload);
            io.append(&shard_path(dir, home0), &buf)
                .map_err(SpillError::Io)?;
            let LaneSeen::Disk { index, len } = &mut seen[home0 as usize] else {
                unreachable!("disk backing uses disk lanes");
            };
            index.insert(hash_state(&repr0), vec![(0, record_len)]);
            *len = buf.len() as u64;
            backing = Backing::Disk(vec![(0, record_len)]);
        } else {
            seen = (0..lanes)
                .map(|_| LaneSeen::Mem(FxHashSet::default()))
                .collect();
            let LaneSeen::Mem(set) = &mut seen[home0 as usize] else {
                unreachable!("mem backing uses mem lanes");
            };
            set.insert(repr0.clone());
            backing = Backing::Mem(vec![repr0]);
        }

        let mut level: Vec<u32> = vec![0];
        let mut depth = 0usize;
        let mut violations: Vec<Violation<M>> = Vec::new();

        while !level.is_empty() && depth < self.max_depth {
            // Partition the level's nodes among their owning lanes.
            let mut owned: Vec<Vec<u32>> = vec![Vec::new(); lanes];
            for &id in &level {
                owned[meta[id as usize].home as usize].push(id);
            }

            // Phase A: parallel expand. Each lane enumerates its nodes'
            // edges, checks invariants, calls its replay hook, and routes
            // successor candidates to the lane owning their hash.
            let expanded: Vec<Expanded<M>> = {
                let meta_ref = &meta;
                let backing_ref = &backing;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = owned
                        .iter()
                        .zip(hooks.iter_mut())
                        .map(|(ids, hook)| {
                            scope.spawn(move || {
                                self.expand_lane(lanes, ids, meta_ref, backing_ref, hook)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("traversal worker panicked"))
                        .collect::<Result<Vec<_>, _>>()
                })?
            };

            // Route candidates into per-destination columns (source-lane
            // order, so every configuration sees the same multiset in the
            // same deterministic arrangement).
            let mut columns: Vec<Vec<Candidate<M>>> = (0..lanes).map(|_| Vec::new()).collect();
            let mut level_transitions = 0usize;
            for lane_out in expanded {
                for (dest, batch) in lane_out.outbox.into_iter().enumerate() {
                    columns[dest].extend(batch);
                }
                violations.extend(lane_out.violations);
                level_transitions += lane_out.transitions;
                report.symmetry_relabels += lane_out.relabels;
            }
            report.transitions += level_transitions;
            report.per_depth[depth].transitions = level_transitions;

            // Phase B: parallel hash-owned dedup against each lane's seen
            // shard, keeping the (parent rank, action index)-minimal
            // discovering edge per new state.
            let fresh_by_lane: Vec<Vec<Fresh<M>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = columns
                    .into_iter()
                    .zip(seen.iter_mut())
                    .enumerate()
                    .map(|(lane, (candidates, lane_seen))| {
                        scope.spawn(move || self.dedup_lane(lane as u16, candidates, lane_seen))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("traversal worker panicked"))
                    .collect::<Result<Vec<_>, _>>()
            })?;

            // Phase C: single-threaded merge. Global (parent rank, action
            // index) order is exactly sequential-BFS discovery order, so
            // node ids — and with them every witness and counter — are
            // worker-count-independent.
            let mut fresh: Vec<Fresh<M>> = fresh_by_lane.into_iter().flatten().collect();
            fresh.sort_by_key(|f| (f.parent, f.aidx));
            level.clear();
            for f in fresh {
                let id = meta.len() as u32;
                meta.push(Meta {
                    parent: Some((f.parent, f.action)),
                    sym: f.sym,
                    home: f.home,
                });
                match &mut backing {
                    Backing::Mem(states) => {
                        states.push(f.state.expect("mem backing carries states"))
                    }
                    Backing::Disk(locs) => locs.push(f.loc),
                }
                level.push(id);
            }
            if !level.is_empty() {
                depth += 1;
                report.states_explored += level.len();
                report.max_depth_reached = depth;
                report.per_depth.push(DepthStats {
                    states: level.len(),
                    transitions: 0,
                });
            }
            if !violations.is_empty() {
                break;
            }
        }

        violations.sort_by(|a, b| {
            (a.trace.len(), &a.message, &a.state).cmp(&(b.trace.len(), &b.message, &b.state))
        });
        report.violations = violations;
        Ok(report)
    }

    /// Phase A for one lane: expand every owned node of the current level.
    fn expand_lane<H>(
        &self,
        lanes: usize,
        ids: &[u32],
        meta: &[Meta<M>],
        backing: &Backing<M>,
        hook: &mut H,
    ) -> Result<Expanded<M>, SpillError>
    where
        H: FnMut(&[M::Action], &M::State) -> Result<(), String>,
    {
        let mut out = Expanded {
            outbox: (0..lanes).map(|_| Vec::new()).collect(),
            violations: Vec::new(),
            transitions: 0,
            relabels: 0,
        };
        let mut actions: Vec<M::Action> = Vec::new();
        for &id in ids {
            let fetched;
            let state: &M::State = match backing {
                Backing::Mem(states) => &states[id as usize],
                Backing::Disk(_) => {
                    fetched = self.fetch_state(meta, backing, id)?;
                    &fetched
                }
            };
            let sym = &meta[id as usize].sym;
            let mut path = witness(meta, id);
            actions.clear();
            self.machine.actions(state, &mut actions);
            for (aidx, action) in actions.iter().enumerate() {
                out.transitions += 1;
                let concrete_action = if self.symmetry {
                    self.machine.sym_action(sym, action)
                } else {
                    action.clone()
                };
                let next = match self.machine.transition(state, action) {
                    Ok(next) => next,
                    Err(message) => {
                        path.push(concrete_action);
                        let concrete_parent = self.concretize(sym, state);
                        // Re-derive the error in concrete space so the
                        // message names the same ids as the trace; by
                        // equivariance the concrete step fails identically.
                        let message = self
                            .machine
                            .transition(&concrete_parent, path.last().expect("just pushed"))
                            .err()
                            .unwrap_or(message);
                        out.violations.push(Violation {
                            message,
                            trace: path.clone(),
                            state: format!("{concrete_parent:?}"),
                        });
                        path.pop();
                        continue;
                    }
                };
                path.push(concrete_action);
                if let Err(message) = self.machine.invariant(&next) {
                    let concrete_next = self.concretize(sym, &next);
                    let message = self
                        .machine
                        .invariant(&concrete_next)
                        .err()
                        .unwrap_or(message);
                    out.violations.push(Violation {
                        message,
                        trace: path.clone(),
                        state: format!("{concrete_next:?}"),
                    });
                    path.pop();
                    continue;
                }
                let hook_result = if self.symmetry {
                    let concrete_next = self.machine.sym_state(sym, &next);
                    hook(&path, &concrete_next)
                } else {
                    hook(&path, &next)
                };
                if let Err(message) = hook_result {
                    out.violations.push(Violation {
                        message,
                        trace: path.clone(),
                        state: format!("{:?}", self.concretize(sym, &next)),
                    });
                }
                let (repr, child_sym) = if self.symmetry {
                    let (repr, g) = self.machine.reduce(next);
                    if g != M::Sym::default() {
                        out.relabels += 1;
                    }
                    (repr, self.machine.sym_compose(sym, &g))
                } else {
                    (next, M::Sym::default())
                };
                let hash = hash_state(&repr);
                let dest = (hash % lanes as u64) as usize;
                out.outbox[dest].push(Candidate {
                    hash,
                    repr,
                    sym: child_sym,
                    parent: id,
                    aidx: aidx as u32,
                    action: path.pop().expect("pushed above"),
                });
            }
        }
        Ok(out)
    }

    /// Phase B for one lane: exact dedup of routed candidates against this
    /// lane's seen shard (and against each other), appending the survivors
    /// to the spill log when disk-backed.
    fn dedup_lane(
        &self,
        lane: u16,
        candidates: Vec<Candidate<M>>,
        seen: &mut LaneSeen<M>,
    ) -> Result<Vec<Fresh<M>>, SpillError> {
        match seen {
            LaneSeen::Mem(set) => {
                // Keyed by representative; the value is the minimal
                // (parent, action-index) discoverer with its sym/action.
                type Discoverer<M> = (u32, u32, <M as Machine>::Sym, <M as Machine>::Action);
                let mut pending: FxHashMap<M::State, Discoverer<M>> = FxHashMap::default();
                for c in candidates {
                    if set.contains(&c.repr) {
                        continue;
                    }
                    match pending.entry(c.repr) {
                        std::collections::hash_map::Entry::Occupied(mut entry) => {
                            let held = entry.get_mut();
                            if (c.parent, c.aidx) < (held.0, held.1) {
                                *held = (c.parent, c.aidx, c.sym, c.action);
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(entry) => {
                            entry.insert((c.parent, c.aidx, c.sym, c.action));
                        }
                    }
                }
                let mut fresh: Vec<Fresh<M>> = pending
                    .into_iter()
                    .map(|(state, (parent, aidx, sym, action))| Fresh {
                        parent,
                        aidx,
                        action,
                        sym,
                        home: lane,
                        state: Some(state),
                        loc: (0, 0),
                    })
                    .collect();
                fresh.sort_by_key(|f| (f.parent, f.aidx));
                for f in &fresh {
                    set.insert(f.state.clone().expect("mem fresh carries state"));
                }
                Ok(fresh)
            }
            LaneSeen::Disk { index, len } => {
                let (io, dir) = self.spill.as_ref().expect("disk lanes imply spill config");
                let path = shard_path(dir, lane);
                struct Pend<M: Machine> {
                    bytes: Vec<u8>,
                    hash: u64,
                    parent: u32,
                    aidx: u32,
                    sym: M::Sym,
                    action: M::Action,
                }
                let mut pending: FxHashMap<u64, Vec<Pend<M>>> = FxHashMap::default();
                let mut bytes = Vec::new();
                for c in candidates {
                    bytes.clear();
                    if !self.machine.encode_state(&c.repr, &mut bytes) {
                        return Err(SpillError::Unsupported);
                    }
                    let mut dup = false;
                    if let Some(locations) = index.get(&c.hash) {
                        for &(offset, record_len) in locations {
                            let record = io
                                .read_range(&path, offset, record_len as usize)
                                .map_err(SpillError::Io)?;
                            if parse_record(&record)? == bytes.as_slice() {
                                dup = true;
                                break;
                            }
                        }
                    }
                    if dup {
                        continue;
                    }
                    let bucket = pending.entry(c.hash).or_default();
                    if let Some(held) = bucket.iter_mut().find(|p| p.bytes == bytes) {
                        if (c.parent, c.aidx) < (held.parent, held.aidx) {
                            held.parent = c.parent;
                            held.aidx = c.aidx;
                            held.sym = c.sym;
                            held.action = c.action;
                        }
                    } else {
                        bucket.push(Pend {
                            bytes: bytes.clone(),
                            hash: c.hash,
                            parent: c.parent,
                            aidx: c.aidx,
                            sym: c.sym,
                            action: c.action,
                        });
                    }
                }
                let mut entries: Vec<Pend<M>> = pending.into_values().flatten().collect();
                entries.sort_by_key(|e| (e.parent, e.aidx));
                let mut buf = Vec::new();
                let mut fresh = Vec::with_capacity(entries.len());
                for entry in entries {
                    let offset = *len + buf.len() as u64;
                    let record_len = push_record(&mut buf, &entry.bytes);
                    index
                        .entry(entry.hash)
                        .or_default()
                        .push((offset, record_len));
                    fresh.push(Fresh {
                        parent: entry.parent,
                        aidx: entry.aidx,
                        action: entry.action,
                        sym: entry.sym,
                        home: lane,
                        state: None,
                        loc: (offset, record_len),
                    });
                }
                if !buf.is_empty() {
                    io.append(&path, &buf).map_err(SpillError::Io)?;
                    *len += buf.len() as u64;
                }
                Ok(fresh)
            }
        }
    }

    /// Reads one spilled node's representative back from its lane log.
    fn fetch_state(
        &self,
        meta: &[Meta<M>],
        backing: &Backing<M>,
        id: u32,
    ) -> Result<M::State, SpillError> {
        let Backing::Disk(locs) = backing else {
            unreachable!("fetch_state is only called for disk backing");
        };
        let (io, dir) = self
            .spill
            .as_ref()
            .expect("disk backing implies spill config");
        let (offset, record_len) = locs[id as usize];
        let path = shard_path(dir, meta[id as usize].home);
        let record = io
            .read_range(&path, offset, record_len as usize)
            .map_err(SpillError::Io)?;
        let payload = parse_record(&record)?;
        self.machine
            .decode_state(payload)
            .ok_or_else(|| corrupt("spilled state failed to decode"))
    }

    /// The concrete state a node's representative stands for.
    fn concretize(&self, sym: &M::Sym, repr: &M::State) -> M::State {
        if self.symmetry {
            self.machine.sym_state(sym, repr)
        } else {
            repr.clone()
        }
    }
}

/// The shortest concrete action path from the initial state to `id`.
fn witness<M: Machine>(meta: &[Meta<M>], mut id: u32) -> Vec<M::Action> {
    let mut path = Vec::new();
    while let Some((parent, action)) = &meta[id as usize].parent {
        path.push(action.clone());
        id = *parent;
    }
    path.reverse();
    path
}
