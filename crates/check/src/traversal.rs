//! Exhaustive breadth-first traversal with canonical-state dedup and
//! shortest-counterexample extraction.
//!
//! The traversal explores every state a [`Machine`] can reach within a
//! depth bound, checking the machine's invariant at every new state and
//! optionally handing every *edge* (witness path + action) to a replay
//! hook. Because exploration is breadth-first, the first violation found is
//! reached by a shortest action sequence — the printed counterexample is
//! minimal in length, which is what makes it readable.

use std::collections::{HashMap, VecDeque};

use crate::machine::Machine;

/// What a traversal found.
#[derive(Debug)]
pub struct Report<M: Machine> {
    /// Distinct canonical states discovered (including the initial state).
    pub states_explored: usize,
    /// Edges examined (state × applicable action pairs, within the bound).
    pub transitions: usize,
    /// Depth of the deepest discovered state (bounded by `max_depth`).
    pub max_depth_reached: usize,
    /// The first violation found, if any. `None` means every reachable
    /// state within the bound satisfies every invariant (and every edge
    /// replayed conformantly, when a replay hook was supplied).
    pub violation: Option<Violation<M>>,
}

/// A violated invariant (or failed conformance replay) with the shortest
/// action trace reaching it.
#[derive(Debug)]
pub struct Violation<M: Machine> {
    /// What went wrong.
    pub message: String,
    /// The actions from the initial state to the violation, in order.
    pub trace: Vec<M::Action>,
    /// Debug rendering of the model state at (or, for transition errors,
    /// immediately before) the violation.
    pub state: String,
}

impl<M: Machine> Report<M> {
    /// Whether the traversal completed with no violation.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }

    /// Renders the report for humans: the exploration counters and — when a
    /// violation was found — the numbered counterexample trace.
    pub fn render(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "model {name}: {} states, {} transitions, depth {}\n",
            self.states_explored, self.transitions, self.max_depth_reached
        );
        match &self.violation {
            None => out.push_str("  no invariant violations\n"),
            Some(violation) => {
                let _ = writeln!(
                    out,
                    "  VIOLATION: {}\n  counterexample ({} steps):",
                    violation.message,
                    violation.trace.len()
                );
                for (i, action) in violation.trace.iter().enumerate() {
                    let _ = writeln!(out, "    {:>2}. {action:?}", i + 1);
                }
                let _ = writeln!(out, "  state: {}", violation.state);
            }
        }
        out
    }
}

/// Breadth-first explorer of a [`Machine`]'s reachable states.
pub struct Traversal<M: Machine> {
    machine: M,
    max_depth: usize,
}

/// Internal per-state bookkeeping: the predecessor link used to rebuild the
/// shortest witness path.
struct Node<M: Machine> {
    state: M::State,
    parent: Option<(usize, M::Action)>,
    depth: usize,
}

impl<M: Machine> Traversal<M> {
    /// Creates a traversal exploring up to `max_depth` actions deep.
    pub fn new(machine: M, max_depth: usize) -> Self {
        Traversal { machine, max_depth }
    }

    /// The machine under traversal.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Explores the model alone (no conformance replay).
    pub fn run(&self) -> Report<M> {
        self.run_with(|_, _| Ok(()))
    }

    /// Explores the model, additionally invoking `on_edge` for the initial
    /// state (empty path) and for **every** examined edge with the shortest
    /// witness path to the edge's endpoint and the model state it lands in.
    /// The hook replays the path through the real implementation and
    /// returns `Err` on any observable divergence; such an error is
    /// reported exactly like an invariant violation, trace included.
    pub fn run_with<F>(&self, mut on_edge: F) -> Report<M>
    where
        F: FnMut(&[M::Action], &M::State) -> Result<(), String>,
    {
        let initial = self.machine.initial();
        let mut report = Report {
            states_explored: 1,
            transitions: 0,
            max_depth_reached: 0,
            violation: None,
        };
        if let Err(message) = self.machine.invariant(&initial) {
            report.violation = Some(Violation {
                message,
                trace: Vec::new(),
                state: format!("{initial:?}"),
            });
            return report;
        }
        if let Err(message) = on_edge(&[], &initial) {
            report.violation = Some(Violation {
                message,
                trace: Vec::new(),
                state: format!("{initial:?}"),
            });
            return report;
        }

        let mut nodes: Vec<Node<M>> = vec![Node {
            state: initial.clone(),
            parent: None,
            depth: 0,
        }];
        let mut seen: HashMap<M::State, usize> = HashMap::new();
        seen.insert(initial, 0);
        let mut queue: VecDeque<usize> = VecDeque::from([0]);
        let mut actions = Vec::new();

        while let Some(index) = queue.pop_front() {
            let depth = nodes[index].depth;
            if depth == self.max_depth {
                continue;
            }
            actions.clear();
            self.machine.actions(&nodes[index].state, &mut actions);
            let witness = self.witness(&nodes, index);
            for action in actions.clone() {
                report.transitions += 1;
                let next = match self.machine.transition(&nodes[index].state, &action) {
                    Ok(next) => next,
                    Err(message) => {
                        report.violation = Some(Violation {
                            message,
                            trace: Self::extend(&witness, &action),
                            state: format!("{:?}", nodes[index].state),
                        });
                        return report;
                    }
                };
                let path = Self::extend(&witness, &action);
                if let Err(message) = self.machine.invariant(&next) {
                    report.violation = Some(Violation {
                        message,
                        trace: path,
                        state: format!("{next:?}"),
                    });
                    return report;
                }
                if let Err(message) = on_edge(&path, &next) {
                    report.violation = Some(Violation {
                        message,
                        trace: path,
                        state: format!("{next:?}"),
                    });
                    return report;
                }
                if !seen.contains_key(&next) {
                    let id = nodes.len();
                    seen.insert(next.clone(), id);
                    nodes.push(Node {
                        state: next,
                        parent: Some((index, action)),
                        depth: depth + 1,
                    });
                    report.states_explored += 1;
                    report.max_depth_reached = report.max_depth_reached.max(depth + 1);
                    queue.push_back(id);
                }
            }
        }
        report
    }

    /// The shortest action path from the initial state to `index`.
    fn witness(&self, nodes: &[Node<M>], mut index: usize) -> Vec<M::Action> {
        let mut path = Vec::with_capacity(nodes[index].depth);
        while let Some((parent, action)) = &nodes[index].parent {
            path.push(action.clone());
            index = *parent;
        }
        path.reverse();
        path
    }

    fn extend(witness: &[M::Action], action: &M::Action) -> Vec<M::Action> {
        let mut path = Vec::with_capacity(witness.len() + 1);
        path.extend_from_slice(witness);
        path.push(action.clone());
        path
    }
}
