//! Property tests for the symmetry-group and state-codec contracts that
//! quotient exploration and the disk spill rely on.
//!
//! [`Machine::reduce`] is only sound if the declared group really is a
//! group of transition-commuting bijections and `reduce` really is
//! orbit-constant. These laws are checked here on random *reachable*
//! states of both models (reachability matters: the contracts are only
//! promised on the invariant-closed reachable set):
//!
//! * **round-trip** — `sym_state(g, repr) == state` for
//!   `(repr, g) = reduce(state)`;
//! * **idempotence** — reducing a representative is a fixed point with an
//!   identity witness;
//! * **orbit invariance** — every relabelling of a state reduces to the
//!   same representative (permutation-invariance of the canonical form);
//! * **equivariance** — group elements commute with the transition
//!   relation under `sym_action` relabelling, and preserve the invariant;
//! * **codec round-trip** — `decode_state(encode_state(s)) == s`, and the
//!   encoding is functional on equal states (byte-exact dedup is sound).

use proptest::prelude::*;
use tvq_check::{CatalogModel, CatalogSym, LifecycleModel, LifecycleSym, Machine};

/// Walks `picks` through a machine from the initial state, selecting each
/// step's action by index modulo the enabled-action count, and returns
/// every state along the run (all reachable by construction).
fn walk<M: Machine>(machine: &M, picks: &[u32]) -> Vec<(M::State, Vec<M::Action>)> {
    let mut state = machine.initial();
    let mut out = Vec::with_capacity(picks.len() + 1);
    for &pick in picks {
        let mut actions = Vec::new();
        machine.actions(&state, &mut actions);
        if actions.is_empty() {
            break;
        }
        let action = actions[pick as usize % actions.len()].clone();
        let next = machine
            .transition(&state, &action)
            .expect("enumerated actions must be applicable");
        out.push((state, actions));
        state = next;
    }
    let mut finals = Vec::new();
    machine.actions(&state, &mut finals);
    out.push((state, finals));
    out
}

/// The shared law bundle, checked at one reachable state.
fn check_reduce_laws<M: Machine>(machine: &M, group: &[M::Sym], state: &M::State)
where
    M::State: PartialOrd,
    M::Sym: std::fmt::Debug,
{
    machine
        .invariant(state)
        .expect("reachable states satisfy the invariant");
    let (repr, g) = machine.reduce(state.clone());
    assert_eq!(
        machine.sym_state(&g, &repr),
        *state,
        "round-trip: reduce's witness must map the representative back"
    );
    assert!(
        repr <= *state,
        "the representative is the orbit minimum, so never above the input"
    );

    let (again, identity) = machine.reduce(repr.clone());
    assert_eq!(again, repr, "reducing a representative is a fixed point");
    assert_eq!(
        identity,
        M::Sym::default(),
        "a representative's witness is the identity"
    );

    for h in group {
        let moved = machine.sym_state(h, state);
        machine
            .invariant(&moved)
            .expect("the group preserves the invariant");
        let (repr_h, g_h) = machine.reduce(moved.clone());
        assert_eq!(
            repr_h, repr,
            "orbit invariance: {h:?}-relabelled state must share the representative"
        );
        assert_eq!(
            machine.sym_state(&g_h, &repr_h),
            moved,
            "round-trip on the relabelled state"
        );
    }
}

/// Transition equivariance at one state: for every enabled action and
/// every group element, acting then stepping equals stepping then acting.
fn check_equivariance<M: Machine>(
    machine: &M,
    group: &[M::Sym],
    state: &M::State,
    actions: &[M::Action],
) where
    M::Sym: std::fmt::Debug,
{
    for h in group {
        let moved = machine.sym_state(h, state);
        for action in actions {
            let stepped = machine
                .transition(state, action)
                .expect("enumerated actions must be applicable");
            let relabelled = machine.sym_action(h, action);
            let stepped_moved = machine.transition(&moved, &relabelled).unwrap_or_else(|e| {
                panic!("{h:?} must preserve enabled actions ({relabelled:?}): {e}")
            });
            assert_eq!(
                machine.sym_state(h, &stepped),
                stepped_moved,
                "equivariance under {h:?} for {action:?}"
            );
        }
    }
}

/// Codec round-trip plus functionality at one state.
fn check_codec<M: Machine>(machine: &M, state: &M::State) {
    let mut bytes = Vec::new();
    assert!(
        machine.encode_state(state, &mut bytes),
        "both protocol models support spilling"
    );
    let mut bytes_again = Vec::new();
    machine.encode_state(state, &mut bytes_again);
    assert_eq!(bytes, bytes_again, "encoding is functional");
    assert_eq!(
        machine.decode_state(&bytes).as_ref(),
        Some(state),
        "decode inverts encode"
    );
    // Truncations must be rejected, not misread: injectivity of the codec
    // extends to "no encoding is a prefix of a different state's bytes".
    if !bytes.is_empty() {
        assert_ne!(
            machine.decode_state(&bytes[..bytes.len() - 1]).as_ref(),
            Some(state),
            "a truncated encoding must not decode to the same state"
        );
    }
}

fn catalog_group() -> Vec<CatalogSym> {
    (0..tvq_check::catalog_model::VMOD)
        .map(CatalogSym)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Feed/class-swap group laws on random reachable lifecycle states.
    #[test]
    fn lifecycle_reduce_laws_hold_on_reachable_states(
        picks in proptest::collection::vec(0u32..10_000, 0..24),
    ) {
        let machine = LifecycleModel;
        for (state, actions) in walk(&machine, &picks) {
            check_reduce_laws(&machine, &LifecycleSym::ALL, &state);
            check_equivariance(&machine, &LifecycleSym::ALL, &state, &actions);
            check_codec(&machine, &state);
        }
    }

    /// Version-rotation group laws on random reachable catalog states.
    #[test]
    fn catalog_reduce_laws_hold_on_reachable_states(
        picks in proptest::collection::vec(0u32..10_000, 0..24),
    ) {
        let machine = CatalogModel;
        let group = catalog_group();
        for (state, actions) in walk(&machine, &picks) {
            check_reduce_laws(&machine, &group, &state);
            check_equivariance(&machine, &group, &state, &actions);
            check_codec(&machine, &state);
        }
    }

    /// Composition law: `sym_state(compose(a, b), s) ==
    /// sym_state(a, sym_state(b, s))`, on both models' full groups.
    #[test]
    fn composition_matches_sequential_application(
        picks in proptest::collection::vec(0u32..10_000, 0..16),
    ) {
        let machine = LifecycleModel;
        for (state, _) in walk(&machine, &picks) {
            for a in LifecycleSym::ALL {
                for b in LifecycleSym::ALL {
                    let composed = machine.sym_compose(&a, &b);
                    prop_assert_eq!(
                        machine.sym_state(&composed, &state),
                        machine.sym_state(&a, &machine.sym_state(&b, &state))
                    );
                }
            }
        }
        let machine = CatalogModel;
        let group = catalog_group();
        for (state, _) in walk(&machine, &picks) {
            for a in &group {
                for b in &group {
                    let composed = machine.sym_compose(a, b);
                    prop_assert_eq!(
                        machine.sym_state(&composed, &state),
                        machine.sym_state(a, &machine.sym_state(b, &state))
                    );
                }
            }
        }
    }

    /// Malformed spill bytes decode to `None`, never to a wrong state:
    /// random byte soup and bit-flipped valid encodings either fail to
    /// decode or decode to something that re-encodes to the mutated bytes.
    #[test]
    fn codec_rejects_or_roundtrips_mutated_bytes(
        picks in proptest::collection::vec(0u32..10_000, 0..12),
        flip in 0usize..512,
    ) {
        let machine = LifecycleModel;
        let (state, _) = walk(&machine, &picks).pop().unwrap();
        let mut bytes = Vec::new();
        machine.encode_state(&state, &mut bytes);
        prop_assert!(!bytes.is_empty(), "the codec always emits the count prefixes");
        let at = flip % bytes.len();
        bytes[at] ^= 1 << (flip % 8);
        if let Some(decoded) = machine.decode_state(&bytes) {
            let mut re = Vec::new();
            machine.encode_state(&decoded, &mut re);
            prop_assert_eq!(re, bytes, "decode of mutated bytes must stay injective");
            prop_assert_ne!(decoded, state, "a flipped bit cannot yield the same state");
        }
    }
}
