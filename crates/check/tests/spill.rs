//! Correctness gates for the disk-backed seen-set/frontier spill.
//!
//! The spill must be invisible in the report (a spilled run explores
//! exactly what the in-memory run explores), and every failure mode of the
//! storage layer must surface as a clean [`SpillError`] — a crash, torn
//! write, or flipped bit can abort a run, but can never produce a *wrong
//! verdict* or a silently different exploration. The crash sweep drives
//! the same [`FaultIo`] harness the durability layer's recovery tests use,
//! killing the "process" at every mutating operation in turn under every
//! torn-tail policy.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tvq_check::{CatalogModel, LifecycleModel, Machine, Report, SpillError, Traversal};
use tvq_store::{MemDisk, SharedIo, StoreIo, TornTail};

fn assert_reports_match<M: Machine>(name: &str, a: &Report<M>, b: &Report<M>) {
    assert_eq!(a.states_explored, b.states_explored, "{name}: states");
    assert_eq!(a.transitions, b.transitions, "{name}: transitions");
    assert_eq!(a.max_depth_reached, b.max_depth_reached, "{name}: depth");
    assert_eq!(a.per_depth, b.per_depth, "{name}: per-depth counters");
    assert_eq!(
        a.symmetry_relabels, b.symmetry_relabels,
        "{name}: symmetry counter"
    );
    assert_eq!(a.violations.len(), b.violations.len(), "{name}: violations");
    for (va, vb) in a.violations.iter().zip(&b.violations) {
        assert_eq!(va.message, vb.message, "{name}: violation message");
        assert_eq!(
            format!("{:?}", va.trace),
            format!("{:?}", vb.trace),
            "{name}: counterexample trace"
        );
    }
}

/// A spilled run is *exactly* the in-memory run: same counters, same
/// per-depth profile, on both models, sequential and parallel, with and
/// without symmetry — and the spill really does put bytes on the "disk".
#[test]
fn memdisk_spill_matches_in_memory_exactly() {
    for (workers, symmetry) in [(1, false), (4, false), (1, true), (4, true)] {
        let in_memory = Traversal::new(LifecycleModel, 4)
            .with_workers(workers)
            .with_symmetry(symmetry)
            .run();
        let disk = MemDisk::new();
        let spilled = Traversal::new(LifecycleModel, 4)
            .with_workers(workers)
            .with_symmetry(symmetry)
            .with_spill(disk.io(), "check/lifecycle")
            .try_run()
            .expect("clean MemDisk never fails");
        assert_reports_match("lifecycle", &in_memory, &spilled);
        assert!(spilled.spilled && !in_memory.spilled);
        assert!(in_memory.ok());
        assert!(
            disk.total_bytes() > 0,
            "the spilled run must put canonical states on disk"
        );

        let in_memory = Traversal::new(CatalogModel, 6)
            .with_workers(workers)
            .with_symmetry(symmetry)
            .run();
        let disk = MemDisk::new();
        let spilled = Traversal::new(CatalogModel, 6)
            .with_workers(workers)
            .with_symmetry(symmetry)
            .with_spill(disk.io(), "check/catalog")
            .try_run()
            .expect("clean MemDisk never fails");
        assert_reports_match("catalog", &in_memory, &spilled);
        assert!(in_memory.ok());
    }
}

/// A stale spill directory (from an interrupted earlier run) is reset, not
/// merged: junk already sitting in the shard logs cannot leak states into
/// or out of the exploration.
#[test]
fn stale_shard_logs_are_reset_not_merged() {
    let disk = MemDisk::new();
    disk.io()
        .write_file(Path::new("check/shard-000.log"), b"junk from a dead run")
        .unwrap();
    let spilled = Traversal::new(CatalogModel, 5)
        .with_spill(disk.io(), "check")
        .try_run()
        .expect("stale logs are truncated at startup");
    let in_memory = Traversal::new(CatalogModel, 5).run();
    assert_reports_match("catalog", &in_memory, &spilled);
}

/// Crash sweep: kill the spill's write path at every mutating operation,
/// under every torn-tail policy. Every crashed run must fail with a clean
/// I/O error — no crash point may complete with a different report (the
/// only acceptable "success" is the byte-identical one) and none may turn
/// a conformant model into a violation or vice versa.
#[test]
fn every_crash_point_fails_cleanly_or_completes_identically() {
    let reference = Traversal::new(CatalogModel, 5)
        .with_workers(2)
        .with_symmetry(true)
        .run();

    // Count the mutating ops of one complete run, then sweep them all.
    let probe_disk = MemDisk::new();
    let probe = probe_disk.fault_io(u64::MAX, TornTail::Drop);
    Traversal::new(CatalogModel, 5)
        .with_workers(2)
        .with_symmetry(true)
        .with_spill(probe.clone() as SharedIo, "check")
        .try_run()
        .expect("no crash scheduled");
    let total_ops = probe.ops();
    assert!(
        total_ops > 4,
        "the sweep should have real coverage: {total_ops}"
    );

    for crash_at in 1..=total_ops {
        for torn in TornTail::ALL {
            let disk = MemDisk::new();
            let fault = disk.fault_io(crash_at, torn);
            let result = Traversal::new(CatalogModel, 5)
                .with_workers(2)
                .with_symmetry(true)
                .with_spill(fault.clone() as SharedIo, "check")
                .try_run();
            match result {
                Err(SpillError::Io(_)) => {
                    assert!(fault.crashed(), "I/O failure implies the crash fired");
                }
                Err(other) => panic!("crash {crash_at}/{torn:?}: unexpected {other}"),
                Ok(report) => {
                    // A run that never reached the crash point must be the
                    // reference run, bit for bit.
                    assert!(!fault.crashed(), "crashed runs cannot report success");
                    assert_reports_match("catalog", &reference, &report);
                }
            }
        }
    }
}

/// Delegates to an inner [`StoreIo`] but flips one bit of the `nth`
/// `read_range` result, simulating silent media corruption between write
/// and read-back.
struct FlipOnRead {
    inner: SharedIo,
    countdown: AtomicU64,
}

impl StoreIo for FlipOnRead {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.create_dir_all(dir)
    }
    fn list(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        self.inner.list(dir)
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn read_range(&self, path: &Path, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        let mut bytes = self.inner.read_range(path, offset, len)?;
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            if let Some(byte) = bytes.first_mut() {
                *byte ^= 0x40;
            }
        }
        Ok(bytes)
    }
    fn append(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.append(path, bytes)
    }
    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.write_file(path, bytes)
    }
    fn truncate(&self, path: &Path, len: u64) -> std::io::Result<()> {
        self.inner.truncate(path, len)
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.inner.rename(from, to)
    }
    fn remove(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove(path)
    }
    fn fsync(&self, path: &Path) -> std::io::Result<()> {
        self.inner.fsync(path)
    }
    fn fsync_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.fsync_dir(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// Every record read is checksum-validated: a flipped bit anywhere in the
/// read-back path is reported as corruption, never silently absorbed into
/// the exploration. Swept across the first several reads so both read
/// sites (dedup compare and frontier fetch) get hit.
#[test]
fn flipped_bits_on_read_back_are_reported_as_corruption() {
    let mut corruptions = 0;
    for nth in 1..=24 {
        let result = Traversal::new(CatalogModel, 5)
            .with_spill(
                Arc::new(FlipOnRead {
                    inner: MemDisk::new().io(),
                    countdown: AtomicU64::new(nth),
                }) as SharedIo,
                "check",
            )
            .try_run();
        match result {
            Err(SpillError::Corrupt(_)) => corruptions += 1,
            Ok(report) => {
                // The run performed fewer than `nth` reads; nothing was
                // actually corrupted, so the verdict must be the clean one.
                let reference = Traversal::new(CatalogModel, 5).run();
                assert_reports_match("catalog", &reference, &report);
            }
            Err(other) => panic!("read {nth}: unexpected {other}"),
        }
    }
    assert!(
        corruptions > 0,
        "the sweep must actually hit the read-back path"
    );
}

/// A machine without a state codec cannot spill; asking for it is a
/// configuration error, reported as such rather than exploring a partial
/// space.
#[test]
fn spilling_a_codec_less_machine_is_unsupported() {
    #[derive(Debug)]
    struct NoCodec;
    impl Machine for NoCodec {
        type State = u8;
        type Action = u8;
        type Sym = ();
        fn initial(&self) -> u8 {
            0
        }
        fn actions(&self, _: &u8, out: &mut Vec<u8>) {
            out.push(1);
        }
        fn transition(&self, state: &u8, action: &u8) -> Result<u8, String> {
            Ok(state.wrapping_add(*action))
        }
        fn invariant(&self, _: &u8) -> Result<(), String> {
            Ok(())
        }
    }
    let result = Traversal::new(NoCodec, 3)
        .with_spill(MemDisk::new().io(), "check")
        .try_run();
    assert!(
        matches!(result, Err(SpillError::Unsupported)),
        "expected Unsupported, got {result:?}"
    );
}
