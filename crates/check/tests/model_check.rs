//! Integration gates for the model checker.
//!
//! Two mutually exclusive halves, selected by the `check-mutants` feature:
//!
//! * **Default build** — exhaustiveness gates: each model explores well past
//!   10k canonical states with zero invariant violations, and every
//!   enumerated action sequence replays conformantly through the real
//!   lifecycle/interner stack (and the full engine, shallower).
//! * **`--features check-mutants`** — negative controls: the same replays
//!   run against deliberately broken implementations (`end_tracks` and
//!   verdict-cache `clear` turned into no-ops) and the checker must *find*
//!   both mutants, each with a shortest printed counterexample trace. A
//!   checker that cannot see a planted bug proves nothing about the absence
//!   of real ones.
//!
//! Depths here are lower than the `model_check` binary's defaults so the
//! suite stays fast in debug builds; the binary (run in release by CI)
//! covers the deeper frontiers.

use tvq_check::{conformance, CatalogModel, LifecycleModel, Traversal};

#[cfg(not(feature = "check-mutants"))]
mod conformant {
    use super::*;

    /// Lifecycle/compaction/remap protocol: ≥10k canonical states, every
    /// edge replayed through `ObjectLifecycle` + `SetInterner` + shared
    /// `ClassStore`, zero divergences.
    #[test]
    fn lifecycle_model_explores_past_10k_states_and_replays_conformantly() {
        let report = Traversal::new(LifecycleModel, 4)
            .run_with(|path, _| conformance::replay_component(path));
        assert!(report.ok(), "{}", report.render("lifecycle"));
        assert!(
            report.states_explored >= 10_000,
            "only {} states explored",
            report.states_explored
        );
    }

    /// The same action sequences driven end to end through two real engines
    /// sharing a class store. Shallower — every edge builds two engines —
    /// but this is the replay that pins match output and `live_states`.
    #[test]
    fn engine_replay_conforms() {
        let report =
            Traversal::new(LifecycleModel, 3).run_with(|path, _| conformance::replay_engine(path));
        assert!(report.ok(), "{}", report.render("engine"));
        assert!(
            report.states_explored >= 1_000,
            "{}",
            report.states_explored
        );
    }

    /// Catalog-swap protocol: ≥10k canonical states, the verdict cache
    /// always agreeing with the catalog version it was populated under.
    #[test]
    fn catalog_model_explores_past_10k_states_and_replays_conformantly() {
        let report =
            Traversal::new(CatalogModel, 7).run_with(|path, _| conformance::replay_catalog(path));
        assert!(report.ok(), "{}", report.render("catalog"));
        assert!(
            report.states_explored >= 10_000,
            "only {} states explored",
            report.states_explored
        );
    }
}

#[cfg(feature = "check-mutants")]
mod mutants {
    use super::*;
    use tvq_check::{CatalogAction, LifecycleAction};

    /// With `end_tracks` a no-op, a track end changes the model but not the
    /// implementation; conformance replay must report the divergence, and
    /// the BFS guarantees the printed trace is a shortest one — it must end
    /// in the `EndTrack` that the mutant swallowed.
    #[test]
    fn checker_catches_the_end_tracks_noop_mutant() {
        let report = Traversal::new(LifecycleModel, 3)
            .run_with(|path, _| conformance::replay_component(path));
        println!("{}", report.render("lifecycle vs end_tracks mutant"));
        let violation = report.violation.expect("the planted mutant must be found");
        assert!(
            matches!(
                violation.trace.last(),
                Some(LifecycleAction::EndTrack { .. })
            ),
            "shortest counterexample should end at the swallowed EndTrack: {:?}",
            violation.trace
        );
        assert!(
            violation.trace.len() <= 3,
            "trace is shortest: {:?}",
            violation.trace
        );
    }

    /// With the verdict cache's `clear` a no-op, a catalog swap leaves stale
    /// verdicts from the previous version; the first judged-then-swapped
    /// sequence must surface as a divergence ending at the `Swap`.
    #[test]
    fn checker_catches_the_verdict_cache_clear_noop_mutant() {
        let report =
            Traversal::new(CatalogModel, 3).run_with(|path, _| conformance::replay_catalog(path));
        println!("{}", report.render("catalog vs clear mutant"));
        let violation = report.violation.expect("the planted mutant must be found");
        assert!(
            matches!(violation.trace.last(), Some(CatalogAction::Swap)),
            "shortest counterexample should end at the ignored Swap: {:?}",
            violation.trace
        );
        assert!(
            violation.trace.len() <= 3,
            "trace is shortest: {:?}",
            violation.trace
        );
    }
}
