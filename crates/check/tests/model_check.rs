//! Integration gates for the model checker.
//!
//! Two mutually exclusive halves, selected by the `check-mutants` feature:
//!
//! * **Default build** — exhaustiveness gates: each model explores well past
//!   10k canonical states with zero invariant violations, every enumerated
//!   action sequence replays conformantly through the real
//!   lifecycle/interner stack (and the full engine, shallower), and the
//!   parallel / symmetry-reduced configurations are pinned to the
//!   sequential reports (identical counters, byte-identical rendering and
//!   counterexamples).
//! * **`--features check-mutants`** — negative controls: the same replays
//!   run against deliberately broken implementations and the checker must
//!   *find* every planted bug, each with a shortest printed counterexample
//!   trace. A checker that cannot see a planted bug proves nothing about
//!   the absence of real ones. The feed-asymmetric retirement mutant runs
//!   under `--symmetry` specifically: finding a bug that only exists on
//!   feed 1 proves the quotient replays concrete runs on both feeds.
//!
//! Depths here are lower than the `model_check` binary's defaults so the
//! suite stays fast in debug builds; the binary (run in release by CI)
//! covers the deeper frontiers.

use tvq_check::{conformance, CatalogModel, LifecycleModel, Traversal};

#[cfg(not(feature = "check-mutants"))]
mod conformant {
    use super::*;
    use tvq_check::{Machine, Report};

    /// Lifecycle/compaction/remap protocol: ≥10k canonical states, every
    /// edge replayed through `ObjectLifecycle` + `SetInterner` + shared
    /// `ClassStore`, zero divergences.
    #[test]
    fn lifecycle_model_explores_past_10k_states_and_replays_conformantly() {
        let report = Traversal::new(LifecycleModel, 4)
            .run_with(|path, _| conformance::replay_component(path));
        assert!(report.ok(), "{}", report.render("lifecycle"));
        assert!(
            report.states_explored >= 10_000,
            "only {} states explored",
            report.states_explored
        );
    }

    /// The same action sequences driven end to end through two real engines
    /// sharing a class store. Shallower — every edge builds two engines —
    /// but this is the replay that pins match output and `live_states`.
    #[test]
    fn engine_replay_conforms() {
        let report =
            Traversal::new(LifecycleModel, 3).run_with(|path, _| conformance::replay_engine(path));
        assert!(report.ok(), "{}", report.render("engine"));
        assert!(
            report.states_explored >= 1_000,
            "{}",
            report.states_explored
        );
    }

    /// Catalog-swap protocol: ≥10k canonical states, the verdict cache
    /// always agreeing with the catalog version it was populated under.
    #[test]
    fn catalog_model_explores_past_10k_states_and_replays_conformantly() {
        let report =
            Traversal::new(CatalogModel, 7).run_with(|path, _| conformance::replay_catalog(path));
        assert!(report.ok(), "{}", report.render("catalog"));
        assert!(
            report.states_explored >= 10_000,
            "only {} states explored",
            report.states_explored
        );
    }

    fn assert_reports_match<M: Machine>(name: &str, a: &Report<M>, b: &Report<M>) {
        assert_eq!(a.states_explored, b.states_explored, "{name}: states");
        assert_eq!(a.transitions, b.transitions, "{name}: transitions");
        assert_eq!(a.max_depth_reached, b.max_depth_reached, "{name}: depth");
        assert_eq!(a.per_depth, b.per_depth, "{name}: per-depth counters");
        assert_eq!(
            a.symmetry_relabels, b.symmetry_relabels,
            "{name}: symmetry counter"
        );
        assert_eq!(a.violations.len(), b.violations.len(), "{name}: violations");
        for (va, vb) in a.violations.iter().zip(&b.violations) {
            assert_eq!(va.message, vb.message, "{name}: violation message");
            assert_eq!(
                format!("{:?}", va.trace),
                format!("{:?}", vb.trace),
                "{name}: counterexample trace"
            );
            assert_eq!(va.state, vb.state, "{name}: violation state");
        }
    }

    /// Parallel exploration is report-preserving: `--workers 4` produces
    /// the same state/transition counts as the sequential run, on both
    /// models, with and without symmetry reduction.
    #[test]
    fn parallel_runs_match_sequential_reports() {
        for symmetry in [false, true] {
            let sequential = Traversal::new(LifecycleModel, 4)
                .with_symmetry(symmetry)
                .run();
            let parallel = Traversal::new(LifecycleModel, 4)
                .with_symmetry(symmetry)
                .with_workers(4)
                .run();
            assert_reports_match("lifecycle", &sequential, &parallel);
            assert!(sequential.ok());

            let sequential = Traversal::new(CatalogModel, 6)
                .with_symmetry(symmetry)
                .run();
            let parallel = Traversal::new(CatalogModel, 6)
                .with_symmetry(symmetry)
                .with_workers(4)
                .run();
            assert_reports_match("catalog", &sequential, &parallel);
            assert!(sequential.ok());
        }
    }

    /// Sharded conformance replay (one replay stack per worker) sees the
    /// same exploration as the single-hook sequential run.
    #[test]
    fn sharded_replay_matches_single_hook_replay() {
        let sequential = Traversal::new(LifecycleModel, 3)
            .run_with(|path, _| conformance::replay_component(path));
        let sharded = Traversal::new(LifecycleModel, 3)
            .with_workers(4)
            .run_sharded(|_worker| |path: &[_], _: &_| conformance::replay_component(path));
        assert_reports_match("lifecycle replay", &sequential, &sharded);
        assert!(sequential.ok(), "{}", sequential.render("lifecycle"));
    }

    /// Symmetry reduction shrinks the canonical state space without
    /// changing the verdict, and actually fires (the relabel counter is
    /// nonzero). The conformance replay stays green through the quotient —
    /// replayed paths are genuine concrete runs.
    #[test]
    fn symmetry_reduction_shrinks_and_stays_conformant() {
        let full = Traversal::new(LifecycleModel, 4).run();
        let reduced = Traversal::new(LifecycleModel, 4)
            .with_symmetry(true)
            .run_with(|path, _| conformance::replay_component(path));
        assert!(reduced.ok(), "{}", reduced.render("lifecycle quotient"));
        assert!(
            reduced.states_explored * 2 < full.states_explored,
            "quotient should at least halve the space: {} vs {}",
            reduced.states_explored,
            full.states_explored
        );
        assert!(reduced.symmetry_relabels > 0, "symmetry never fired");

        let full = Traversal::new(CatalogModel, 6).run();
        let reduced = Traversal::new(CatalogModel, 6)
            .with_symmetry(true)
            .run_with(|path, _| conformance::replay_catalog(path));
        assert!(reduced.ok(), "{}", reduced.render("catalog quotient"));
        assert!(
            reduced.states_explored < full.states_explored,
            "rotation quotient should shrink: {} vs {}",
            reduced.states_explored,
            full.states_explored
        );
    }

    /// A deliberately violating toy machine: two bounded counters whose sum
    /// must stay below 6, reachable through many interleavings — several
    /// states violate on the same BFS level, exercising the deterministic
    /// violation ordering.
    struct Toy;

    impl Machine for Toy {
        type State = (u8, u8);
        type Action = u8;
        type Sym = ();

        fn initial(&self) -> (u8, u8) {
            (0, 0)
        }

        fn actions(&self, _: &(u8, u8), out: &mut Vec<u8>) {
            out.extend_from_slice(&[0, 1, 2]);
        }

        fn transition(&self, &(left, right): &(u8, u8), action: &u8) -> Result<(u8, u8), String> {
            Ok(match action {
                0 => (left.saturating_add(1).min(5), right),
                1 => (left, right.saturating_add(1).min(5)),
                _ => (
                    left.saturating_add(1).min(5),
                    right.saturating_add(1).min(5),
                ),
            })
        }

        fn invariant(&self, &(left, right): &(u8, u8)) -> Result<(), String> {
            if left + right >= 6 {
                Err(format!("counters overflowed: {left} + {right}"))
            } else {
                Ok(())
            }
        }
    }

    /// Violating runs pin byte-identical reports across worker counts: the
    /// shortest counterexample, the full sorted violation list, and the
    /// rendered artifact must not depend on parallelism.
    #[test]
    fn shortest_counterexample_is_byte_identical_across_worker_counts() {
        let sequential = Traversal::new(Toy, 8).run();
        assert!(!sequential.ok());
        let primary = sequential.violation().expect("toy machine violates");
        assert_eq!(primary.trace.len(), 3, "shortest: three double-increments");
        // The render self-describes its configuration (`workers N, ...`);
        // everything *about the exploration* must be byte-identical.
        let strip_config = |render: String| -> String {
            render
                .lines()
                .filter(|line| !line.trim_start().starts_with("workers "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for workers in [2, 4, 7] {
            let parallel = Traversal::new(Toy, 8).with_workers(workers).run();
            assert_reports_match("toy", &sequential, &parallel);
            assert_eq!(
                strip_config(sequential.render("toy")),
                strip_config(parallel.render("toy")),
                "rendered report differs at {workers} workers"
            );
        }
    }
}

#[cfg(feature = "check-mutants")]
mod mutants {
    use super::*;
    use std::sync::{Mutex, MutexGuard};
    use tvq_check::{CatalogAction, LifecycleAction};

    /// The mutant toggles are process-global; tests that touch them run
    /// serialized and restore the default arming on drop (panic included).
    static MUTANT_LOCK: Mutex<()> = Mutex::new(());

    struct Arm<'a> {
        _lock: MutexGuard<'a, ()>,
    }

    impl Arm<'_> {
        fn new(end_tracks_noop: bool, asymmetric_retire: bool) -> Self {
            let lock = MUTANT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            tvq_core::mutants::set_end_tracks_noop(end_tracks_noop);
            tvq_core::mutants::set_asymmetric_retire(asymmetric_retire);
            Arm { _lock: lock }
        }
    }

    impl Drop for Arm<'_> {
        fn drop(&mut self) {
            tvq_core::mutants::set_end_tracks_noop(true);
            tvq_core::mutants::set_asymmetric_retire(false);
        }
    }

    /// With `end_tracks` a no-op, a track end changes the model but not the
    /// implementation; conformance replay must report the divergence, and
    /// the BFS guarantees the printed trace is a shortest one — it must end
    /// in the `EndTrack` that the mutant swallowed.
    #[test]
    fn checker_catches_the_end_tracks_noop_mutant() {
        let _arm = Arm::new(true, false);
        let report = Traversal::new(LifecycleModel, 3)
            .run_with(|path, _| conformance::replay_component(path));
        println!("{}", report.render("lifecycle vs end_tracks mutant"));
        let violation = report
            .violation()
            .expect("the planted mutant must be found");
        assert!(
            matches!(
                violation.trace.last(),
                Some(LifecycleAction::EndTrack { .. })
            ),
            "shortest counterexample should end at the swallowed EndTrack: {:?}",
            violation.trace
        );
        assert!(
            violation.trace.len() <= 3,
            "trace is shortest: {:?}",
            violation.trace
        );
    }

    /// With the verdict cache's `clear` a no-op, a catalog swap leaves stale
    /// verdicts from the previous version; the first judged-then-swapped
    /// sequence must surface as a divergence ending at the `Swap`.
    #[test]
    fn checker_catches_the_verdict_cache_clear_noop_mutant() {
        let report =
            Traversal::new(CatalogModel, 3).run_with(|path, _| conformance::replay_catalog(path));
        println!("{}", report.render("catalog vs clear mutant"));
        let violation = report
            .violation()
            .expect("the planted mutant must be found");
        assert!(
            matches!(violation.trace.last(), Some(CatalogAction::Swap)),
            "shortest counterexample should end at the ignored Swap: {:?}",
            violation.trace
        );
        assert!(
            violation.trace.len() <= 3,
            "trace is shortest: {:?}",
            violation.trace
        );
    }

    /// The symmetry soundness control: a bug that exists on feed 1 *only*
    /// (retirement skipped there) must still be found by the
    /// symmetry-reduced parallel traversal, even though the quotient stores
    /// representatives that mostly keep feed 0 empty. The replayed
    /// counterexample must be a concrete run ending in the feed-1 Compact
    /// whose retirement the mutant swallowed.
    #[test]
    fn symmetry_reduced_checker_catches_the_feed_asymmetric_retire_mutant() {
        let _arm = Arm::new(false, true);
        let report = Traversal::new(LifecycleModel, 6)
            .with_symmetry(true)
            .with_workers(2)
            .run_sharded(|_worker| |path: &[_], _: &_| conformance::replay_component(path));
        println!("{}", report.render("lifecycle vs asymmetric-retire mutant"));
        let violation = report
            .violation()
            .expect("the planted mutant must be found");
        assert!(
            matches!(
                violation.trace.last(),
                Some(LifecycleAction::Compact { feed: 1 })
            ),
            "shortest counterexample should end at the feed-1 Compact: {:?}",
            violation.trace
        );
        assert!(
            violation.trace.len() <= 6,
            "trace is shortest: {:?}",
            violation.trace
        );
    }

    /// Sanity for the toggle plumbing itself: with every mutant disarmed,
    /// the feature build replays conformantly (so the controls above fail
    /// for the planted reasons, not for stray divergence).
    #[test]
    fn disarmed_mutants_replay_conformantly() {
        let _arm = Arm::new(false, false);
        let report = Traversal::new(LifecycleModel, 3)
            .with_symmetry(true)
            .run_with(|path, _| conformance::replay_component(path));
        assert!(report.ok(), "{}", report.render("lifecycle disarmed"));
    }
}
