//! Inverted-index CNF evaluation (CNFEval / CNFEvalE, Section 5).
//!
//! Following Whang et al.'s boolean-expression indexing (the paper's
//! CNFEval), every condition is turned into a posting `(query id,
//! disjunction id)` stored in an inverted index keyed by the condition's
//! class. Equality conditions live in an exact-key index; the paper's
//! CNFEvalE extension adds two *ordered* indexes for `>=` and `<=`
//! conditions, scanned in value order so that only the satisfied prefix of
//! each posting list is touched. Given the class-count aggregates of an
//! MCOS, the evaluator collects the postings of all satisfied conditions,
//! counts distinct satisfied disjunctions per query, and reports the queries
//! whose every disjunction is covered.

use std::collections::HashMap;
use std::sync::Arc;

use tvq_common::{ClassId, FrameId, ObjectSet, QueryId};
use tvq_core::ResultStateSet;

use crate::aggregates::ClassCounts;
use crate::cnf::CnfQuery;
use crate::condition::CmpOp;

/// One posting: the condition belongs to disjunction `disjunction` of query
/// `query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Posting {
    query: usize,
    disjunction: u32,
}

/// Ordered posting list for one class: `(threshold, postings)` sorted by
/// threshold.
#[derive(Debug, Default, Clone)]
struct OrderedIndex {
    /// Sorted ascending by threshold; for `>=` conditions all entries with
    /// threshold <= count are satisfied, for `<=` conditions all entries with
    /// threshold >= count are satisfied (scanned from the tail).
    entries: Vec<(u32, Vec<Posting>)>,
}

impl OrderedIndex {
    fn insert(&mut self, threshold: u32, posting: Posting) {
        match self.entries.binary_search_by_key(&threshold, |&(t, _)| t) {
            Ok(idx) => self.entries[idx].1.push(posting),
            Err(idx) => self.entries.insert(idx, (threshold, vec![posting])),
        }
    }
}

/// The CNF evaluator holding the registered queries and their inverted
/// indexes.
#[derive(Debug, Clone, Default)]
pub struct CnfEvaluator {
    queries: Vec<CnfQuery>,
    /// Number of disjunctions per query (satisfaction target).
    clause_counts: Vec<u32>,
    /// First mask word of each query's clause-coverage run (see
    /// [`evaluate`](Self::evaluate)): query `q` owns the words
    /// `mask_offsets[q] .. mask_offsets[q] + ceil(clause_counts[q] / 64)`.
    mask_offsets: Vec<u32>,
    /// Total mask words across all registered queries.
    mask_words: usize,
    /// Equality index: (class, value) → postings.
    eq_index: HashMap<(ClassId, u32), Vec<Posting>>,
    /// `>=` index per class, ordered ascending by threshold.
    ge_index: HashMap<ClassId, OrderedIndex>,
    /// `<=` index per class, ordered ascending by threshold.
    le_index: HashMap<ClassId, OrderedIndex>,
}

/// Mask words needed to give every one of `clauses` disjunctions its own bit.
fn words_for(clauses: u32) -> usize {
    (clauses as usize).div_ceil(64)
}

impl CnfEvaluator {
    /// Builds the evaluator (and its inverted indexes) for a query workload.
    pub fn new(queries: Vec<CnfQuery>) -> Self {
        let mut evaluator = CnfEvaluator::default();
        for query in queries {
            evaluator.add_query(query);
        }
        evaluator
    }

    /// Registers one more query, extending the indexes incrementally.
    pub fn add_query(&mut self, query: CnfQuery) {
        let query_index = self.queries.len();
        let clauses = query.clauses.len() as u32;
        self.clause_counts.push(clauses);
        self.mask_offsets.push(self.mask_words as u32);
        self.mask_words += words_for(clauses);
        for (disjunction, clause) in query.clauses.iter().enumerate() {
            for condition in clause {
                let posting = Posting {
                    query: query_index,
                    disjunction: disjunction as u32,
                };
                match condition.op {
                    CmpOp::Eq => self
                        .eq_index
                        .entry((condition.class, condition.value))
                        .or_default()
                        .push(posting),
                    CmpOp::Ge => self
                        .ge_index
                        .entry(condition.class)
                        .or_default()
                        .insert(condition.value, posting),
                    CmpOp::Le => self
                        .le_index
                        .entry(condition.class)
                        .or_default()
                        .insert(condition.value, posting),
                }
            }
        }
        self.queries.push(query);
    }

    /// The registered queries.
    pub fn queries(&self) -> &[CnfQuery] {
        &self.queries
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Whether every registered query uses only `>=` conditions
    /// (the applicability condition of the Section 5.3 pruning strategy).
    pub fn all_geq_only(&self) -> bool {
        self.queries.iter().all(CnfQuery::is_geq_only)
    }

    /// Evaluates all queries against one set of class counts, returning the
    /// identifiers of the satisfied queries.
    ///
    /// This is the CNFEvalE procedure: postings of satisfied conditions are
    /// gathered from the three indexes, then disjunction coverage is counted
    /// per query. Classes that appear in `<=` or `=` conditions but not in
    /// the input aggregate are treated as count 0.
    pub fn evaluate(&self, counts: &ClassCounts) -> Vec<QueryId> {
        // Every query owns a run of mask words (one bit per disjunction) at
        // `mask_offsets[query]`, so disjunction indexes past 64 keep their
        // own bits. The previous single-word-per-query scheme folded
        // disjunctions with `% 64`: two satisfied clauses of a >64-clause
        // query could share a bit while the satisfaction target was capped
        // at 64, silently reporting false matches. Query mask runs are
        // dense, and workloads are small (the paper sweeps up to 50
        // queries of a handful of clauses each), so the words live on the
        // stack in the common case: the per-frame evaluation loop
        // allocates nothing for bookkeeping.
        const STACK_WORDS: usize = 64;
        let mut stack = [0u64; STACK_WORDS];
        let mut heap: Vec<u64>;
        let masks: &mut [u64] = if self.mask_words <= STACK_WORDS {
            &mut stack[..self.mask_words]
        } else {
            heap = vec![0u64; self.mask_words];
            &mut heap
        };
        let offsets = &self.mask_offsets;
        let mut record = |posting: &Posting| {
            let word = offsets[posting.query] as usize + (posting.disjunction >> 6) as usize;
            masks[word] |= 1u64 << (posting.disjunction & 63);
        };

        // >= conditions: thresholds up to and including the observed count.
        for (&class, index) in &self.ge_index {
            let count = counts.count(class);
            for (threshold, postings) in &index.entries {
                if *threshold > count {
                    break;
                }
                postings.iter().for_each(&mut record);
            }
        }
        // <= conditions: thresholds down to and including the observed count;
        // absent classes count as zero and satisfy every <= condition.
        for (&class, index) in &self.le_index {
            let count = counts.count(class);
            for (threshold, postings) in index.entries.iter().rev() {
                if *threshold < count {
                    break;
                }
                postings.iter().for_each(&mut record);
            }
        }
        // = conditions: exact key lookup (including zero counts).
        for (&(class, value), postings) in &self.eq_index {
            if counts.count(class) == value {
                postings.iter().for_each(&mut record);
            }
        }

        let mut result: Vec<QueryId> = Vec::new();
        for (query, clauses) in self.clause_counts.iter().copied().enumerate() {
            let start = self.mask_offsets[query] as usize;
            let satisfied: u32 = masks[start..start + words_for(clauses)]
                .iter()
                .map(|word| word.count_ones())
                .sum();
            // Exact coverage: every disjunction owns exactly one bit, so a
            // query matches iff all of its clauses set theirs.
            if clauses > 0 && satisfied == clauses {
                result.push(self.queries[query].id);
            }
        }
        result.sort_unstable();
        result
    }

    /// Whether at least one registered query is satisfied by the counts.
    pub fn any_satisfied(&self, counts: &ClassCounts) -> bool {
        !self.evaluate(counts).is_empty()
    }
}

/// One query match: a query satisfied by an MCOS over a set of frames.
///
/// The frame set is shared (`Arc`) with the Result State Set entry it came
/// from: producing a match allocates nothing beyond the match struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMatch {
    /// The satisfied query.
    pub query: QueryId,
    /// The maximum co-occurrence object set that satisfied it.
    pub objects: ObjectSet,
    /// The window frames in which the object set co-occurs.
    pub frames: Arc<[FrameId]>,
}

/// Evaluates a Result State Set against the workload (steps 2(a)-2(c) of the
/// Section 5.2 procedure): each state's MCOS is aggregated by class and fed
/// to the evaluator; every satisfied query yields a [`QueryMatch`] carrying
/// the state's frame set.
///
/// When a result entry carries class counts cached by the producing
/// maintainer's interner, those are used directly; otherwise the aggregate
/// is computed from `classes` on the spot.
pub fn evaluate_result_set<S: std::hash::BuildHasher>(
    evaluator: &CnfEvaluator,
    results: &ResultStateSet,
    classes: &HashMap<tvq_common::ObjectId, ClassId, S>,
) -> Vec<QueryMatch> {
    let mut matches = Vec::new();
    for (objects, frames, cached) in results.iter_with_counts() {
        let computed;
        let counts = match cached {
            Some(counts) => &**counts,
            None => {
                computed = ClassCounts::of(objects, classes);
                &computed
            }
        };
        for query in evaluator.evaluate(counts) {
            matches.push(QueryMatch {
                query,
                objects: objects.clone(),
                frames: Arc::clone(frames),
            });
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use tvq_common::ObjectId;

    fn counts(pairs: &[(u16, u32)]) -> ClassCounts {
        ClassCounts::from_map(pairs.iter().map(|&(c, n)| (ClassId(c), n)).collect())
    }

    /// `q2` from Section 5.2 and the two ordered indexes of Tables 4 and 5.
    fn paper_q2() -> CnfQuery {
        let car = ClassId(1);
        let person = ClassId(0);
        CnfQuery::new(
            QueryId(2),
            vec![
                vec![Condition::at_least(car, 2), Condition::at_most(person, 3)],
                vec![Condition::at_least(car, 3), Condition::at_least(person, 2)],
                vec![Condition::at_most(car, 5)],
            ],
        )
    }

    #[test]
    fn index_evaluation_matches_direct_evaluation_for_paper_q2() {
        let evaluator = CnfEvaluator::new(vec![paper_q2()]);
        let query = paper_q2();
        for cars in 0..8u32 {
            for people in 0..5u32 {
                let counts = counts(&[(1, cars), (0, people)]);
                let direct = query.eval(&counts);
                let indexed = !evaluator.evaluate(&counts).is_empty();
                assert_eq!(
                    direct, indexed,
                    "disagreement at cars={cars}, people={people}"
                );
            }
        }
    }

    #[test]
    fn multiple_queries_report_their_ids() {
        let car = ClassId(1);
        let person = ClassId(0);
        let q10 = CnfQuery::conjunction(QueryId(10), vec![Condition::at_least(car, 1)]);
        let q11 = CnfQuery::conjunction(QueryId(11), vec![Condition::at_least(person, 2)]);
        let q12 = CnfQuery::conjunction(QueryId(12), vec![Condition::exactly(car, 0)]);
        let evaluator = CnfEvaluator::new(vec![q10, q11, q12]);
        assert_eq!(evaluator.len(), 3);
        assert_eq!(
            evaluator.evaluate(&counts(&[(1, 2), (0, 2)])),
            vec![QueryId(10), QueryId(11)]
        );
        assert_eq!(evaluator.evaluate(&counts(&[(0, 1)])), vec![QueryId(12)]);
        assert_eq!(evaluator.evaluate(&counts(&[])), vec![QueryId(12)]);
    }

    #[test]
    fn zero_counts_satisfy_le_and_eq_zero_conditions() {
        let truck = ClassId(2);
        let q = CnfQuery::conjunction(QueryId(0), vec![Condition::at_most(truck, 0)]);
        let evaluator = CnfEvaluator::new(vec![q]);
        assert!(evaluator.any_satisfied(&counts(&[])));
        assert!(!evaluator.any_satisfied(&counts(&[(2, 1)])));
    }

    #[test]
    fn geq_only_detection_over_workload() {
        let car = ClassId(1);
        let geq = CnfQuery::conjunction(QueryId(0), vec![Condition::at_least(car, 1)]);
        let mixed = paper_q2();
        assert!(CnfEvaluator::new(vec![geq.clone()]).all_geq_only());
        assert!(!CnfEvaluator::new(vec![geq, mixed]).all_geq_only());
    }

    #[test]
    fn evaluate_result_set_produces_matches_with_frames() {
        let car = ClassId(1);
        let person = ClassId(0);
        let classes: HashMap<ObjectId, ClassId> = [
            (ObjectId(1), car),
            (ObjectId(2), car),
            (ObjectId(3), person),
        ]
        .into_iter()
        .collect();
        let q = CnfQuery::conjunction(
            QueryId(5),
            vec![Condition::at_least(car, 2), Condition::at_least(person, 1)],
        );
        let evaluator = CnfEvaluator::new(vec![q]);

        let mut results = ResultStateSet::new();
        let frames: tvq_common::MarkedFrameSet = [(FrameId(3), true), (FrameId(4), false)]
            .into_iter()
            .collect();
        results.insert(ObjectSet::from_raw([1, 2, 3]), &frames);
        results.insert(ObjectSet::from_raw([1, 3]), &frames);

        let matches = evaluate_result_set(&evaluator, &results, &classes);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].query, QueryId(5));
        assert_eq!(matches[0].objects, ObjectSet::from_raw([1, 2, 3]));
        assert_eq!(matches[0].frames.as_ref(), &[FrameId(3), FrameId(4)]);
    }

    /// Regression for the 64-clause mask boundary: with single-word masks,
    /// clause 64 aliased onto clause 0's bit (`disjunction % 64`) while the
    /// satisfaction target was capped at `min(64)`, so a 65-clause query
    /// with clause 0 *unsatisfied* still false-matched once clauses 1..=64
    /// covered 64 distinct bits. Multi-word masks give every clause its own
    /// bit and demand exact coverage.
    #[test]
    fn sixty_five_clause_query_does_not_alias_disjunction_bits() {
        let clauses: Vec<Vec<Condition>> = (0..65u16)
            .map(|class| vec![Condition::at_least(ClassId(class), 1)])
            .collect();
        let query = CnfQuery::new(QueryId(7), clauses);
        let evaluator = CnfEvaluator::new(vec![query.clone()]);
        // Classes 1..=64 present, class 0 absent: clauses 1..=64 satisfied,
        // clause 0 not — the query must NOT match.
        let partial = counts(&(1..=64u16).map(|c| (c, 1)).collect::<Vec<_>>());
        assert!(!query.eval(&partial));
        assert!(
            evaluator.evaluate(&partial).is_empty(),
            "aliased disjunction bits reported a false match"
        );
        // All 65 classes present: the query matches.
        let full = counts(&(0..65u16).map(|c| (c, 1)).collect::<Vec<_>>());
        assert!(query.eval(&full));
        assert_eq!(evaluator.evaluate(&full), vec![QueryId(7)]);
    }

    /// Sweeps clause counts across the word boundary (and multiple words)
    /// with exactly one clause left unsatisfied each time.
    #[test]
    fn wide_queries_agree_with_direct_evaluation_at_word_boundaries() {
        for num_clauses in [63u16, 64, 65, 127, 128, 129, 200] {
            let clauses: Vec<Vec<Condition>> = (0..num_clauses)
                .map(|class| vec![Condition::at_least(ClassId(class), 1)])
                .collect();
            let query = CnfQuery::new(QueryId(1), clauses);
            // A narrow decoy shares the evaluator so mask offsets are
            // exercised with heterogeneous widths.
            let decoy = CnfQuery::conjunction(QueryId(0), vec![Condition::at_least(ClassId(0), 1)]);
            let evaluator = CnfEvaluator::new(vec![decoy, query.clone()]);
            for missing in [0, num_clauses / 2, num_clauses - 1] {
                let sample = counts(
                    &(0..num_clauses)
                        .filter(|&c| c != missing)
                        .map(|c| (c, 1))
                        .collect::<Vec<_>>(),
                );
                assert!(!query.eval(&sample));
                let satisfied = evaluator.evaluate(&sample);
                assert!(
                    !satisfied.contains(&QueryId(1)),
                    "{num_clauses} clauses, clause {missing} unsatisfied: false match"
                );
                assert_eq!(
                    satisfied.contains(&QueryId(0)),
                    missing != 0,
                    "decoy disagreement at {num_clauses}/{missing}"
                );
            }
            let all = counts(&(0..num_clauses).map(|c| (c, 1)).collect::<Vec<_>>());
            assert_eq!(evaluator.evaluate(&all), vec![QueryId(0), QueryId(1)]);
        }
    }

    #[test]
    fn randomised_equivalence_with_direct_evaluation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            // Random workload of up to 5 queries with up to 3 clauses each.
            let mut queries = Vec::new();
            for qid in 0..rng.gen_range(1..=5) {
                let clauses: Vec<Vec<Condition>> = (0..rng.gen_range(1..=3))
                    .map(|_| {
                        (0..rng.gen_range(1..=3))
                            .map(|_| {
                                let op = match rng.gen_range(0..3) {
                                    0 => CmpOp::Le,
                                    1 => CmpOp::Eq,
                                    _ => CmpOp::Ge,
                                };
                                Condition::new(
                                    ClassId(rng.gen_range(0..4)),
                                    op,
                                    rng.gen_range(0..5),
                                )
                            })
                            .collect()
                    })
                    .collect();
                queries.push(CnfQuery::new(QueryId(qid), clauses));
            }
            let evaluator = CnfEvaluator::new(queries.clone());
            let sample = counts(&[
                (0, rng.gen_range(0..6)),
                (1, rng.gen_range(0..6)),
                (2, rng.gen_range(0..6)),
                (3, rng.gen_range(0..6)),
            ]);
            let expected: Vec<QueryId> = queries
                .iter()
                .filter(|q| q.eval(&sample))
                .map(|q| q.id)
                .collect();
            assert_eq!(evaluator.evaluate(&sample), expected);
        }
    }
}
