//! Textual CNF query parser.
//!
//! A small query language so examples and tools can state queries naturally:
//!
//! ```text
//! car >= 2 AND (person >= 1 OR bus >= 1) AND truck <= 0
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := clause ( "AND" clause )*
//! clause  := condition | "(" condition ( "OR" condition )* ")"
//! condition := IDENT OP INTEGER        OP := ">=" | "<=" | "="
//! ```
//!
//! Class identifiers are resolved against (and registered into) a
//! [`ClassRegistry`].

use tvq_common::{ClassRegistry, Error, QueryId, Result};

use crate::cnf::{Clause, CnfQuery};
use crate::condition::{CmpOp, Condition};

/// Parses a CNF query, registering any new class labels into `registry`.
pub fn parse_query(input: &str, id: QueryId, registry: &mut ClassRegistry) -> Result<CnfQuery> {
    let mut parser = Parser {
        input,
        tokens: tokenize(input)?,
        position: 0,
        registry,
    };
    let query = parser.parse_query(id)?;
    if parser.position != parser.tokens.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    query.validate().map_err(|message| Error::QueryParse {
        message,
        position: input.len(),
    })?;
    Ok(query)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String, usize),
    Number(u32, usize),
    Op(CmpOp, usize),
    And(usize),
    Or(usize),
    LParen(usize),
    RParen(usize),
}

impl Token {
    fn position(&self) -> usize {
        match self {
            Token::Ident(_, p)
            | Token::Number(_, p)
            | Token::Op(_, p)
            | Token::And(p)
            | Token::Or(p)
            | Token::LParen(p)
            | Token::RParen(p) => *p,
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        match c {
            '(' => {
                tokens.push(Token::LParen(i));
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen(i));
                i += 1;
            }
            '>' | '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    let op = if c == '>' { CmpOp::Ge } else { CmpOp::Le };
                    tokens.push(Token::Op(op, i));
                    i += 2;
                } else {
                    return Err(Error::QueryParse {
                        message: format!("expected '{c}=' (strict inequalities are not supported)"),
                        position: i,
                    });
                }
            }
            '=' => {
                tokens.push(Token::Op(CmpOp::Eq, i));
                i += 1;
                // Tolerate '=='.
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let value: u32 = input[start..i].parse().map_err(|_| Error::QueryParse {
                    message: format!("integer out of range: {}", &input[start..i]),
                    position: start,
                })?;
                tokens.push(Token::Number(value, start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "AND" => tokens.push(Token::And(start)),
                    "OR" => tokens.push(Token::Or(start)),
                    _ => tokens.push(Token::Ident(word.to_owned(), start)),
                }
            }
            other => {
                return Err(Error::QueryParse {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    input: &'a str,
    tokens: Vec<Token>,
    position: usize,
    registry: &'a mut ClassRegistry,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        let position = self
            .tokens
            .get(self.position)
            .map(Token::position)
            .unwrap_or(self.input.len());
        Error::QueryParse {
            message: message.to_owned(),
            position,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position)
    }

    fn parse_query(&mut self, id: QueryId) -> Result<CnfQuery> {
        let mut clauses = vec![self.parse_clause()?];
        while matches!(self.peek(), Some(Token::And(_))) {
            self.position += 1;
            clauses.push(self.parse_clause()?);
        }
        Ok(CnfQuery::new(id, clauses))
    }

    fn parse_clause(&mut self) -> Result<Clause> {
        if matches!(self.peek(), Some(Token::LParen(_))) {
            self.position += 1;
            let mut clause = vec![self.parse_condition()?];
            while matches!(self.peek(), Some(Token::Or(_))) {
                self.position += 1;
                clause.push(self.parse_condition()?);
            }
            if !matches!(self.peek(), Some(Token::RParen(_))) {
                return Err(self.error("expected ')'"));
            }
            self.position += 1;
            Ok(clause)
        } else {
            Ok(vec![self.parse_condition()?])
        }
    }

    fn parse_condition(&mut self) -> Result<Condition> {
        let class = match self.peek() {
            Some(Token::Ident(name, _)) => {
                let name = name.clone();
                self.position += 1;
                self.registry.register(name)
            }
            _ => return Err(self.error("expected a class name")),
        };
        let op = match self.peek() {
            Some(&Token::Op(op, _)) => {
                self.position += 1;
                op
            }
            _ => return Err(self.error("expected one of '>=', '<=', '='")),
        };
        let value = match self.peek() {
            Some(&Token::Number(value, _)) => {
                self.position += 1;
                value
            }
            _ => return Err(self.error("expected an integer threshold")),
        };
        Ok(Condition::new(class, op, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::ClassCounts;
    use std::collections::HashMap;
    use tvq_common::ClassId;

    fn counts(pairs: &[(&str, u32)], registry: &ClassRegistry) -> ClassCounts {
        let map: HashMap<ClassId, u32> = pairs
            .iter()
            .map(|&(label, n)| (registry.id(label).unwrap(), n))
            .collect();
        ClassCounts::from_map(map)
    }

    #[test]
    fn parses_simple_conjunction() {
        let mut registry = ClassRegistry::with_default_classes();
        let q = parse_query("car >= 2 AND person >= 1", QueryId(0), &mut registry).unwrap();
        assert_eq!(q.clauses.len(), 2);
        assert!(q.eval(&counts(&[("car", 2), ("person", 1)], &registry)));
        assert!(!q.eval(&counts(&[("car", 2)], &registry)));
    }

    #[test]
    fn parses_paper_q2_with_disjunctions() {
        let mut registry = ClassRegistry::with_default_classes();
        let q = parse_query(
            "(car >= 2 OR person <= 3) AND (car >= 3 OR person >= 2) AND car <= 5",
            QueryId(2),
            &mut registry,
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 3);
        assert_eq!(q.num_conditions(), 5);
        assert!(q.eval(&counts(&[("car", 3), ("person", 2)], &registry)));
        assert!(!q.eval(&counts(&[("car", 6), ("person", 2)], &registry)));
    }

    #[test]
    fn keywords_are_case_insensitive_and_equality_tolerates_double_equals() {
        let mut registry = ClassRegistry::with_default_classes();
        let q = parse_query(
            "(CAR >= 1 or bus == 2) and person = 0",
            QueryId(1),
            &mut registry,
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 2);
        assert!(q.eval(&counts(&[("car", 1), ("person", 0)], &registry)));
    }

    #[test]
    fn new_class_labels_are_registered() {
        let mut registry = ClassRegistry::with_default_classes();
        parse_query("bicycle >= 1", QueryId(0), &mut registry).unwrap();
        assert!(registry.id("bicycle").is_some());
    }

    #[test]
    fn unknown_class_labels_are_registered_not_rejected() {
        // The language auto-registers class labels (Section 5 queries range
        // over arbitrary detector vocabularies); an unknown label is only an
        // error where an identifier is not allowed at all.
        let mut registry = ClassRegistry::with_default_classes();
        assert!(registry.id("zeppelin").is_none());
        let q = parse_query("zeppelin >= 1", QueryId(0), &mut registry).unwrap();
        let zeppelin = registry.id("zeppelin").unwrap();
        assert!(q.classes().contains(&zeppelin));
        // ... but an identifier in operator position is a parse error.
        let err = parse_query("car person 2", QueryId(0), &mut registry).unwrap_err();
        assert!(err.to_string().contains("expected one of"));
    }

    #[test]
    fn malformed_comparators_are_rejected() {
        let mut registry = ClassRegistry::with_default_classes();
        for (input, fragment) in [
            ("car > 2", "strict"),
            ("car < 2", "strict"),
            ("car ! 2", "unexpected character"),
            ("car => 2", "strict"),
            ("car 2", "expected one of '>=', '<=', '='"),
        ] {
            let err = parse_query(input, QueryId(0), &mut registry).unwrap_err();
            let text = err.to_string();
            assert!(text.contains(fragment), "input {input:?}: got {text:?}");
        }
    }

    #[test]
    fn unbalanced_parentheses_are_rejected() {
        let mut registry = ClassRegistry::with_default_classes();
        for (input, fragment) in [
            ("(car >= 2", "')'"),
            ("(car >= 2 OR person >= 1", "')'"),
            ("car >= 2)", "trailing"),
            ("(car >= 2))", "trailing"),
            ("()", "class name"),
            ("(", "class name"),
            (")", "class name"),
        ] {
            let err = parse_query(input, QueryId(0), &mut registry).unwrap_err();
            let text = err.to_string();
            assert!(text.contains(fragment), "input {input:?}: got {text:?}");
        }
    }

    #[test]
    fn reports_errors_with_positions() {
        let mut registry = ClassRegistry::with_default_classes();
        for (input, fragment) in [
            ("car > 2", "strict"),
            ("car >= ", "integer"),
            (">= 2", "class name"),
            ("(car >= 2 AND person >= 1", "')'"),
            ("car >= 2 )", "trailing"),
            ("car >= 2 AND", "class name"),
            ("car ? 2", "unexpected character"),
            ("", "class name"),
        ] {
            let err = parse_query(input, QueryId(0), &mut registry).unwrap_err();
            let text = err.to_string();
            assert!(
                text.contains(fragment),
                "input {input:?}: expected {fragment:?} in {text:?}"
            );
        }
    }
}
