//! CNF temporal queries over video feeds.
//!
//! This crate implements the Query Evaluation layer of the paper's
//! architecture (Figure 2, Section 5): queries are conjunctions of
//! disjunctions of conditions of the form `class θ n` with
//! `θ ∈ {≤, =, ≥}`, evaluated against the class-count aggregates of the
//! maximum co-occurrence object sets produced by MCOS generation.
//!
//! * [`condition`] / [`cnf`] — the query model, including the worked example
//!   `q2` of Section 5.2 in tests;
//! * [`parser`] — a small textual query language
//!   (`"car >= 2 AND (person >= 1 OR bus >= 1)"`);
//! * [`aggregates`] — object-set → class-count aggregation;
//! * [`evaluator`] — the inverted-index evaluation of Whang et al. (CNFEval)
//!   extended with ordered `>=`/`<=` indexes (CNFEvalE), plus
//!   [`evaluate_result_set`] which applies
//!   the workload to a whole Result State Set;
//! * [`prune`] — the Proposition-1 pruner that terminates hopeless states
//!   when every query is `>=`-only (the `MFS_O`/`SSG_O` variants);
//! * [`generator`] — deterministic random workloads reproducing the Figure 8
//!   and Figure 9 experiments.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregates;
pub mod cnf;
pub mod condition;
pub mod evaluator;
pub mod generator;
pub mod parser;
pub mod prune;

pub use aggregates::ClassCounts;
pub use cnf::{Clause, CnfQuery};
pub use condition::{CmpOp, Condition};
pub use evaluator::{evaluate_result_set, CnfEvaluator, QueryMatch};
pub use generator::{generate_workload, WorkloadConfig};
pub use parser::parse_query;
pub use prune::GeqOnlyPruner;
