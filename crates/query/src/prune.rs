//! Query-driven state termination (the `MFS_O` / `SSG_O` variants).
//!
//! Proposition 1: when a condition uses only `>=`, a state whose MCOS fails
//! it will also fail it for every subset of that MCOS (counts only shrink).
//! Hence, when *every* registered query is `>=`-only, a freshly created state
//! whose MCOS satisfies no query can be terminated outright — none of its
//! descendants can ever satisfy anything either. [`GeqOnlyPruner`] packages
//! this check as the [`StatePruner`] hook consumed by the MCOS maintainers.

use std::collections::HashMap;
use std::sync::Arc;

use tvq_common::{ClassId, ObjectId, ObjectSet};
use tvq_core::{SharedPruner, StatePruner};

use crate::aggregates::ClassCounts;
use crate::evaluator::CnfEvaluator;

/// A pruner that terminates states failing every registered `>=`-only query.
#[derive(Debug, Clone)]
pub struct GeqOnlyPruner {
    evaluator: Arc<CnfEvaluator>,
    classes: Arc<HashMap<ObjectId, ClassId>>,
}

impl GeqOnlyPruner {
    /// Builds the pruner, returning `None` when the workload contains any
    /// non-`>=` condition (the strategy would then be unsound, Section 5.3).
    pub fn new(
        evaluator: Arc<CnfEvaluator>,
        classes: Arc<HashMap<ObjectId, ClassId>>,
    ) -> Option<Self> {
        if evaluator.is_empty() || !evaluator.all_geq_only() {
            return None;
        }
        Some(GeqOnlyPruner { evaluator, classes })
    }

    /// Convenience: builds the pruner and wraps it for the maintainer API.
    pub fn shared(
        evaluator: Arc<CnfEvaluator>,
        classes: Arc<HashMap<ObjectId, ClassId>>,
    ) -> Option<SharedPruner> {
        GeqOnlyPruner::new(evaluator, classes).map(|p| Arc::new(p) as SharedPruner)
    }
}

impl StatePruner for GeqOnlyPruner {
    fn should_terminate(&self, objects: &ObjectSet) -> bool {
        let counts = ClassCounts::of(objects, &self.classes);
        !self.evaluator.any_satisfied(&counts)
    }

    fn should_terminate_with(&self, objects: &ObjectSet, counts: Option<&ClassCounts>) -> bool {
        match counts {
            Some(counts) => !self.evaluator.any_satisfied(counts),
            None => self.should_terminate(objects),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfQuery;
    use crate::condition::Condition;
    use tvq_common::QueryId;

    fn classes() -> Arc<HashMap<ObjectId, ClassId>> {
        Arc::new(
            [
                (ObjectId(1), ClassId(1)), // car
                (ObjectId(2), ClassId(1)), // car
                (ObjectId(3), ClassId(0)), // person
                (ObjectId(4), ClassId(0)), // person
            ]
            .into_iter()
            .collect(),
        )
    }

    #[test]
    fn rejects_workloads_with_non_geq_conditions() {
        let mixed = CnfQuery::conjunction(QueryId(0), vec![Condition::at_most(ClassId(1), 3)]);
        let evaluator = Arc::new(CnfEvaluator::new(vec![mixed]));
        assert!(GeqOnlyPruner::new(evaluator, classes()).is_none());
    }

    #[test]
    fn rejects_empty_workloads() {
        let evaluator = Arc::new(CnfEvaluator::new(vec![]));
        assert!(GeqOnlyPruner::new(evaluator, classes()).is_none());
    }

    #[test]
    fn terminates_states_that_fail_every_query() {
        let q = CnfQuery::conjunction(
            QueryId(0),
            vec![
                Condition::at_least(ClassId(1), 2),
                Condition::at_least(ClassId(0), 1),
            ],
        );
        let evaluator = Arc::new(CnfEvaluator::new(vec![q]));
        let pruner = GeqOnlyPruner::new(evaluator, classes()).unwrap();
        // Two cars and a person: satisfied → keep.
        assert!(!pruner.should_terminate(&ObjectSet::from_raw([1, 2, 3])));
        // One car only: hopeless → terminate (and so is every subset).
        assert!(pruner.should_terminate(&ObjectSet::from_raw([1])));
        assert!(pruner.should_terminate(&ObjectSet::empty()));
    }

    #[test]
    fn downward_monotonicity_holds_on_samples() {
        // The soundness requirement of StatePruner: every subset of a
        // terminated set is terminated.
        let q = CnfQuery::conjunction(
            QueryId(0),
            vec![
                Condition::at_least(ClassId(1), 1),
                Condition::at_least(ClassId(0), 2),
            ],
        );
        let evaluator = Arc::new(CnfEvaluator::new(vec![q]));
        let pruner = GeqOnlyPruner::new(evaluator, classes()).unwrap();
        let full = ObjectSet::from_raw([1, 3, 4]);
        assert!(!pruner.should_terminate(&full));
        let hopeless = ObjectSet::from_raw([1, 3]);
        assert!(pruner.should_terminate(&hopeless));
        for subset in [
            ObjectSet::from_raw([1]),
            ObjectSet::from_raw([3]),
            ObjectSet::empty(),
        ] {
            assert!(pruner.should_terminate(&subset));
        }
    }

    #[test]
    fn shared_wrapper_produces_a_maintainer_compatible_pruner() {
        let q = CnfQuery::conjunction(QueryId(0), vec![Condition::at_least(ClassId(1), 2)]);
        let evaluator = Arc::new(CnfEvaluator::new(vec![q]));
        let shared = GeqOnlyPruner::shared(evaluator, classes()).unwrap();
        assert!(shared.should_terminate(&ObjectSet::from_raw([1])));
        assert!(!shared.should_terminate(&ObjectSet::from_raw([1, 2])));
    }
}
