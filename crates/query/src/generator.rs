//! Random query-workload generation.
//!
//! The paper's query-evaluation experiments use synthetic workloads: 10–50
//! random CNF queries (Figure 8) and 100 `>=`-only queries whose smallest
//! threshold `n_min` is swept from 1 to 9 (Figure 9). This module generates
//! such workloads deterministically from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tvq_common::{ClassId, QueryId};

use crate::cnf::CnfQuery;
use crate::condition::{CmpOp, Condition};

/// Configuration of a random CNF workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Classes conditions may refer to.
    pub classes: Vec<ClassId>,
    /// Number of clauses (disjunctions) per query, inclusive range.
    pub clauses_per_query: (usize, usize),
    /// Number of conditions per clause, inclusive range.
    pub conditions_per_clause: (usize, usize),
    /// Threshold values, inclusive range.
    pub thresholds: (u32, u32),
    /// Restrict to `>=` conditions (required by the pruning experiments).
    pub geq_only: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 10,
            classes: vec![ClassId(0), ClassId(1), ClassId(2), ClassId(3)],
            clauses_per_query: (1, 3),
            conditions_per_clause: (1, 2),
            thresholds: (1, 4),
            geq_only: false,
        }
    }
}

impl WorkloadConfig {
    /// The Figure 8 workload: `n` random mixed-operator queries.
    pub fn figure_8(num_queries: usize) -> Self {
        WorkloadConfig {
            num_queries,
            ..WorkloadConfig::default()
        }
    }

    /// The Figure 9 workload: 100 `>=`-only queries whose smallest threshold
    /// is `n_min`.
    pub fn figure_9(n_min: u32) -> Self {
        WorkloadConfig {
            num_queries: 100,
            geq_only: true,
            thresholds: (n_min, n_min + 3),
            ..WorkloadConfig::default()
        }
    }
}

/// Generates a workload. Deterministic for a given seed; query identifiers
/// are `0..num_queries`.
pub fn generate_workload(config: &WorkloadConfig, seed: u64) -> Vec<CnfQuery> {
    assert!(
        !config.classes.is_empty(),
        "workload needs at least one class"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(config.num_queries);
    for qid in 0..config.num_queries {
        let num_clauses = rng.gen_range(config.clauses_per_query.0..=config.clauses_per_query.1);
        let clauses: Vec<Vec<Condition>> = (0..num_clauses.max(1))
            .map(|_| {
                let num_conditions =
                    rng.gen_range(config.conditions_per_clause.0..=config.conditions_per_clause.1);
                (0..num_conditions.max(1))
                    .map(|_| {
                        let class = config.classes[rng.gen_range(0..config.classes.len())];
                        let op = if config.geq_only {
                            CmpOp::Ge
                        } else {
                            match rng.gen_range(0..4) {
                                0 => CmpOp::Le,
                                1 => CmpOp::Eq,
                                _ => CmpOp::Ge,
                            }
                        };
                        let value = rng.gen_range(config.thresholds.0..=config.thresholds.1);
                        Condition::new(class, op, value)
                    })
                    .collect()
            })
            .collect();
        queries.push(CnfQuery::new(QueryId(qid as u32), clauses));
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_requested_number_of_valid_queries() {
        let workload = generate_workload(&WorkloadConfig::figure_8(25), 1);
        assert_eq!(workload.len(), 25);
        for query in &workload {
            assert!(query.validate().is_ok());
            assert!(!query.classes().is_empty());
        }
    }

    #[test]
    fn figure_9_workloads_are_geq_only_with_nmin_respected() {
        for n_min in [1u32, 3, 5, 7, 9] {
            let workload = generate_workload(&WorkloadConfig::figure_9(n_min), 7);
            assert_eq!(workload.len(), 100);
            assert!(workload.iter().all(CnfQuery::is_geq_only));
            let observed_min = workload
                .iter()
                .filter_map(CnfQuery::min_threshold)
                .min()
                .unwrap();
            assert!(observed_min >= n_min);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = WorkloadConfig::figure_8(10);
        assert_eq!(generate_workload(&config, 5), generate_workload(&config, 5));
        assert_ne!(generate_workload(&config, 5), generate_workload(&config, 6));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_class_list_is_rejected() {
        let config = WorkloadConfig {
            classes: vec![],
            ..WorkloadConfig::default()
        };
        generate_workload(&config, 0);
    }
}
