//! Atomic query conditions.
//!
//! A condition has the form `class θ n` with `θ ∈ {≤, =, ≥}` (Section 2):
//! it constrains the number of objects of one class inside a maximum
//! co-occurrence object set.

use std::fmt;

use tvq_common::{ClassId, ClassRegistry};

/// Comparison operator of a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `class <= n`
    Le,
    /// `class = n`
    Eq,
    /// `class >= n`
    Ge,
}

impl CmpOp {
    /// Evaluates `actual θ expected`.
    pub fn eval(self, actual: u32, expected: u32) -> bool {
        match self {
            CmpOp::Le => actual <= expected,
            CmpOp::Eq => actual == expected,
            CmpOp::Ge => actual >= expected,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
        })
    }
}

/// A single condition `class θ n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Condition {
    /// The class whose cardinality is constrained.
    pub class: ClassId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The threshold value.
    pub value: u32,
}

impl Condition {
    /// Creates a condition.
    pub fn new(class: ClassId, op: CmpOp, value: u32) -> Self {
        Condition { class, op, value }
    }

    /// Shorthand for `class >= value`.
    pub fn at_least(class: ClassId, value: u32) -> Self {
        Condition::new(class, CmpOp::Ge, value)
    }

    /// Shorthand for `class <= value`.
    pub fn at_most(class: ClassId, value: u32) -> Self {
        Condition::new(class, CmpOp::Le, value)
    }

    /// Shorthand for `class = value`.
    pub fn exactly(class: ClassId, value: u32) -> Self {
        Condition::new(class, CmpOp::Eq, value)
    }

    /// Evaluates the condition against the observed count of its class.
    pub fn eval(&self, count: u32) -> bool {
        self.op.eval(count, self.value)
    }

    /// Renders the condition with human-readable class names.
    pub fn display<'a>(&'a self, registry: &'a ClassRegistry) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Condition, &'a ClassRegistry);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let label = self
                    .1
                    .label(self.0.class)
                    .map(|l| l.as_str().to_owned())
                    .unwrap_or_else(|| self.0.class.to_string());
                write!(f, "{} {} {}", label, self.0.op, self.0.value)
            }
        }
        D(self, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_evaluate_correctly() {
        assert!(CmpOp::Le.eval(2, 3));
        assert!(CmpOp::Le.eval(3, 3));
        assert!(!CmpOp::Le.eval(4, 3));
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(!CmpOp::Eq.eval(2, 3));
        assert!(CmpOp::Ge.eval(3, 3));
        assert!(CmpOp::Ge.eval(5, 3));
        assert!(!CmpOp::Ge.eval(2, 3));
    }

    #[test]
    fn condition_shorthands() {
        let car = ClassId(1);
        assert!(Condition::at_least(car, 2).eval(2));
        assert!(!Condition::at_least(car, 2).eval(1));
        assert!(Condition::at_most(car, 2).eval(0));
        assert!(Condition::exactly(car, 2).eval(2));
        assert!(!Condition::exactly(car, 2).eval(3));
    }

    #[test]
    fn display_uses_class_labels() {
        let registry = ClassRegistry::with_default_classes();
        let car = registry.id("car").unwrap();
        let condition = Condition::at_least(car, 3);
        assert_eq!(condition.display(&registry).to_string(), "car >= 3");
        assert_eq!(CmpOp::Le.to_string(), "<=");
    }
}
