//! CNF queries over object classes.
//!
//! A query is a conjunction of disjunctions of [`Condition`]s, e.g.
//! `(car >= 2 OR person <= 3) AND (car >= 3 OR person >= 2) AND car <= 5`
//! — the example `q2` of Section 5.2. Queries are evaluated against the
//! class-count aggregates of a maximum co-occurrence object set.

use tvq_common::{ClassId, QueryId};

use crate::aggregates::ClassCounts;
use crate::condition::{CmpOp, Condition};

/// A disjunction (OR) of conditions.
pub type Clause = Vec<Condition>;

/// A CNF query: every clause must be satisfied; a clause is satisfied when at
/// least one of its conditions holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfQuery {
    /// Query identifier (unique within a registered workload).
    pub id: QueryId,
    /// The conjunctive clauses.
    pub clauses: Vec<Clause>,
}

impl CnfQuery {
    /// Creates a query from its clauses. Empty clauses are rejected by
    /// [`CnfQuery::validate`].
    pub fn new(id: QueryId, clauses: Vec<Clause>) -> Self {
        CnfQuery { id, clauses }
    }

    /// A query consisting of a single conjunction of conditions
    /// (each condition becomes its own clause).
    pub fn conjunction(id: QueryId, conditions: Vec<Condition>) -> Self {
        CnfQuery {
            id,
            clauses: conditions.into_iter().map(|c| vec![c]).collect(),
        }
    }

    /// Checks structural validity: at least one clause, no empty clause.
    pub fn validate(&self) -> Result<(), String> {
        if self.clauses.is_empty() {
            return Err("query has no clauses".to_owned());
        }
        if self.clauses.iter().any(|clause| clause.is_empty()) {
            return Err("query contains an empty clause".to_owned());
        }
        Ok(())
    }

    /// Number of conditions across all clauses.
    pub fn num_conditions(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).sum()
    }

    /// Direct (index-free) evaluation against class counts; the inverted
    /// index implementation must agree with this.
    pub fn eval(&self, counts: &ClassCounts) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|c| c.eval(counts.count(c.class))))
    }

    /// Whether the query uses only `>=` conditions — the precondition for the
    /// result-pruning strategy of Section 5.3 (Proposition 1).
    pub fn is_geq_only(&self) -> bool {
        self.clauses.iter().flatten().all(|c| c.op == CmpOp::Ge)
    }

    /// All classes referenced by the query.
    pub fn classes(&self) -> Vec<ClassId> {
        let mut classes: Vec<ClassId> = self.clauses.iter().flatten().map(|c| c.class).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// The smallest threshold among the query's conditions (the paper's
    /// `n_min` when aggregated over a workload).
    pub fn min_threshold(&self) -> Option<u32> {
        self.clauses.iter().flatten().map(|c| c.value).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn counts(pairs: &[(u16, u32)]) -> ClassCounts {
        let map: HashMap<ClassId, u32> = pairs.iter().map(|&(c, n)| (ClassId(c), n)).collect();
        ClassCounts::from_map(map)
    }

    /// `q2` from Section 5.2 of the paper.
    fn paper_q2() -> CnfQuery {
        let car = ClassId(1);
        let person = ClassId(0);
        CnfQuery::new(
            QueryId(2),
            vec![
                vec![Condition::at_least(car, 2), Condition::at_most(person, 3)],
                vec![Condition::at_least(car, 3), Condition::at_least(person, 2)],
                vec![Condition::at_most(car, 5)],
            ],
        )
    }

    #[test]
    fn paper_q2_evaluates_as_expected() {
        let q = paper_q2();
        assert!(q.validate().is_ok());
        assert_eq!(q.num_conditions(), 5);
        // 3 cars, 2 people: every clause holds.
        assert!(q.eval(&counts(&[(1, 3), (0, 2)])));
        // 2 cars, 1 person: clause 2 fails (needs car>=3 or person>=2).
        assert!(!q.eval(&counts(&[(1, 2), (0, 1)])));
        // 6 cars violate the last clause even though the others hold.
        assert!(!q.eval(&counts(&[(1, 6), (0, 2)])));
        // 0 cars, 0 people: first clause holds via person<=3, second fails.
        assert!(!q.eval(&counts(&[])));
    }

    #[test]
    fn conjunction_builder_makes_single_condition_clauses() {
        let q = CnfQuery::conjunction(
            QueryId(1),
            vec![
                Condition::at_least(ClassId(1), 2),
                Condition::at_least(ClassId(0), 1),
            ],
        );
        assert_eq!(q.clauses.len(), 2);
        assert!(q.eval(&counts(&[(1, 2), (0, 1)])));
        assert!(!q.eval(&counts(&[(1, 2)])));
    }

    #[test]
    fn validation_rejects_degenerate_queries() {
        assert!(CnfQuery::new(QueryId(0), vec![]).validate().is_err());
        assert!(CnfQuery::new(QueryId(0), vec![vec![]]).validate().is_err());
    }

    #[test]
    fn geq_only_detection() {
        assert!(!paper_q2().is_geq_only());
        let q = CnfQuery::conjunction(
            QueryId(3),
            vec![
                Condition::at_least(ClassId(1), 1),
                Condition::at_least(ClassId(2), 4),
            ],
        );
        assert!(q.is_geq_only());
    }

    #[test]
    fn classes_and_min_threshold() {
        let q = paper_q2();
        assert_eq!(q.classes(), vec![ClassId(0), ClassId(1)]);
        assert_eq!(q.min_threshold(), Some(2));
    }
}
