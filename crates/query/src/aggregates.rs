//! Class-count aggregates of an object set.
//!
//! Query conditions constrain *how many* objects of each class an MCOS
//! contains (step 2(a) of the evaluation procedure in Section 5.2): before a
//! state reaches the CNF evaluator, its object set is aggregated into
//! per-class counts using the feed's object → class mapping.

use std::collections::HashMap;

use tvq_common::{ClassId, ObjectId, ObjectSet};

/// Per-class object counts of one MCOS.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassCounts {
    counts: HashMap<ClassId, u32>,
}

impl ClassCounts {
    /// Creates empty counts (every class has zero objects).
    pub fn new() -> Self {
        ClassCounts::default()
    }

    /// Builds counts from an explicit map.
    pub fn from_map(counts: HashMap<ClassId, u32>) -> Self {
        ClassCounts { counts }
    }

    /// Aggregates an object set using the feed-wide object → class mapping.
    /// Objects missing from the mapping are ignored (they belong to classes
    /// no query asked for and were filtered out upstream).
    pub fn of(objects: &ObjectSet, classes: &HashMap<ObjectId, ClassId>) -> Self {
        let mut counts: HashMap<ClassId, u32> = HashMap::new();
        for id in objects.iter() {
            if let Some(&class) = classes.get(&id) {
                *counts.entry(class).or_insert(0) += 1;
            }
        }
        ClassCounts { counts }
    }

    /// The count for one class (zero when absent).
    pub fn count(&self, class: ClassId) -> u32 {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Iterates over `(class, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, u32)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }

    /// Total number of objects across all classes.
    pub fn total(&self) -> u32 {
        self.counts.values().sum()
    }

    /// Whether no objects were counted.
    pub fn is_empty(&self) -> bool {
        self.counts.values().all(|&n| n == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_counts_by_class() {
        let classes: HashMap<ObjectId, ClassId> = [
            (ObjectId(1), ClassId(0)),
            (ObjectId(2), ClassId(1)),
            (ObjectId(3), ClassId(1)),
            (ObjectId(4), ClassId(2)),
        ]
        .into_iter()
        .collect();
        let counts = ClassCounts::of(&ObjectSet::from_raw([1, 2, 3]), &classes);
        assert_eq!(counts.count(ClassId(0)), 1);
        assert_eq!(counts.count(ClassId(1)), 2);
        assert_eq!(counts.count(ClassId(2)), 0);
        assert_eq!(counts.total(), 3);
        assert!(!counts.is_empty());
    }

    #[test]
    fn unknown_objects_are_ignored() {
        let classes: HashMap<ObjectId, ClassId> = [(ObjectId(1), ClassId(0))].into_iter().collect();
        let counts = ClassCounts::of(&ObjectSet::from_raw([1, 9]), &classes);
        assert_eq!(counts.total(), 1);
    }

    #[test]
    fn empty_object_set_has_empty_counts() {
        let counts = ClassCounts::of(&ObjectSet::empty(), &HashMap::new());
        assert!(counts.is_empty());
        assert_eq!(counts.count(ClassId(3)), 0);
        assert_eq!(counts.iter().count(), 0);
    }
}
