//! Class-count aggregates of an object set.
//!
//! [`ClassCounts`] moved to `tvq-common` so the
//! [`SetInterner`](tvq_common::SetInterner) can cache one aggregate per
//! interned object set; this module re-exports it for source compatibility
//! with the query-layer call sites (`tvq_query::aggregates::ClassCounts`
//! and `tvq_query::ClassCounts` keep working unchanged).

pub use tvq_common::aggregates::ClassCounts;
