//! Differential tests for the query-driven pruner (Section 5.3): running MFS
//! and SSG with a [`GeqOnlyPruner`] attached must yield exactly the reference
//! oracle's results minus the states the pruner terminates — pruning may
//! remove hopeless states early, but never a state some `>=`-only query could
//! still accept.

use std::collections::HashMap;
use std::sync::Arc;

use tvq_common::{ClassId, ClassRegistry, ObjectId, QueryId, WindowSpec};
use tvq_core::SharedPruner;
use tvq_query::{parse_query, CnfEvaluator, GeqOnlyPruner};
use tvq_testkit::{assert_equivalent_with_pruner, tracked_feed};

/// Class map covering the whole test universe: object `id` has class
/// `id % num_classes`, matching `tvq_testkit::classed_feed`.
fn class_map(universe: u32, num_classes: u16) -> Arc<HashMap<ObjectId, ClassId>> {
    Arc::new(
        (0..universe)
            .map(|id| (ObjectId(id), ClassId(id as u16 % num_classes)))
            .collect(),
    )
}

fn geq_pruner(queries: &[&str], universe: u32, num_classes: u16) -> SharedPruner {
    let mut registry = ClassRegistry::with_default_classes();
    let workload = queries
        .iter()
        .enumerate()
        .map(|(i, text)| parse_query(text, QueryId(i as u32), &mut registry).unwrap())
        .collect();
    let evaluator = Arc::new(CnfEvaluator::new(workload));
    GeqOnlyPruner::shared(evaluator, class_map(universe, num_classes))
        .expect(">=-only workload must yield a pruner")
}

#[test]
fn geq_pruned_maintainers_agree_with_filtered_reference() {
    // person = class 0, car = class 1 in the default registry; objects take
    // class id % 2, so even ids are people and odd ids are cars.
    let pruner = geq_pruner(&["car >= 1 AND person >= 1"], 6, 2);
    for seed in 0..8u64 {
        let frames = tracked_feed(seed, 35, 6, 0.25);
        for (window, duration) in [(4, 2), (6, 3)] {
            assert_equivalent_with_pruner(
                &frames,
                WindowSpec::new(window, duration).unwrap(),
                pruner.clone(),
            );
        }
    }
}

#[test]
fn disjunctive_geq_workloads_prune_soundly() {
    let pruner = geq_pruner(
        &["(car >= 2 OR person >= 2)", "car >= 1 AND person >= 2"],
        6,
        2,
    );
    for seed in 50..56u64 {
        let frames = tracked_feed(seed, 30, 6, 0.35);
        assert_equivalent_with_pruner(&frames, WindowSpec::new(5, 2).unwrap(), pruner.clone());
    }
}

#[test]
fn demanding_workloads_prune_almost_everything_but_stay_sound() {
    // Requires more cars than the universe holds: every state is terminated,
    // and the maintainers must agree with the (empty) filtered oracle.
    let pruner = geq_pruner(&["car >= 5"], 6, 2);
    for seed in 80..84u64 {
        let frames = tracked_feed(seed, 25, 6, 0.25);
        assert_equivalent_with_pruner(&frames, WindowSpec::new(5, 3).unwrap(), pruner.clone());
    }
}

#[test]
fn mixed_workloads_refuse_to_build_a_pruner() {
    let mut registry = ClassRegistry::with_default_classes();
    let mixed = parse_query("car <= 3", QueryId(0), &mut registry).unwrap();
    let evaluator = Arc::new(CnfEvaluator::new(vec![mixed]));
    assert!(GeqOnlyPruner::shared(evaluator, class_map(6, 2)).is_none());
}
