//! Criterion micro-benchmarks for CNF query evaluation (Figures 8 and 9):
//! the inverted-index evaluator itself, the full per-window evaluation, and
//! the effect of the Section 5.3 pruning strategy.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tvq_common::{ClassId, WindowSpec};
use tvq_core::MaintainerKind;
use tvq_query::{generate_workload, ClassCounts, CnfEvaluator, GeqOnlyPruner, WorkloadConfig};
use tvq_video::{generate, DatasetProfile};

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("query_evaluation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group
}

/// The raw evaluator: cost of one aggregate evaluation as the workload grows
/// (the paper observes this is negligible next to state maintenance).
fn bench_evaluator_only(c: &mut Criterion) {
    let mut group = configure(c);
    for num_queries in [10usize, 50, 200] {
        let workload = generate_workload(&WorkloadConfig::figure_8(num_queries), 7);
        let evaluator = CnfEvaluator::new(workload);
        let counts = ClassCounts::from_map(
            [
                (ClassId(0), 2u32),
                (ClassId(1), 4),
                (ClassId(2), 1),
                (ClassId(3), 0),
            ]
            .into_iter()
            .collect(),
        );
        group.bench_with_input(
            BenchmarkId::new("evaluate", num_queries),
            &evaluator,
            |b, evaluator| b.iter(|| evaluator.evaluate(&counts)),
        );
    }
    group.finish();
}

/// Figure 8 shape: total time barely moves as the number of queries grows.
fn bench_workload_sizes_end_to_end(c: &mut Criterion) {
    let mut group = configure(c);
    let relation = generate(&DatasetProfile::v1().truncated(200), 9);
    let window = WindowSpec::new(50, 40).unwrap();
    for num_queries in [10usize, 50] {
        let workload = generate_workload(&WorkloadConfig::figure_8(num_queries), 7);
        let evaluator = CnfEvaluator::new(workload);
        group.bench_with_input(
            BenchmarkId::new("ssg_total", num_queries),
            &relation,
            |b, relation| {
                b.iter(|| {
                    tvq_bench::time_query_evaluation(
                        relation,
                        window,
                        MaintainerKind::Ssg,
                        &evaluator,
                        None,
                    )
                })
            },
        );
    }
    group.finish();
}

/// Figure 9 shape: with selective (>=, large n_min) workloads the pruning
/// variants skip most states.
fn bench_pruning_effect(c: &mut Criterion) {
    let mut group = configure(c);
    let relation = generate(&DatasetProfile::m2().truncated(200), 5);
    let classes = Arc::new(relation.object_classes().clone());
    let window = WindowSpec::new(50, 40).unwrap();
    for n_min in [1u32, 7] {
        let workload = generate_workload(&WorkloadConfig::figure_9(n_min), 11);
        let evaluator = Arc::new(CnfEvaluator::new(workload));
        for pruned in [false, true] {
            let label = if pruned { "SSG_O" } else { "SSG_E" };
            let evaluator_ref = Arc::clone(&evaluator);
            let pruner = if pruned {
                GeqOnlyPruner::shared(Arc::clone(&evaluator), Arc::clone(&classes))
            } else {
                None
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("nmin{n_min}")),
                &relation,
                |b, relation| {
                    b.iter(|| {
                        tvq_bench::time_query_evaluation(
                            relation,
                            window,
                            MaintainerKind::Ssg,
                            &evaluator_ref,
                            pruner.clone(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_evaluator_only,
    bench_workload_sizes_end_to_end,
    bench_pruning_effect
);
criterion_main!(benches);
