//! Criterion micro-benchmarks for the MCOS generation layer (the code paths
//! behind Figures 4-7), on reduced inputs so a full `cargo bench` stays fast.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tvq_common::WindowSpec;
use tvq_core::MaintainerKind;
use tvq_video::{generate, generate_with_id_reuse, DatasetProfile};

const FRAMES: usize = 240;

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("mcos_generation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group
}

/// Figure 4/10 shape: the three methods on a sparse (V1) and a dense (M2)
/// feed.
fn bench_methods_per_dataset(c: &mut Criterion) {
    let mut group = configure(c);
    let window = WindowSpec::new(50, 40).unwrap();
    for profile in [DatasetProfile::v1(), DatasetProfile::m2()] {
        let relation = generate(&profile.truncated(FRAMES), 1);
        for kind in MaintainerKind::PRODUCTION {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), profile.name),
                &relation,
                |b, relation| {
                    b.iter(|| tvq_bench::time_mcos_generation(relation, window, kind));
                },
            );
        }
    }
    group.finish();
}

/// Figure 6 shape: SSG's advantage grows with the window size on dense feeds.
fn bench_window_sizes(c: &mut Criterion) {
    let mut group = configure(c);
    let relation = generate(&DatasetProfile::d2().truncated(FRAMES), 2);
    for window in [40usize, 60, 80] {
        let spec = WindowSpec::new(window, 30).unwrap();
        for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
            group.bench_with_input(
                BenchmarkId::new(format!("w{window}"), kind.name()),
                &relation,
                |b, relation| {
                    b.iter(|| tvq_bench::time_mcos_generation(relation, spec, kind));
                },
            );
        }
    }
    group.finish();
}

/// Figure 7 shape: more occlusion (id reuse) means more states for everyone.
fn bench_occlusion_levels(c: &mut Criterion) {
    let mut group = configure(c);
    let spec = WindowSpec::new(50, 40).unwrap();
    for po in [0u32, 3] {
        let relation = generate_with_id_reuse(&DatasetProfile::d1().truncated(FRAMES), po, 3);
        for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
            group.bench_with_input(
                BenchmarkId::new(format!("po{po}"), kind.name()),
                &relation,
                |b, relation| {
                    b.iter(|| tvq_bench::time_mcos_generation(relation, spec, kind));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_methods_per_dataset,
    bench_window_sizes,
    bench_occlusion_levels
);
criterion_main!(benches);
