//! Criterion micro-benchmark for the full engine (Figure 10 shape): simulated
//! feed → MCOS generation → CNF evaluation, per strategy.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tvq_common::WindowSpec;
use tvq_core::MaintainerKind;
use tvq_engine::run_workload;
use tvq_query::{generate_workload, WorkloadConfig};
use tvq_video::{generate, DatasetProfile};

fn bench_engine_per_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));

    let window = WindowSpec::new(50, 40).unwrap();
    let queries = generate_workload(&WorkloadConfig::figure_8(20), 3);
    for profile in [DatasetProfile::d1(), DatasetProfile::m2()] {
        let relation = generate(&profile.truncated(200), 13);
        for kind in MaintainerKind::PRODUCTION {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), profile.name),
                &relation,
                |b, relation| {
                    b.iter(|| {
                        run_workload(relation, &queries, window, kind, false)
                            .expect("workload runs")
                            .total_matches
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_per_strategy);
criterion_main!(benches);
