//! Ablation benchmarks: quantify each design choice called out in DESIGN.md.
//!
//! * **Key-frame pruning** (MFS vs NAIVE): removing invalid states as soon as
//!   their key frames expire, instead of waiting for the frame set to empty.
//! * **Graph-guided traversal** (SSG vs MFS): skipping states that share no
//!   object with the arriving frame, instead of scanning every state.
//! * **Query-driven termination** (SSG_O vs SSG_E): Proposition-1 pruning for
//!   `>=`-only workloads.
//! * **Window sharing** (paper Section 3): queries with the same window share
//!   one maintainer — measured as one maintainer vs. one per query.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tvq_common::WindowSpec;
use tvq_core::MaintainerKind;
use tvq_query::{generate_workload, CnfEvaluator, GeqOnlyPruner, WorkloadConfig};
use tvq_video::{generate, generate_with_id_reuse, DatasetProfile};

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group
}

/// Key-frame pruning ablation: NAIVE is exactly MFS without marked frame
/// sets; the gap is the value of Theorem 1's early pruning.
fn bench_key_frame_pruning(c: &mut Criterion) {
    let mut group = configure(c);
    let spec = WindowSpec::new(50, 40).unwrap();
    let relation = generate_with_id_reuse(&DatasetProfile::d2().truncated(220), 2, 17);
    for kind in [MaintainerKind::Naive, MaintainerKind::Mfs] {
        group.bench_with_input(
            BenchmarkId::new("keyframe_pruning", kind.name()),
            &relation,
            |b, relation| b.iter(|| tvq_bench::time_mcos_generation(relation, spec, kind)),
        );
    }
    group.finish();
}

/// Graph-traversal ablation: MFS scans every state per frame, SSG only the
/// subgraph reachable with non-empty intersections.
fn bench_graph_traversal(c: &mut Criterion) {
    let mut group = configure(c);
    let spec = WindowSpec::new(60, 45).unwrap();
    // A moving-camera profile: many short-lived objects, many distinct states.
    let relation = generate(&DatasetProfile::m1().truncated(220), 19);
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        group.bench_with_input(
            BenchmarkId::new("graph_traversal", kind.name()),
            &relation,
            |b, relation| b.iter(|| tvq_bench::time_mcos_generation(relation, spec, kind)),
        );
    }
    group.finish();
}

/// Query-driven termination ablation on a selective workload.
fn bench_termination(c: &mut Criterion) {
    let mut group = configure(c);
    let spec = WindowSpec::new(50, 40).unwrap();
    let relation = generate(&DatasetProfile::d2().truncated(220), 23);
    let classes = Arc::new(relation.object_classes().clone());
    let evaluator = Arc::new(CnfEvaluator::new(generate_workload(
        &WorkloadConfig::figure_9(7),
        29,
    )));
    for pruned in [false, true] {
        let label = if pruned {
            "with_termination"
        } else {
            "without_termination"
        };
        let pruner = if pruned {
            GeqOnlyPruner::shared(Arc::clone(&evaluator), Arc::clone(&classes))
        } else {
            None
        };
        let evaluator_ref = Arc::clone(&evaluator);
        group.bench_with_input(
            BenchmarkId::new("termination", label),
            &relation,
            |b, relation| {
                b.iter(|| {
                    tvq_bench::time_query_evaluation(
                        relation,
                        spec,
                        MaintainerKind::Ssg,
                        &evaluator_ref,
                        pruner.clone(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Window-sharing ablation: queries with the same window share one maintainer
/// (the paper groups them); the alternative pays state maintenance per query.
fn bench_window_sharing(c: &mut Criterion) {
    let mut group = configure(c);
    let spec = WindowSpec::new(40, 30).unwrap();
    let relation = generate(&DatasetProfile::v1().truncated(200), 31);
    let num_queries = 10usize;

    group.bench_with_input(
        BenchmarkId::new("window_sharing", "shared"),
        &relation,
        |b, relation| {
            b.iter(|| {
                let mut maintainer = MaintainerKind::Ssg.build(spec);
                for frame in relation.frames() {
                    maintainer.advance(frame.fid, &frame.objects).unwrap();
                }
                maintainer.metrics().states_created
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("window_sharing", "per_query"),
        &relation,
        |b, relation| {
            b.iter(|| {
                let mut maintainers: Vec<_> = (0..num_queries)
                    .map(|_| MaintainerKind::Ssg.build(spec))
                    .collect();
                for frame in relation.frames() {
                    for maintainer in &mut maintainers {
                        maintainer.advance(frame.fid, &frame.objects).unwrap();
                    }
                }
                maintainers[0].metrics().states_created
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_key_frame_pruning,
    bench_graph_traversal,
    bench_termination,
    bench_window_sharing
);
criterion_main!(benches);
