//! Criterion micro-benchmarks for the multi-feed engine on the classed-feed
//! workload (camera deployments with per-object class labels, filtered and
//! evaluated against a CNF query registry):
//!
//! * `multi_feed/ingest/{N}w` — a fixed four-camera deployment ingested
//!   end-to-end through the sharded engine, per worker-pool size. The
//!   interesting read-out is how total ingestion time falls as workers are
//!   added while the reported matches stay identical.
//! * `multi_feed/classed/{METHOD}` — the same deployment ingested serially
//!   through one single-feed engine per camera, per MCOS maintainer. This
//!   isolates the maintainer + evaluator hot path (no channels, no thread
//!   wake-ups) — the SSG row is the SSG micro-benchmark the perf trajectory
//!   tracks.
//! * `multi_feed/skewed/{CONFIG}` — the skewed camera grid (two hot cameras
//!   colliding on one static shard, hotspot flip mid-run) ingested with
//!   static sharding vs. work-stealing rebalancing. On a multi-core runner
//!   the rebalanced row pulls ahead; on any machine the row pins the
//!   scheduler's overhead.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tvq_bench::experiments::{
    multi_feed_batches, multi_feed_deployment, run_multi_feed_prepared, skew_profile, skew_window,
    stable_scene,
};
use tvq_bench::Scale;
use tvq_common::WindowSpec;
use tvq_core::MaintainerKind;
use tvq_engine::{
    EngineConfig, FeedFrame, MultiFeedConfig, MultiFeedEngine, TemporalVideoQueryEngine,
};
use tvq_video::{interleave, skewed_grid, CameraFeed};

fn bench_multi_feed_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_feed");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));

    // Prepared once: the timed closure measures ingestion, not deployment
    // generation or frame interleaving/cloning.
    let batches = multi_feed_batches(&multi_feed_deployment(4, Scale::Quick));
    let window = WindowSpec::new(30, 20).unwrap();
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("ingest", format!("{workers}w")),
            &batches,
            |b, batches| b.iter(|| run_multi_feed_prepared(batches, workers, window).1),
        );
    }
    group.finish();
}

/// Serial single-feed ingestion of the classed deployment, per maintainer.
fn ingest_serial(feeds: &[CameraFeed], window: WindowSpec, kind: MaintainerKind) -> u64 {
    let mut matches = 0u64;
    for feed in feeds {
        let mut engine =
            TemporalVideoQueryEngine::builder(EngineConfig::new(window).with_maintainer(kind))
                .with_query_text("car >= 2 AND person >= 1")
                .expect("query parses")
                .with_query_text("car >= 3")
                .expect("query parses")
                .build()
                .expect("engine builds");
        for frame in &feed.frames {
            matches += engine
                .observe(frame)
                .expect("frames in order")
                .matches
                .len() as u64;
        }
    }
    matches
}

fn bench_classed_per_maintainer(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_feed");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));

    let feeds = multi_feed_deployment(4, Scale::Quick);
    let window = WindowSpec::new(30, 20).unwrap();
    for kind in MaintainerKind::PRODUCTION {
        group.bench_with_input(
            BenchmarkId::new("classed", kind.name()),
            &feeds,
            |b, feeds| b.iter(|| ingest_serial(feeds, window, kind)),
        );
    }
    group.finish();
}

/// Per-maintainer ingestion of the stable-scene deployment (recurring frame
/// sets, long-lived co-occurrence). The SSG row is the headline micro-bench
/// for the interned state-space: with recurring sets, every hash, equality
/// test and intersection is answered by handle.
fn bench_stable_scene(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_feed");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));

    let feeds = stable_scene(4, 600);
    let window = WindowSpec::new(60, 40).unwrap();
    // NAIVE is back in the row since its result collection went incremental
    // (group tracking): still far behind MFS/SSG — its state table is the
    // intersection closure and grows into the tens of thousands here, which
    // is the paper's point — but bounded by state-table work rather than
    // per-frame frame-set hashing, so it fits the smoke budget.
    for kind in MaintainerKind::PRODUCTION {
        group.bench_with_input(
            BenchmarkId::new("stable", kind.name()),
            &feeds,
            |b, feeds| b.iter(|| ingest_serial(feeds, window, kind)),
        );
    }
    group.finish();
}

/// The skewed grid per scheduler configuration: static sharding (the hot
/// cameras serialise on one worker) vs. work-stealing rebalancing.
fn bench_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_feed");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));

    let grid = skewed_grid(&skew_profile(Scale::Quick));
    let window = skew_window(Scale::Quick);
    let batches: Vec<Vec<FeedFrame>> = interleave(&grid, grid.len() * 3)
        .into_iter()
        .map(|batch| batch.into_iter().map(FeedFrame::from).collect())
        .collect();
    for (label, workers, rebalance_interval) in [
        ("static_1w", 1usize, 0u64),
        ("static_4w", 4, 0),
        ("rebalance_4w", 4, 2),
    ] {
        group.bench_with_input(BenchmarkId::new("skewed", label), &batches, |b, batches| {
            b.iter(|| {
                let config = MultiFeedConfig::new(
                    EngineConfig::new(window).with_maintainer(MaintainerKind::Ssg),
                )
                .with_workers(workers)
                .with_rebalance_interval(rebalance_interval)
                .with_steal_threshold(1.25);
                let mut engine = MultiFeedEngine::builder(config)
                    .with_query_text("car >= 1 AND person >= 1")
                    .expect("query parses")
                    .with_query_text("car >= 2")
                    .expect("query parses")
                    .build()
                    .expect("engine builds");
                let mut matches = 0u64;
                for batch in batches {
                    matches += engine
                        .push_batch(batch)
                        .expect("batch is accepted")
                        .iter()
                        .map(|r| r.result.matches.len() as u64)
                        .sum::<u64>();
                }
                matches
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_multi_feed_scaling,
    bench_classed_per_maintainer,
    bench_stable_scene,
    bench_skewed
);
criterion_main!(benches);
