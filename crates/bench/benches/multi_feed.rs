//! Criterion micro-benchmark for the sharded multi-feed engine: a fixed
//! four-camera deployment ingested end-to-end, per worker-pool size. The
//! interesting read-out is how total ingestion time falls as workers are
//! added while the reported matches stay identical.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tvq_bench::experiments::{multi_feed_batches, multi_feed_deployment, run_multi_feed_prepared};
use tvq_bench::Scale;
use tvq_common::WindowSpec;

fn bench_multi_feed_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_feed");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));

    // Prepared once: the timed closure measures ingestion, not deployment
    // generation or frame interleaving/cloning.
    let batches = multi_feed_batches(&multi_feed_deployment(4, Scale::Quick));
    let window = WindowSpec::new(30, 20).unwrap();
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("ingest", format!("{workers}w")),
            &batches,
            |b, batches| b.iter(|| run_multi_feed_prepared(batches, workers, window).1),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multi_feed_scaling);
criterion_main!(benches);
