//! Measurement and reporting utilities shared by all experiments.

use std::time::{Duration, Instant};

use tvq_common::{VideoRelation, WindowSpec};
use tvq_core::{MaintainerKind, MaintenanceMetrics, SharedPruner};
use tvq_query::{evaluate_result_set, CnfEvaluator};

use crate::report::{json_requested, write_if_requested, MaintainerTiming, ScenarioReport};

/// Experiment scale: the paper's configuration or a reduced one for smoke
/// runs and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's parameters (full feeds, w = 300, d = 240).
    Paper,
    /// Reduced feeds and windows; finishes in seconds and preserves the
    /// qualitative comparison.
    Quick,
}

impl Scale {
    /// Parses command-line arguments (`--quick` selects [`Scale::Quick`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Scales a frame count.
    pub fn frames(&self, paper_frames: usize) -> usize {
        match self {
            Scale::Paper => paper_frames,
            Scale::Quick => (paper_frames / 6).max(120),
        }
    }

    /// Scales a window specification.
    pub fn window(&self, paper: WindowSpec) -> WindowSpec {
        match self {
            Scale::Paper => paper,
            Scale::Quick => {
                WindowSpec::new((paper.window() / 6).max(20), (paper.duration() / 6).max(10))
                    .expect("scaled window is valid")
            }
        }
    }
}

/// The shared `--json` tail of every `repro_*` binary: when the flag was
/// passed, builds the scenario report with `build` (starting from an empty
/// [`ScenarioReport`] for `scenario` at `scale`) and writes it to
/// `BENCH_<scenario>.json`, printing the destination. Without the flag this
/// is free — `build` never runs, so the instrumented measurements behind
/// the JSON payloads only execute when asked for.
pub fn emit_json_report(
    scenario: &str,
    scale: Scale,
    build: impl FnOnce(ScenarioReport) -> ScenarioReport,
) {
    if !json_requested() {
        return;
    }
    write_if_requested(&build(ScenarioReport::new(scenario, scale)));
}

/// One measured series: a method name and its `(x, seconds)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Method name (NAIVE, MFS, SSG, MFS_O, ...).
    pub method: String,
    /// `(x value, seconds)` points.
    pub points: Vec<(String, f64)>,
}

/// Times MCOS generation only (the measurement behind Figures 4-7): every
/// frame of the relation is pushed through a fresh maintainer of the given
/// kind and the total wall-clock time is returned.
pub fn time_mcos_generation(
    relation: &VideoRelation,
    spec: WindowSpec,
    kind: MaintainerKind,
) -> Duration {
    measure_mcos_generation(relation, spec, kind).duration
}

/// One instrumented ingestion run: wall-clock time plus the maintainer's
/// work counters, the raw material of the `--json` bench reports.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Wall-clock time of the ingestion loop.
    pub duration: Duration,
    /// Frames pushed through the maintainer.
    pub frames: u64,
    /// The maintainer's counters after the run.
    pub metrics: MaintenanceMetrics,
}

impl Measurement {
    /// Converts the measurement into a named [`MaintainerTiming`].
    pub fn into_timing(self, method: impl Into<String>) -> MaintainerTiming {
        MaintainerTiming {
            method: method.into(),
            seconds: self.duration.as_secs_f64(),
            frames: self.frames,
            metrics: self.metrics,
        }
    }
}

/// Instrumented variant of [`time_mcos_generation`]: also returns the frame
/// count and the maintainer's metrics (peak states, intersections, ...).
pub fn measure_mcos_generation(
    relation: &VideoRelation,
    spec: WindowSpec,
    kind: MaintainerKind,
) -> Measurement {
    let mut maintainer = kind.build(spec);
    let mut frames = 0u64;
    let start = Instant::now();
    for frame in relation.frames() {
        maintainer
            .advance(frame.fid, &frame.objects)
            .expect("frames arrive in order");
        frames += 1;
    }
    let duration = start.elapsed();
    Measurement {
        duration,
        frames,
        metrics: maintainer.metrics().clone(),
    }
}

/// Times MCOS generation plus CNF evaluation over the Result State Set of
/// every window (the measurement behind Figures 8 and 9). When a pruner is
/// supplied the maintainer runs in its `_O` variant (Section 5.3).
pub fn time_query_evaluation(
    relation: &VideoRelation,
    spec: WindowSpec,
    kind: MaintainerKind,
    evaluator: &CnfEvaluator,
    pruner: Option<SharedPruner>,
) -> Duration {
    measure_query_evaluation(relation, spec, kind, evaluator, pruner).duration
}

/// Instrumented variant of [`time_query_evaluation`]: also returns the frame
/// count and the maintainer's metrics.
pub fn measure_query_evaluation(
    relation: &VideoRelation,
    spec: WindowSpec,
    kind: MaintainerKind,
    evaluator: &CnfEvaluator,
    pruner: Option<SharedPruner>,
) -> Measurement {
    let mut maintainer = match pruner {
        Some(pruner) => kind.build_with_pruner(spec, pruner),
        None => kind.build(spec),
    };
    let classes = relation.object_classes();
    let mut frames = 0u64;
    let start = Instant::now();
    let mut matches = 0usize;
    for frame in relation.frames() {
        maintainer
            .advance(frame.fid, &frame.objects)
            .expect("frames arrive in order");
        matches += evaluate_result_set(evaluator, maintainer.results(), classes).len();
        frames += 1;
    }
    let duration = start.elapsed();
    std::hint::black_box(matches);
    Measurement {
        duration,
        frames,
        metrics: maintainer.metrics().clone(),
    }
}

/// Formats series as an aligned text table with one row per x value and one
/// column per method, mirroring the layout of the paper's figures.
pub fn format_table(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let xs: Vec<String> = series
        .first()
        .map(|s| s.points.iter().map(|(x, _)| x.clone()).collect())
        .unwrap_or_default();
    // Header.
    out.push_str(&format!("{x_label:>12}"));
    for s in series {
        out.push_str(&format!(" {:>12}", s.method));
    }
    out.push('\n');
    out.push_str(&"-".repeat(12 + 13 * series.len()));
    out.push('\n');
    for (row, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>12}"));
        for s in series {
            let value = s.points.get(row).map(|(_, v)| *v).unwrap_or(f64::NAN);
            out.push_str(&format!(" {value:>11.3}s"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_video::{generate, DatasetProfile};

    #[test]
    fn quick_scale_shrinks_parameters() {
        let scale = Scale::Quick;
        assert_eq!(scale.frames(1800), 300);
        let spec = scale.window(WindowSpec::paper_default());
        assert_eq!(spec.window(), 50);
        assert_eq!(spec.duration(), 40);
        assert_eq!(Scale::Paper.frames(1800), 1800);
    }

    #[test]
    fn timing_helpers_run_and_return_nonzero_durations() {
        let relation = generate(&DatasetProfile::v1().truncated(120), 1);
        let spec = WindowSpec::new(20, 12).unwrap();
        let d = time_mcos_generation(&relation, spec, MaintainerKind::Mfs);
        assert!(d > Duration::ZERO);
        let evaluator = CnfEvaluator::new(tvq_query::generate_workload(
            &tvq_query::WorkloadConfig::figure_8(5),
            1,
        ));
        let d = time_query_evaluation(&relation, spec, MaintainerKind::Ssg, &evaluator, None);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn table_formatting_is_aligned_and_complete() {
        let series = vec![
            Series {
                method: "NAIVE".into(),
                points: vec![("600".into(), 1.5), ("1200".into(), 3.0)],
            },
            Series {
                method: "SSG".into(),
                points: vec![("600".into(), 0.5), ("1200".into(), 1.0)],
            },
        ];
        let table = format_table("Figure X", "frames", &series);
        assert!(table.contains("Figure X"));
        assert!(table.contains("NAIVE"));
        assert!(table.contains("SSG"));
        assert!(table.contains("600"));
        assert!(table.contains("1.500s"));
        assert_eq!(table.lines().count(), 1 + 1 + 1 + 2);
    }
}
