//! One experiment per table/figure of the paper's evaluation section.
//!
//! Every function generates the required workload(s), measures the methods
//! the corresponding figure compares, and returns per-dataset [`Series`]
//! ready to be printed with [`format_table`]. Absolute times differ from the
//! paper (different language, hardware and — for the vision stage — a
//! simulator instead of GPUs); what must match is the *shape*: which method
//! wins on which dataset, and how the gap evolves with each parameter.

use std::sync::Arc;
use std::time::Instant;

use tvq_common::{DatasetStats, FeedId, VideoRelation, WindowSpec};
use tvq_core::{CompactionPolicy, MaintainerKind, MaintenanceMetrics};
use tvq_engine::{
    EngineConfig, FeedFrame, MultiFeedConfig, MultiFeedEngine, SchedulingStats,
    TemporalVideoQueryEngine,
};
use tvq_query::{generate_workload, CnfEvaluator, GeqOnlyPruner, WorkloadConfig};
use tvq_video::{
    generate, generate_with_id_reuse, interleave, long_churn_feed, skewed_grid, CameraFeed,
    ChurnProfile, DatasetProfile, SkewProfile,
};

use crate::harness::{
    format_table, measure_mcos_generation, measure_query_evaluation, time_mcos_generation,
    time_query_evaluation, Scale, Series,
};
use crate::report::MaintainerTiming;

/// Seed used by every experiment so that runs are reproducible.
pub const SEED: u64 = 20210614;

fn paper_window() -> WindowSpec {
    WindowSpec::paper_default()
}

fn profiles() -> Vec<DatasetProfile> {
    DatasetProfile::all()
}

fn mcos_methods() -> [MaintainerKind; 3] {
    [
        MaintainerKind::Naive,
        MaintainerKind::Mfs,
        MaintainerKind::Ssg,
    ]
}

/// **Table 6** — dataset statistics: the Table-6 target values versus the
/// statistics measured on the synthesised relation of each profile.
pub fn table6(scale: Scale) -> String {
    let mut out = String::from(
        "Table 6: dataset statistics (paper target vs. synthesised relation)\n\
         dataset |       frames |      objects |        Obj/F |      Occ/Obj |        F/Obj\n\
         --------+--------------+--------------+--------------+--------------+-------------\n",
    );
    for profile in profiles() {
        let profile = match scale {
            Scale::Paper => profile,
            Scale::Quick => profile.truncated(scale.frames(profile.frames)),
        };
        let target = profile.target_stats();
        let measured = DatasetStats::of(&generate(&profile, SEED));
        out.push_str(&format!(
            "{:7} | {:5} /{:5} | {:5} /{:5} | {:5.2} /{:5.2} | {:5.2} /{:5.2} | {:5.1} /{:5.1}\n",
            profile.name,
            target.frames,
            measured.frames,
            target.objects,
            measured.objects,
            target.objects_per_frame,
            measured.objects_per_frame,
            target.occlusions_per_object,
            measured.occlusions_per_object,
            target.frames_per_object,
            measured.frames_per_object,
        ));
    }
    out.push_str("          (paper / measured)\n");
    out
}

/// The frame counts swept on the x axis of Figure 4 for each dataset.
pub fn fig4_frame_counts(profile: &DatasetProfile) -> Vec<usize> {
    match profile.name {
        "V1" => vec![600, 1000, 1400, 1800],
        "V2" => vec![600, 1000, 1400, 1700],
        "D1" => vec![400, 600, 800, 1000, 1150],
        "D2" => vec![400, 600, 800, 1000, 1145],
        "M1" => vec![400, 600, 800, 1000, 1194],
        "M2" => vec![300, 450, 600, 750],
        _ => vec![profile.frames],
    }
}

/// **Figure 4** — MCOS generation time as the number of processed frames
/// grows (w = 300, d = 240), per dataset, for NAIVE/MFS/SSG.
pub fn fig4(scale: Scale) -> Vec<(String, Vec<Series>)> {
    let window = scale.window(paper_window());
    profiles()
        .into_iter()
        .map(|profile| {
            let relation = generate(&profile, SEED);
            let series = mcos_methods()
                .iter()
                .map(|&kind| Series {
                    method: kind.name().to_owned(),
                    points: fig4_frame_counts(&profile)
                        .into_iter()
                        .map(|frames| {
                            let frames = scale.frames(frames);
                            let truncated = relation.truncated(frames);
                            let elapsed = time_mcos_generation(&truncated, window, kind);
                            (frames.to_string(), elapsed.as_secs_f64())
                        })
                        .collect(),
                })
                .collect();
            (profile.name.to_owned(), series)
        })
        .collect()
}

/// **Figure 5** — MCOS generation time as the duration threshold `d` varies
/// (w = 300, d ∈ {180, 210, 240, 270}).
pub fn fig5(scale: Scale) -> Vec<(String, Vec<Series>)> {
    sweep_window_parameter(scale, &[180, 210, 240, 270], |window, d, scale| {
        scale.window(WindowSpec::new(window.window(), d).expect("duration <= window"))
    })
}

/// **Figure 6** — MCOS generation time as the window size `w` varies
/// (d = 240, w ∈ {300, 400, 500, 600}).
pub fn fig6(scale: Scale) -> Vec<(String, Vec<Series>)> {
    sweep_window_parameter(scale, &[300, 400, 500, 600], |window, w, scale| {
        scale.window(WindowSpec::new(w, window.duration()).expect("duration <= window"))
    })
}

fn sweep_window_parameter(
    scale: Scale,
    xs: &[usize],
    make_spec: impl Fn(WindowSpec, usize, Scale) -> WindowSpec,
) -> Vec<(String, Vec<Series>)> {
    let base = paper_window();
    profiles()
        .into_iter()
        .map(|profile| {
            let frames = scale.frames(profile.frames);
            let relation = generate(&profile, SEED).truncated(frames);
            let series = mcos_methods()
                .iter()
                .map(|&kind| Series {
                    method: kind.name().to_owned(),
                    points: xs
                        .iter()
                        .map(|&x| {
                            let spec = make_spec(base, x, scale);
                            let elapsed = time_mcos_generation(&relation, spec, kind);
                            (x.to_string(), elapsed.as_secs_f64())
                        })
                        .collect(),
                })
                .collect();
            (profile.name.to_owned(), series)
        })
        .collect()
}

/// **Figure 7** — MCOS generation time as the occlusion (id reuse) parameter
/// `po` varies from 0 to 3 (w = 300, d = 240).
pub fn fig7(scale: Scale) -> Vec<(String, Vec<Series>)> {
    let window = scale.window(paper_window());
    profiles()
        .into_iter()
        .map(|profile| {
            let frames = scale.frames(profile.frames);
            let profile = profile.truncated(frames);
            let relations: Vec<(u32, VideoRelation)> = (0..=3u32)
                .map(|po| (po, generate_with_id_reuse(&profile, po, SEED)))
                .collect();
            let series = mcos_methods()
                .iter()
                .map(|&kind| Series {
                    method: kind.name().to_owned(),
                    points: relations
                        .iter()
                        .map(|(po, relation)| {
                            let elapsed = time_mcos_generation(relation, window, kind);
                            (po.to_string(), elapsed.as_secs_f64())
                        })
                        .collect(),
                })
                .collect();
            (profile.name.to_owned(), series)
        })
        .collect()
}

/// **Figure 8** — total time (MCOS generation + query evaluation) as the
/// number of registered queries varies from 10 to 50, on V1 (synthetic) and
/// M2 (real), for NAIVE/MFS/SSG.
pub fn fig8(scale: Scale) -> Vec<(String, Vec<Series>)> {
    let window = scale.window(paper_window());
    [DatasetProfile::v1(), DatasetProfile::m2()]
        .into_iter()
        .map(|profile| {
            let frames = scale.frames(profile.frames);
            let relation = generate(&profile, SEED).truncated(frames);
            let series = mcos_methods()
                .iter()
                .map(|&kind| Series {
                    method: kind.name().to_owned(),
                    points: [10usize, 20, 30, 40, 50]
                        .iter()
                        .map(|&n| {
                            let workload = generate_workload(&WorkloadConfig::figure_8(n), SEED);
                            let evaluator = CnfEvaluator::new(workload);
                            let elapsed =
                                time_query_evaluation(&relation, window, kind, &evaluator, None);
                            (n.to_string(), elapsed.as_secs_f64())
                        })
                        .collect(),
                })
                .collect();
            (profile.name.to_owned(), series)
        })
        .collect()
}

/// The five method variants compared in Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig9Method {
    /// NAIVE with CNFEvalE evaluation only.
    NaiveE,
    /// MFS with CNFEvalE evaluation only.
    MfsE,
    /// SSG with CNFEvalE evaluation only.
    SsgE,
    /// MFS with the Section 5.3 pruning strategy.
    MfsO,
    /// SSG with the Section 5.3 pruning strategy.
    SsgO,
}

impl Fig9Method {
    /// All five variants in the paper's legend order.
    pub const ALL: [Fig9Method; 5] = [
        Fig9Method::NaiveE,
        Fig9Method::MfsE,
        Fig9Method::SsgE,
        Fig9Method::MfsO,
        Fig9Method::SsgO,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Fig9Method::NaiveE => "NAIVE_E",
            Fig9Method::MfsE => "MFS_E",
            Fig9Method::SsgE => "SSG_E",
            Fig9Method::MfsO => "MFS_O",
            Fig9Method::SsgO => "SSG_O",
        }
    }

    fn kind(&self) -> MaintainerKind {
        match self {
            Fig9Method::NaiveE => MaintainerKind::Naive,
            Fig9Method::MfsE | Fig9Method::MfsO => MaintainerKind::Mfs,
            Fig9Method::SsgE | Fig9Method::SsgO => MaintainerKind::Ssg,
        }
    }

    fn pruned(&self) -> bool {
        matches!(self, Fig9Method::MfsO | Fig9Method::SsgO)
    }
}

/// **Figure 9** — total time with 100 `>=`-only queries as the smallest
/// threshold `n_min` varies from 1 to 9, on the real datasets (D1, D2, M1,
/// M2), comparing the `_E` variants with the pruning `_O` variants.
pub fn fig9(scale: Scale) -> Vec<(String, Vec<Series>)> {
    let window = scale.window(paper_window());
    [
        DatasetProfile::d1(),
        DatasetProfile::d2(),
        DatasetProfile::m1(),
        DatasetProfile::m2(),
    ]
    .into_iter()
    .map(|profile| {
        let frames = scale.frames(profile.frames);
        let relation = generate(&profile, SEED).truncated(frames);
        let classes = Arc::new(relation.object_classes().clone());
        let series = Fig9Method::ALL
            .iter()
            .map(|method| Series {
                method: method.name().to_owned(),
                points: [1u32, 3, 5, 7, 9]
                    .iter()
                    .map(|&n_min| {
                        let workload = generate_workload(&WorkloadConfig::figure_9(n_min), SEED);
                        let evaluator = Arc::new(CnfEvaluator::new(workload));
                        let pruner = if method.pruned() {
                            GeqOnlyPruner::shared(Arc::clone(&evaluator), Arc::clone(&classes))
                        } else {
                            None
                        };
                        let elapsed = time_query_evaluation(
                            &relation,
                            window,
                            method.kind(),
                            &evaluator,
                            pruner,
                        );
                        (n_min.to_string(), elapsed.as_secs_f64())
                    })
                    .collect(),
            })
            .collect();
        (profile.name.to_owned(), series)
    })
    .collect()
}

/// **Figure 10** — end-to-end average time per query (50 queries) for each
/// dataset and method. The paper's numbers include GPU object detection and
/// tracking; ours cover the query-processing pipeline over the synthesised
/// relation (the vision stage is a simulator), so only the relative ordering
/// of NAIVE/MFS/SSG is comparable.
pub fn fig10(scale: Scale) -> Vec<Series> {
    let window = scale.window(paper_window());
    let num_queries = 50;
    let mut series: Vec<Series> = mcos_methods()
        .iter()
        .map(|&kind| Series {
            method: kind.name().to_owned(),
            points: Vec::new(),
        })
        .collect();
    for profile in profiles() {
        let frames = scale.frames(profile.frames);
        let relation = generate(&profile, SEED).truncated(frames);
        let workload = generate_workload(&WorkloadConfig::figure_8(num_queries), SEED);
        let evaluator = CnfEvaluator::new(workload);
        for (idx, &kind) in mcos_methods().iter().enumerate() {
            let elapsed = time_query_evaluation(&relation, window, kind, &evaluator, None);
            series[idx].points.push((
                profile.name.to_owned(),
                elapsed.as_secs_f64() / num_queries as f64,
            ));
        }
    }
    series
}

/// Instrumented per-maintainer summary shared by the single-feed `repro_*`
/// binaries' `--json` reports: every production maintainer ingests the V1
/// (sparse) and M2 (dense) classed feeds at the given scale, once for MCOS
/// generation alone and once with a 20-query CNF workload evaluated per
/// frame, and reports throughput plus work counters.
pub fn instrumented_summary(scale: Scale) -> Vec<MaintainerTiming> {
    let window = scale.window(paper_window());
    let workload = generate_workload(&WorkloadConfig::figure_8(20), SEED);
    let evaluator = CnfEvaluator::new(workload);
    let mut timings = Vec::new();
    for profile in [DatasetProfile::v1(), DatasetProfile::m2()] {
        let frames = scale.frames(profile.frames);
        let relation = generate(&profile, SEED).truncated(frames);
        for kind in mcos_methods() {
            let mcos = measure_mcos_generation(&relation, window, kind);
            timings.push(mcos.into_timing(format!("{}/{}/mcos", kind.name(), profile.name)));
            let eval = measure_query_evaluation(&relation, window, kind, &evaluator, None);
            timings.push(eval.into_timing(format!("{}/{}/eval", kind.name(), profile.name)));
        }
    }
    timings
}

/// Batch size used by the multi-feed scaling experiment.
pub const MULTI_FEED_BATCH: usize = 64;

/// Builds the heterogeneous camera deployment the multi-feed experiment
/// runs on: `feeds` cameras cycling through the paper's dataset profiles,
/// truncated per scale.
pub fn multi_feed_deployment(feeds: usize, scale: Scale) -> Vec<CameraFeed> {
    let all = profiles();
    let deployment: Vec<DatasetProfile> = (0..feeds)
        .map(|i| {
            let profile = &all[i % all.len()];
            profile.truncated(scale.frames(profile.frames).min(300))
        })
        .collect();
    tvq_video::generate_feeds(&deployment, SEED)
}

/// Interleaves a deployment into the round-robin `FeedFrame` batches the
/// multi-feed engine ingests. Split out so benchmarks can prepare batches
/// once, outside the timed section.
pub fn multi_feed_batches(feeds: &[CameraFeed]) -> Vec<Vec<FeedFrame>> {
    interleave(feeds, MULTI_FEED_BATCH)
        .into_iter()
        .map(|batch| batch.into_iter().map(FeedFrame::from).collect())
        .collect()
}

/// Ingests pre-built batches through a fresh sharded engine and returns the
/// wall-clock seconds spent inside the `push_batch` loop plus the total
/// number of matches (to keep the work honest). Engine construction and
/// batch preparation are excluded from the measurement.
pub fn run_multi_feed_prepared(
    batches: &[Vec<FeedFrame>],
    workers: usize,
    window: WindowSpec,
) -> (f64, u64) {
    let mut engine = build_multi_feed_engine(workers, window, MaintainerKind::Ssg);
    let (duration, matches) = ingest_batches(&mut engine, batches);
    (duration.as_secs_f64(), matches)
}

/// Builds the sharded engine all multi-feed measurements run on.
fn build_multi_feed_engine(
    workers: usize,
    window: WindowSpec,
    kind: MaintainerKind,
) -> MultiFeedEngine {
    let config =
        MultiFeedConfig::new(EngineConfig::new(window).with_maintainer(kind)).with_workers(workers);
    MultiFeedEngine::builder(config)
        .with_query_text("car >= 2 AND person >= 1")
        .expect("query parses")
        .with_query_text("car >= 3")
        .expect("query parses")
        .build()
        .expect("engine builds")
}

/// The timed ingestion loop shared by the bench path (which stops here) and
/// the instrumented path (which additionally collects the report).
fn ingest_batches(
    engine: &mut MultiFeedEngine,
    batches: &[Vec<FeedFrame>],
) -> (std::time::Duration, u64) {
    let start = Instant::now();
    let mut matches = 0u64;
    for batch in batches {
        let results = engine.push_batch(batch).expect("batch is accepted");
        matches += results
            .iter()
            .map(|r| r.result.matches.len() as u64)
            .sum::<u64>();
    }
    (start.elapsed(), matches)
}

/// One instrumented multi-feed ingestion run: the shared
/// [`Measurement`](crate::harness::Measurement)
/// (time, frames, merged metrics — one conversion path to
/// [`MaintainerTiming`]) plus the total match count that keeps the work
/// honest.
#[derive(Debug, Clone)]
pub struct MultiFeedMeasurement {
    /// Timing, frame count and merged per-feed maintenance metrics.
    pub measurement: crate::harness::Measurement,
    /// Total query matches across all frames.
    pub matches: u64,
}

impl MultiFeedMeasurement {
    /// Wall-clock seconds spent inside the `push_batch` loop.
    pub fn seconds(&self) -> f64 {
        self.measurement.duration.as_secs_f64()
    }

    /// Converts the measurement into a named [`MaintainerTiming`].
    pub fn into_timing(self, method: impl Into<String>) -> MaintainerTiming {
        self.measurement.into_timing(method)
    }
}

/// Ingests pre-built batches through a fresh sharded engine using the given
/// MCOS maintainer and returns the instrumented measurement (time, matches,
/// frames and merged metrics). Engine construction and batch preparation are
/// excluded from the timed section; the final [`MultiFeedEngine::report`]
/// collection happens after timing stops.
pub fn measure_multi_feed(
    batches: &[Vec<FeedFrame>],
    workers: usize,
    window: WindowSpec,
    kind: MaintainerKind,
) -> MultiFeedMeasurement {
    let mut engine = build_multi_feed_engine(workers, window, kind);
    let (duration, matches) = ingest_batches(&mut engine, batches);
    let report = engine.report().expect("report is collected");
    MultiFeedMeasurement {
        measurement: crate::harness::Measurement {
            duration,
            frames: report.total_frames(),
            metrics: report.metrics,
        },
        matches,
    }
}

/// A stable surveillance scene: per camera, 24 tracked objects (alternating
/// car/person classes) that all co-occur, with a rolling occlusion hiding
/// one object for a stretch of frames at a time. Frame object sets repeat
/// for long runs — the workload sliding-window MCOS maintenance is designed
/// for, and the one where the interner's memoization pays most.
pub fn stable_scene(feeds: u32, frames: u64) -> Vec<CameraFeed> {
    const OBJECTS: u32 = 24;
    (0..feeds)
        .map(|f| CameraFeed {
            feed: tvq_common::FeedId(f),
            frames: (0..frames)
                .map(|i| {
                    let occluded = ((i / 40) % u64::from(OBJECTS)) as u32;
                    let detections = (0..OBJECTS)
                        .filter(|&obj| !(obj == occluded && i % 40 < 12))
                        .map(|obj| {
                            (
                                tvq_common::ObjectId(obj + f * 100),
                                tvq_common::ClassId((obj % 2) as u16),
                            )
                        })
                        .collect();
                    tvq_common::FrameObjects::new(tvq_common::FrameId(i), detections)
                })
                .collect(),
        })
        .collect()
}

/// Instrumented per-maintainer summary for the multi-feed scenario: a
/// four-camera deployment ingested per maintainer kind and worker-pool
/// size, plus the stable-scene workload for all three maintainers (NAIVE
/// rejoined once its result collection went incremental; it remains far
/// slower than MFS/SSG — its state table is the intersection closure).
pub fn instrumented_multifeed(scale: Scale) -> Vec<MaintainerTiming> {
    let window = scale.window(WindowSpec::new(60, 45).expect("static spec is valid"));
    let batches = multi_feed_batches(&multi_feed_deployment(4, scale));
    let mut timings = Vec::new();
    for kind in mcos_methods() {
        for workers in [1usize, 4] {
            let timing = measure_multi_feed(&batches, workers, window, kind);
            timings.push(timing.into_timing(format!("{}/4feeds/{workers}w", kind.name())));
        }
    }
    let stable = multi_feed_batches(&stable_scene(4, 600));
    let stable_window = WindowSpec::new(60, 40).expect("static spec is valid");
    for kind in mcos_methods() {
        let timing = measure_multi_feed(&stable, 1, stable_window, kind);
        timings.push(timing.into_timing(format!("{}/stable/1w", kind.name())));
    }
    timings
}

/// The window the skewed-grid scenario runs under.
pub fn skew_window(scale: Scale) -> WindowSpec {
    scale.window(WindowSpec::new(30, 20).expect("static spec is valid"))
}

/// The skewed-grid profile the scenario ingests: the [`SkewProfile`]
/// default (12 cameras, 2 hot colliding under mod-4 sharding, hotspot flip
/// at half-time), frame budget per scale.
pub fn skew_profile(scale: Scale) -> SkewProfile {
    SkewProfile::new(match scale {
        Scale::Paper => 600,
        Scale::Quick => 240,
    })
}

/// One skewed-grid ingestion run of one scheduler configuration.
#[derive(Debug, Clone)]
pub struct SkewRun {
    /// Configuration name: `static/1w`, `static/4w` or `rebalance/4w`.
    pub method: String,
    /// Worker-pool size of the run.
    pub workers: usize,
    /// Wall-clock seconds spent inside the `push_batch` loop.
    pub seconds: f64,
    /// Frames ingested.
    pub frames: u64,
    /// Total query matches (the honesty check across configurations).
    pub matches: u64,
    /// FNV-1a hash over every `(feed, frame, query matches)` result in
    /// ingestion order: two runs with equal transcripts produced
    /// bit-identical results. This is the scenario's determinism gate —
    /// scheduling may never change results.
    pub transcript: u64,
    /// The engine's worker-time telemetry (busy vs critical-path nanos).
    pub sched: SchedulingStats,
    /// Merged fleet metrics (includes the scheduler-owned counters).
    pub metrics: MaintenanceMetrics,
}

impl SkewRun {
    /// Converts the run into the shared [`MaintainerTiming`] JSON row.
    pub fn timing(&self) -> MaintainerTiming {
        MaintainerTiming {
            method: self.method.clone(),
            seconds: self.seconds,
            frames: self.frames,
            metrics: self.metrics.clone(),
        }
    }
}

fn fnv(hash: u64, value: u64) -> u64 {
    // FNV-1a over the value's little-endian bytes.
    let mut hash = hash;
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Ingests the skewed camera grid through three scheduler configurations —
/// one worker (the serial baseline), four static workers (the hot cameras
/// collide on one of them by construction), and four workers with
/// work-stealing rebalancing — and returns the instrumented runs. All three
/// must produce identical transcripts; the rebalanced run is the only one
/// whose schedule can spread the hot cameras.
pub fn skew(scale: Scale) -> Vec<SkewRun> {
    let window = skew_window(scale);
    let grid = skewed_grid(&skew_profile(scale));
    // Three frames per camera per batch: big enough to amortise channel
    // traffic, small enough that the load EWMA tracks the hotspot flip
    // within a few batches.
    let batches: Vec<Vec<FeedFrame>> = interleave(&grid, grid.len() * 3)
        .into_iter()
        .map(|batch| batch.into_iter().map(FeedFrame::from).collect())
        .collect();
    [
        ("static/1w", 1usize, 0u64),
        ("static/4w", 4, 0),
        ("rebalance/4w", 4, 2),
    ]
    .into_iter()
    .map(|(method, workers, rebalance_interval)| {
        let config =
            MultiFeedConfig::new(EngineConfig::new(window).with_maintainer(MaintainerKind::Ssg))
                .with_workers(workers)
                .with_rebalance_interval(rebalance_interval)
                .with_steal_threshold(1.25);
        let mut engine = MultiFeedEngine::builder(config)
            .with_query_text("car >= 1 AND person >= 1")
            .expect("query parses")
            .with_query_text("car >= 2")
            .expect("query parses")
            .build()
            .expect("engine builds");
        let start = Instant::now();
        let mut matches = 0u64;
        let mut transcript = 0xcbf2_9ce4_8422_2325u64;
        for batch in &batches {
            for result in engine.push_batch(batch).expect("batch is accepted") {
                matches += result.result.matches.len() as u64;
                transcript = fnv(transcript, u64::from(result.feed.raw()));
                transcript = fnv(transcript, result.result.frame.0);
                transcript = fnv(transcript, result.result.matches.len() as u64);
                for m in &result.result.matches {
                    transcript = fnv(transcript, u64::from(m.query.0));
                }
            }
        }
        let seconds = start.elapsed().as_secs_f64();
        let report = engine.report().expect("report is collected");
        SkewRun {
            method: method.to_owned(),
            workers,
            seconds,
            frames: report.total_frames(),
            matches,
            transcript,
            sched: engine.scheduling_stats(),
            metrics: report.metrics,
        }
    })
    .collect()
}

/// The gate verdict over a [`skew`] run set. The determinism and
/// schedule-quality gates are machine-independent (identical transcripts;
/// worker-time critical path); the wall-clock gate only engages when the
/// machine actually has enough cores to show a wall-clock win.
#[derive(Debug, Clone)]
pub struct SkewVerdict {
    /// Every configuration produced bit-identical results.
    pub identical_transcripts: bool,
    /// Schedule parallelism (busy / critical-path time) of the rebalanced
    /// 4-worker run. ≥ 1.5 required: the scheduler must spread the hot
    /// cameras well enough that the schedule itself admits the speedup.
    pub rebalance_parallelism: f64,
    /// Schedule parallelism of the static 4-worker run (the colliding hot
    /// cameras serialise it toward 1 — reported for contrast).
    pub static4_parallelism: f64,
    /// The rebalanced schedule's critical path is shorter than the static
    /// 4-worker one: rebalancing beats static sharding in worker time.
    pub rebalance_beats_static: bool,
    /// Wall-clock speedup of the rebalanced 4-worker run over the 1-worker
    /// baseline (only meaningful with ≥ 4 cores).
    pub wall_clock_speedup: f64,
    /// Cores the machine offers (`std::thread::available_parallelism`).
    pub cores: usize,
}

impl SkewVerdict {
    /// Whether the wall-clock gate participates in [`Self::passes`] on this
    /// machine: with fewer than 4 cores a 4-worker pool cannot show a
    /// wall-clock win no matter how good the schedule is, so the gate falls
    /// back to the schedule-parallelism criterion alone.
    pub fn wall_clock_gate_active(&self) -> bool {
        self.cores >= 4
    }

    /// The CI gate: identical results, a rebalanced schedule that admits
    /// ≥ 1.5× parallelism and beats static sharding in worker time, and —
    /// on machines with enough cores — a ≥ 1.5× wall-clock win over the
    /// serial baseline.
    pub fn passes(&self) -> bool {
        self.identical_transcripts
            && self.rebalance_parallelism >= 1.5
            && self.rebalance_beats_static
            && (!self.wall_clock_gate_active() || self.wall_clock_speedup >= 1.5)
    }
}

/// Computes the [`SkewVerdict`] for a [`skew`] run set.
pub fn skew_verdict(runs: &[SkewRun]) -> SkewVerdict {
    let find = |method: &str| {
        runs.iter()
            .find(|run| run.method == method)
            .unwrap_or_else(|| panic!("skew run set misses {method}"))
    };
    let static1 = find("static/1w");
    let static4 = find("static/4w");
    let rebalance = find("rebalance/4w");
    SkewVerdict {
        identical_transcripts: runs.iter().all(|run| run.transcript == static1.transcript),
        rebalance_parallelism: rebalance.sched.schedule_parallelism(),
        static4_parallelism: static4.sched.schedule_parallelism(),
        rebalance_beats_static: rebalance.sched.critical_path_nanos
            < static4.sched.critical_path_nanos,
        wall_clock_speedup: static1.seconds / rebalance.seconds.max(f64::EPSILON),
        cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// One sampled point of a long-churn run's memory trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSample {
    /// Frame index the sample was taken after.
    pub frame: u64,
    /// Distinct sets in the interner arena at that frame.
    pub interned_sets: u64,
    /// Interner arena bytes at that frame.
    pub arena_bytes: u64,
    /// Bitmap + universe bytes at that frame.
    pub bitmap_bytes: u64,
    /// Compaction epochs run so far.
    pub compactions: u64,
}

/// One instrumented long-churn ingestion run.
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// `"<METHOD>/on"` or `"<METHOD>/off"` (compaction enabled/disabled).
    pub method: String,
    /// Wall-clock seconds spent in the ingestion loop.
    pub seconds: f64,
    /// Frames ingested.
    pub frames: u64,
    /// The maintainer's counters after the run.
    pub metrics: MaintenanceMetrics,
    /// Sampled memory trajectory (~100 evenly spaced points).
    pub trajectory: Vec<ChurnSample>,
    /// Largest `arena_bytes` observed at any frame.
    pub peak_arena_bytes: u64,
    /// Largest `interned_sets` observed at any frame.
    pub peak_interned_sets: u64,
    /// `arena_bytes` on the frame *before* the first compaction epoch ran —
    /// the arena ceiling the policy triggered at. `None` when the run never
    /// compacted. The CI gate bounds `peak_arena_bytes` against twice this.
    pub arena_bytes_at_first_compaction: Option<u64>,
}

impl ChurnRun {
    /// Converts the run into a [`MaintainerTiming`] row for the report.
    pub fn timing(&self) -> MaintainerTiming {
        MaintainerTiming {
            method: self.method.clone(),
            seconds: self.seconds,
            frames: self.frames,
            metrics: self.metrics.clone(),
        }
    }

    /// The CI gate (see `repro_long_churn --gate`): with compaction on,
    /// peak arena bytes must stay within `2 ×` the ceiling the first
    /// compaction epoch triggered at — i.e. the arena plateaus instead of
    /// growing monotonically. Runs that never compacted fail the gate.
    pub fn passes_arena_gate(&self) -> bool {
        match self.arena_bytes_at_first_compaction {
            Some(first) => self.peak_arena_bytes <= first.saturating_mul(2),
            None => false,
        }
    }
}

/// The window every long-churn run uses (smaller than the paper default:
/// the workload's point is object turnover, not window stress).
pub fn long_churn_window() -> WindowSpec {
    WindowSpec::new(60, 40).expect("static spec is valid")
}

/// The compaction policy the `/on` runs use: checked every 32 frames,
/// compact once less than half of an at-least-512-entry arena is live —
/// tight enough to produce several epochs even at `--quick` scale.
pub fn long_churn_policy() -> CompactionPolicy {
    CompactionPolicy {
        check_interval: 32,
        max_live_ratio: 0.5,
        min_interned: 512,
    }
}

/// **Long churn** — hours-scale object turnover compressed into a bounded
/// frame budget (see [`tvq_video::churn`]): one camera, a rolling
/// population with a fresh object id every few frames, ingested end-to-end
/// (classed queries evaluated per frame) once with compaction off and once
/// with it on, for MFS and SSG. The interesting read-outs are sustained
/// frames/sec and the `interned_sets`/`arena_bytes` trajectory: monotone
/// growth with compaction off, a plateau with it on.
pub fn long_churn(scale: Scale) -> Vec<ChurnRun> {
    let frames = match scale {
        Scale::Paper => 10_000,
        Scale::Quick => 2_400,
    };
    let profile = ChurnProfile::new(frames);
    let feed = long_churn_feed(FeedId(0), &profile);
    let mut runs = Vec::new();
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        for compaction in [None, Some(long_churn_policy())] {
            let label = format!(
                "{}/{}",
                kind.name(),
                if compaction.is_some() { "on" } else { "off" }
            );
            runs.push(run_long_churn(&feed.frames, kind, compaction, label));
        }
    }
    runs
}

/// Builds the engine every churn/id-reuse/memo run uses: the shared
/// two-query workload over the 60/40 window, with the run's maintainer,
/// compaction and memo knobs applied.
fn build_churn_bench_engine(
    kind: MaintainerKind,
    compaction: Option<CompactionPolicy>,
    memo: Option<tvq_common::MemoConfig>,
) -> TemporalVideoQueryEngine {
    let mut config = EngineConfig::new(long_churn_window())
        .with_maintainer(kind)
        .with_compaction(compaction);
    if let Some(memo) = memo {
        config = config.with_memo(memo);
    }
    TemporalVideoQueryEngine::builder(config)
        .with_query_text("car >= 2 AND person >= 1")
        .expect("query parses")
        .with_query_text("car >= 3")
        .expect("query parses")
        .build()
        .expect("engine builds")
}

fn run_long_churn(
    frames: &[tvq_common::FrameObjects],
    kind: MaintainerKind,
    compaction: Option<CompactionPolicy>,
    method: String,
) -> ChurnRun {
    let mut engine = build_churn_bench_engine(kind, compaction, None);

    let sample_every = (frames.len() as u64 / 100).max(1);
    let mut trajectory = Vec::with_capacity(128);
    let mut peak_arena = 0u64;
    let mut peak_interned = 0u64;
    let mut prev_arena = 0u64;
    let mut first_compaction_ceiling = None;
    let mut matches = 0u64;
    let start = Instant::now();
    for (index, frame) in frames.iter().enumerate() {
        matches += engine
            .observe(frame)
            .expect("frames in order")
            .matches
            .len() as u64;
        // Borrowed maintainer counters: the per-frame sampling stays free
        // of the lock + clone the full `metrics()` accessor pays.
        let metrics = engine.maintainer_metrics();
        peak_arena = peak_arena.max(metrics.arena_bytes);
        peak_interned = peak_interned.max(metrics.interned_sets);
        if first_compaction_ceiling.is_none() && metrics.compactions > 0 {
            first_compaction_ceiling = Some(prev_arena.max(metrics.arena_bytes));
        }
        prev_arena = metrics.arena_bytes;
        let index = index as u64;
        if index.is_multiple_of(sample_every) || index + 1 == frames.len() as u64 {
            trajectory.push(ChurnSample {
                frame: frame.fid.raw(),
                interned_sets: metrics.interned_sets,
                arena_bytes: metrics.arena_bytes,
                bitmap_bytes: metrics.bitmap_bytes,
                compactions: metrics.compactions,
            });
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(matches);
    ChurnRun {
        method,
        seconds,
        frames: frames.len() as u64,
        metrics: engine.metrics(),
        trajectory,
        peak_arena_bytes: peak_arena,
        peak_interned_sets: peak_interned,
        arena_bytes_at_first_compaction: first_compaction_ceiling,
    }
}

/// One sampled point of an id-reuse run's engine-side memory trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdReuseSample {
    /// Frame index the sample was taken after.
    pub frame: u64,
    /// Internal ids the engine tracked at that frame.
    pub tracked_objects: u64,
    /// Class-store bytes at that frame.
    pub class_map_bytes: u64,
    /// Object-lifecycle bytes (bindings, tracking set, aliases).
    pub lifecycle_bytes: u64,
    /// Compaction (retirement) epochs run so far.
    pub compactions: u64,
    /// Objects retired so far.
    pub objects_retired: u64,
}

/// One instrumented id-reuse ingestion run.
#[derive(Debug, Clone)]
pub struct IdReuseRun {
    /// `"<METHOD>/on"` or `"<METHOD>/off"` (retirement enabled/disabled).
    pub method: String,
    /// Wall-clock seconds spent in the ingestion loop.
    pub seconds: f64,
    /// Frames ingested.
    pub frames: u64,
    /// The engine's counters after the run.
    pub metrics: MaintenanceMetrics,
    /// Sampled engine-side memory trajectory (~100 evenly spaced points).
    pub trajectory: Vec<IdReuseSample>,
    /// Largest `class_map_bytes + lifecycle_bytes` observed at any frame.
    pub peak_engine_bytes: u64,
    /// Largest `tracked_objects` observed at any frame.
    pub peak_tracked_objects: u64,
    /// Engine-side bytes on the frame the first retirement epoch ran —
    /// the ceiling the gate bounds the peak against. `None` when the run
    /// never retired.
    pub engine_bytes_at_first_retirement: Option<u64>,
}

impl IdReuseRun {
    /// Converts the run into a [`MaintainerTiming`] row for the report.
    pub fn timing(&self) -> MaintainerTiming {
        MaintainerTiming {
            method: self.method.clone(),
            seconds: self.seconds,
            frames: self.frames,
            metrics: self.metrics.clone(),
        }
    }

    /// The CI gate (see `repro_id_reuse --gate`): with retirement on, the
    /// engine-side footprint (class store + lifecycle maps) must plateau —
    /// peak within `2 ×` the first-retirement ceiling — and the run must
    /// span enough epochs (≥ 50) for the plateau to mean something. Runs
    /// that never retired fail.
    pub fn passes_engine_memory_gate(&self) -> bool {
        match self.engine_bytes_at_first_retirement {
            Some(first) => {
                self.metrics.compactions >= 50 && self.peak_engine_bytes <= first.saturating_mul(2)
            }
            None => false,
        }
    }
}

/// One memo-policy comparison run (NAIVE on the stable scene).
#[derive(Debug, Clone)]
pub struct MemoRun {
    /// `"fixed32k"` or `"adaptive"`.
    pub method: String,
    /// Wall-clock seconds spent in the ingestion loop.
    pub seconds: f64,
    /// Frames ingested.
    pub frames: u64,
    /// The engine's counters after the run (`intersection_cache_*` are the
    /// interesting ones).
    pub metrics: MaintenanceMetrics,
}

impl MemoRun {
    /// Memo hit rate over the run (0 when no intersections happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.metrics.intersection_cache_hits + self.metrics.intersection_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.metrics.intersection_cache_hits as f64 / total as f64
        }
    }

    /// Converts the run into a [`MaintainerTiming`] row for the report.
    pub fn timing(&self) -> MaintainerTiming {
        MaintainerTiming {
            method: format!("NAIVE/stable/{}", self.method),
            seconds: self.seconds,
            frames: self.frames,
            metrics: self.metrics.clone(),
        }
    }
}

/// The window every id-reuse run uses (matches the long-churn window).
pub fn id_reuse_window() -> WindowSpec {
    long_churn_window()
}

/// The retirement policy the `/on` runs use: checked every 16 frames and
/// triggered by any meaningful slack, so a quick-scale run still spans the
/// ≥ 50 epochs the gate demands.
pub fn id_reuse_policy() -> CompactionPolicy {
    CompactionPolicy {
        check_interval: 16,
        max_live_ratio: 0.9,
        min_interned: 64,
    }
}

/// **Id reuse** — tracker identifiers recycled across class boundaries
/// (see [`tvq_video::id_reuse`]), ingested end-to-end once with epoch
/// retirement off (compaction disabled — the append-history baseline whose
/// class store and lifecycle maps grow with every generation ever seen)
/// and once with it on, for MFS and SSG. The interesting read-outs are the
/// `tracked_objects` / engine-bytes trajectory — a plateau with retirement
/// versus monotone growth without — plus correct reuse semantics at full
/// speed (generation counts in the metrics).
pub fn id_reuse(scale: Scale) -> Vec<IdReuseRun> {
    let frames = match scale {
        Scale::Paper => 10_000,
        Scale::Quick => 2_400,
    };
    let profile = tvq_video::IdReuseProfile::new(frames);
    let feed = tvq_video::id_reuse_feed(FeedId(0), &profile);
    let mut runs = Vec::new();
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        for compaction in [None, Some(id_reuse_policy())] {
            let label = format!(
                "{}/{}",
                kind.name(),
                if compaction.is_some() { "on" } else { "off" }
            );
            runs.push(run_id_reuse(&feed.frames, kind, compaction, label));
        }
    }
    runs
}

fn run_id_reuse(
    frames: &[tvq_common::FrameObjects],
    kind: MaintainerKind,
    compaction: Option<CompactionPolicy>,
    method: String,
) -> IdReuseRun {
    let mut engine = build_churn_bench_engine(kind, compaction, None);

    let sample_every = (frames.len() as u64 / 100).max(1);
    let mut trajectory = Vec::with_capacity(128);
    let mut peak_bytes = 0u64;
    let mut peak_tracked = 0u64;
    let mut prev_bytes = 0u64;
    let mut first_retirement_ceiling = None;
    let mut matches = 0u64;
    let start = Instant::now();
    for (index, frame) in frames.iter().enumerate() {
        matches += engine
            .observe(frame)
            .expect("frames in order")
            .matches
            .len() as u64;
        let metrics = engine.metrics();
        let engine_bytes = metrics.class_map_bytes + metrics.lifecycle_bytes;
        peak_bytes = peak_bytes.max(engine_bytes);
        peak_tracked = peak_tracked.max(metrics.tracked_objects);
        if first_retirement_ceiling.is_none() && metrics.compactions > 0 {
            first_retirement_ceiling = Some(prev_bytes.max(engine_bytes));
        }
        prev_bytes = engine_bytes;
        let index = index as u64;
        if index.is_multiple_of(sample_every) || index + 1 == frames.len() as u64 {
            trajectory.push(IdReuseSample {
                frame: frame.fid.raw(),
                tracked_objects: metrics.tracked_objects,
                class_map_bytes: metrics.class_map_bytes,
                lifecycle_bytes: metrics.lifecycle_bytes,
                compactions: metrics.compactions,
                objects_retired: metrics.objects_retired,
            });
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(matches);
    IdReuseRun {
        method,
        seconds,
        frames: frames.len() as u64,
        metrics: engine.metrics(),
        trajectory,
        peak_engine_bytes: peak_bytes,
        peak_tracked_objects: peak_tracked,
        engine_bytes_at_first_retirement: first_retirement_ceiling,
    }
}

/// **Memo adaptivity** — NAIVE over the stable scene (the workload whose
/// live state count dwarfs any fixed memo): the pre-adaptive fixed
/// 32k-slot cache versus the adaptive policy. The gate demands the
/// adaptive run's hit rate beat the fixed baseline's.
///
/// The gated quantities (hits, misses, slot counts) are deterministic —
/// identical on every run — but the reported seconds are wall-clock, so
/// the two variants run as **three interleaved A/B pairs** on one core and
/// each reports its best round (never comparing timings taken minutes
/// apart).
pub fn id_reuse_memo_comparison() -> Vec<MemoRun> {
    const ROUNDS: usize = 3;
    let feed = &stable_scene(1, 600)[0];
    let variants = [
        ("fixed32k", tvq_common::MemoConfig::fixed(15)),
        ("adaptive", tvq_common::MemoConfig::adaptive()),
    ];
    let mut best: Vec<Option<MemoRun>> = vec![None, None];
    for _ in 0..ROUNDS {
        for (index, &(label, memo)) in variants.iter().enumerate() {
            let mut engine = build_churn_bench_engine(
                MaintainerKind::Naive,
                Some(CompactionPolicy::default_policy()),
                Some(memo),
            );
            let mut matches = 0u64;
            let start = Instant::now();
            for frame in &feed.frames {
                matches += engine
                    .observe(frame)
                    .expect("frames in order")
                    .matches
                    .len() as u64;
            }
            let seconds = start.elapsed().as_secs_f64();
            std::hint::black_box(matches);
            let run = MemoRun {
                method: label.to_owned(),
                seconds,
                frames: feed.frames.len() as u64,
                metrics: engine.metrics(),
            };
            match &mut best[index] {
                Some(incumbent) if incumbent.seconds <= run.seconds => {}
                slot => *slot = Some(run),
            }
        }
    }
    best.into_iter()
        .map(|run| run.expect("rounds ran"))
        .collect()
}

/// Convenience wrapper: [`multi_feed_batches`] + [`run_multi_feed_prepared`].
pub fn run_multi_feed(feeds: &[CameraFeed], workers: usize, window: WindowSpec) -> (f64, u64) {
    run_multi_feed_prepared(&multi_feed_batches(feeds), workers, window)
}

/// **Multi-feed scaling** — total ingestion time for N concurrent camera
/// feeds (cycling through the six dataset profiles) as the worker-pool size
/// grows. One series per pool size, one x value per deployment width. Going
/// beyond the paper: this measures the sharding axis the production system
/// scales along rather than a figure of the evaluation section.
pub fn multi_feed(scale: Scale) -> Vec<Series> {
    let window = scale.window(WindowSpec::new(60, 45).expect("static spec is valid"));
    let feed_counts: &[usize] = match scale {
        Scale::Paper => &[2, 4, 6, 12],
        Scale::Quick => &[2, 4, 6],
    };
    let worker_counts: &[usize] = &[1, 2, 4];
    let mut series: Vec<Series> = worker_counts
        .iter()
        .map(|workers| Series {
            method: format!("{workers}w"),
            points: Vec::new(),
        })
        .collect();
    // Each deployment is deterministic and worker-independent: generate it
    // (and its batches) once per feed count, not once per series point.
    for &feeds in feed_counts {
        let batches = multi_feed_batches(&multi_feed_deployment(feeds, scale));
        for (index, &workers) in worker_counts.iter().enumerate() {
            let (seconds, _) = run_multi_feed_prepared(&batches, workers, window);
            series[index].points.push((feeds.to_string(), seconds));
        }
    }
    series
}

/// Renders a per-dataset experiment as printable text.
pub fn render(title: &str, x_label: &str, results: &[(String, Vec<Series>)]) -> String {
    let mut out = String::new();
    for (dataset, series) in results {
        out.push_str(&format_table(
            &format!("{title} — dataset {dataset}"),
            x_label,
            series,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_frame_counts_end_at_the_dataset_length() {
        for profile in profiles() {
            let counts = fig4_frame_counts(&profile);
            assert_eq!(*counts.last().unwrap(), profile.frames);
            assert!(counts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn quick_scale_experiments_produce_complete_series() {
        let results = fig4(Scale::Quick);
        assert_eq!(results.len(), 6);
        for (dataset, series) in &results {
            assert_eq!(series.len(), 3, "{dataset}");
            for s in series {
                assert!(!s.points.is_empty());
                assert!(s.points.iter().all(|&(_, v)| v.is_finite() && v >= 0.0));
            }
        }
        let rendered = render("Figure 4", "frames", &results);
        assert!(rendered.contains("dataset V1"));
        assert!(rendered.contains("NAIVE"));
    }

    #[test]
    fn fig9_methods_cover_the_paper_legend() {
        let names: Vec<&str> = Fig9Method::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["NAIVE_E", "MFS_E", "SSG_E", "MFS_O", "SSG_O"]);
        assert!(Fig9Method::MfsO.pruned());
        assert!(!Fig9Method::SsgE.pruned());
    }

    #[test]
    fn multi_feed_scaling_is_complete_and_matches_are_worker_independent() {
        let deployment = multi_feed_deployment(4, Scale::Quick);
        assert_eq!(deployment.len(), 4);
        let window = WindowSpec::new(20, 12).unwrap();
        let (_, matches_1w) = run_multi_feed(&deployment, 1, window);
        let (_, matches_4w) = run_multi_feed(&deployment, 4, window);
        assert_eq!(matches_1w, matches_4w, "sharding changed the answers");
        let series = multi_feed(Scale::Quick);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.points.len(), 3, "{}", s.method);
            assert!(s.points.iter().all(|&(_, v)| v.is_finite() && v >= 0.0));
        }
    }

    #[test]
    fn table6_mentions_every_dataset() {
        let table = table6(Scale::Quick);
        for name in ["V1", "V2", "D1", "D2", "M1", "M2"] {
            assert!(table.contains(name), "missing {name} in {table}");
        }
    }
}
