//! Benchmark harness reproducing the paper's evaluation section.
//!
//! Every table and figure of Section 6 has a corresponding experiment in
//! [`experiments`] and a `repro_*` binary that prints the same rows/series
//! the paper reports:
//!
//! | Paper artefact | Experiment | Binary |
//! |----------------|------------|--------|
//! | Table 6 (dataset statistics) | [`experiments::table6`] | `repro_table6` |
//! | Figure 4 (time vs #frames) | [`experiments::fig4`] | `repro_fig4` |
//! | Figure 5 (time vs duration d) | [`experiments::fig5`] | `repro_fig5` |
//! | Figure 6 (time vs window w) | [`experiments::fig6`] | `repro_fig6` |
//! | Figure 7 (time vs occlusion po) | [`experiments::fig7`] | `repro_fig7` |
//! | Figure 8 (time vs #queries) | [`experiments::fig8`] | `repro_fig8` |
//! | Figure 9 (pruning vs n_min) | [`experiments::fig9`] | `repro_fig9` |
//! | Figure 10 (end-to-end per query) | [`experiments::fig10`] | `repro_fig10` |
//!
//! Beyond the paper, the multi-feed scaling scenario
//! ([`experiments::multi_feed`], binary `repro_multifeed`) measures sharded
//! ingestion of N concurrent camera feeds per worker-pool size.
//!
//! Binaries accept `--quick` to run a reduced-size configuration (shorter
//! feeds, smaller windows) that preserves the qualitative comparison while
//! finishing in seconds; the default configuration mirrors the paper's
//! parameters (w = 300, d = 240, full feed lengths). Passing `--json`
//! additionally writes a machine-readable `BENCH_<scenario>.json` report
//! (frames/sec, peak state counts, per-maintainer timings) — see [`report`].
//!
//! Criterion micro-benchmarks live under `benches/` and exercise the same
//! code paths on reduced inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{
    emit_json_report, format_table, measure_mcos_generation, measure_query_evaluation,
    time_mcos_generation, time_query_evaluation, Measurement, Scale, Series,
};
pub use report::{json_requested, write_if_requested, JsonValue, MaintainerTiming, ScenarioReport};
