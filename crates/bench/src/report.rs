//! Machine-readable benchmark reports.
//!
//! Every `repro_*` binary accepts a `--json` flag; when present, the binary
//! writes a `BENCH_<scenario>.json` file next to the working directory in
//! addition to its human-readable table. The file records the performance
//! trajectory the ROADMAP asks for: frames/second, peak state counts and
//! per-maintainer timings, plus the raw series behind the printed tables.
//!
//! The build environment has no crates.io access, so the JSON encoder is a
//! small hand-rolled value tree ([`JsonValue`]) rather than serde. Output is
//! deterministic (insertion-ordered objects) so diffs between committed
//! baselines stay readable.

use std::fmt::Write as _;
use std::path::PathBuf;

use tvq_core::MaintenanceMetrics;

use crate::harness::{Scale, Series};

/// A JSON value tree with deterministic (insertion-ordered) objects.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    Int(u64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One instrumented per-maintainer measurement: wall-clock ingestion time,
/// throughput and the work counters behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintainerTiming {
    /// Method name (NAIVE, MFS, SSG, ...).
    pub method: String,
    /// Wall-clock seconds spent ingesting the workload.
    pub seconds: f64,
    /// Frames ingested.
    pub frames: u64,
    /// The maintainer's work counters after the run.
    pub metrics: MaintenanceMetrics,
}

impl MaintainerTiming {
    /// Ingestion throughput in frames per second.
    pub fn frames_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.frames as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("method".into(), JsonValue::Str(self.method.clone())),
            ("seconds".into(), JsonValue::Num(self.seconds)),
            ("frames".into(), JsonValue::Int(self.frames)),
            (
                "frames_per_sec".into(),
                JsonValue::Num(self.frames_per_sec()),
            ),
            (
                "peak_live_states".into(),
                JsonValue::Int(self.metrics.peak_live_states),
            ),
            (
                "states_created".into(),
                JsonValue::Int(self.metrics.states_created),
            ),
            (
                "states_visited".into(),
                JsonValue::Int(self.metrics.states_visited),
            ),
            (
                "intersections".into(),
                JsonValue::Int(self.metrics.intersections),
            ),
            (
                "interned_sets".into(),
                JsonValue::Int(self.metrics.interned_sets),
            ),
            (
                "arena_bytes".into(),
                JsonValue::Int(self.metrics.arena_bytes),
            ),
            (
                "bitmap_bytes".into(),
                JsonValue::Int(self.metrics.bitmap_bytes),
            ),
            (
                "compactions".into(),
                JsonValue::Int(self.metrics.compactions),
            ),
            (
                "intersection_cache_hits".into(),
                JsonValue::Int(self.metrics.intersection_cache_hits),
            ),
            (
                "intersection_cache_misses".into(),
                JsonValue::Int(self.metrics.intersection_cache_misses),
            ),
            (
                "wal_records".into(),
                JsonValue::Int(self.metrics.wal_records),
            ),
            ("wal_bytes".into(), JsonValue::Int(self.metrics.wal_bytes)),
            (
                "snapshots_written".into(),
                JsonValue::Int(self.metrics.snapshots_written),
            ),
            (
                "snapshot_bytes".into(),
                JsonValue::Int(self.metrics.snapshot_bytes),
            ),
            ("fsyncs".into(), JsonValue::Int(self.metrics.fsyncs)),
            ("recoveries".into(), JsonValue::Int(self.metrics.recoveries)),
        ])
    }
}

/// The machine-readable result of one `repro_*` scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name; determines the output file `BENCH_<scenario>.json`.
    pub scenario: String,
    /// `"quick"` or `"paper"`.
    pub scale: String,
    /// Instrumented per-maintainer timings (frames/sec, peak states, ...).
    pub maintainers: Vec<MaintainerTiming>,
    /// The raw `(group, series)` data behind the printed tables; groups are
    /// dataset names for the per-dataset figures.
    pub series: Vec<(String, Vec<Series>)>,
    /// Scenario-specific sections appended verbatim to the JSON object
    /// (e.g. the long-churn memory trajectory and its CI gate inputs).
    pub extras: Vec<(String, JsonValue)>,
}

impl ScenarioReport {
    /// Creates a report for a scenario measured at `scale`.
    pub fn new(scenario: impl Into<String>, scale: Scale) -> Self {
        ScenarioReport {
            scenario: scenario.into(),
            scale: match scale {
                Scale::Paper => "paper".to_owned(),
                Scale::Quick => "quick".to_owned(),
            },
            maintainers: Vec::new(),
            series: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// Attaches instrumented per-maintainer timings.
    pub fn with_maintainers(mut self, maintainers: Vec<MaintainerTiming>) -> Self {
        self.maintainers = maintainers;
        self
    }

    /// Attaches per-dataset series groups (the per-figure table data).
    pub fn with_groups(mut self, groups: &[(String, Vec<Series>)]) -> Self {
        self.series.extend(groups.iter().cloned());
        self
    }

    /// Attaches one flat series group (figures without a dataset axis).
    pub fn with_series(mut self, group: impl Into<String>, series: &[Series]) -> Self {
        self.series.push((group.into(), series.to_vec()));
        self
    }

    /// Attaches a scenario-specific JSON section under `key`.
    pub fn with_extra(mut self, key: impl Into<String>, value: JsonValue) -> Self {
        self.extras.push((key.into(), value));
        self
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let series = self
            .series
            .iter()
            .flat_map(|(group, series)| {
                series.iter().map(move |s| {
                    JsonValue::Obj(vec![
                        ("group".into(), JsonValue::Str(group.clone())),
                        ("method".into(), JsonValue::Str(s.method.clone())),
                        (
                            "points".into(),
                            JsonValue::Arr(
                                s.points
                                    .iter()
                                    .map(|(x, seconds)| {
                                        JsonValue::Obj(vec![
                                            ("x".into(), JsonValue::Str(x.clone())),
                                            ("seconds".into(), JsonValue::Num(*seconds)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
            })
            .collect();
        let mut fields = vec![
            ("scenario".into(), JsonValue::Str(self.scenario.clone())),
            ("scale".into(), JsonValue::Str(self.scale.clone())),
            (
                "maintainers".into(),
                JsonValue::Arr(self.maintainers.iter().map(|m| m.to_json()).collect()),
            ),
            ("series".into(), JsonValue::Arr(series)),
        ];
        fields.extend(self.extras.iter().cloned());
        JsonValue::Obj(fields).render()
    }

    /// The output path: `BENCH_<scenario>.json` in the current directory.
    pub fn path(&self) -> PathBuf {
        PathBuf::from(format!("BENCH_{}.json", self.scenario))
    }

    /// Writes the report to [`ScenarioReport::path`] and returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        let mut body = self.to_json();
        body.push('\n');
        std::fs::write(&path, body)?;
        Ok(path)
    }
}

/// Whether the command line requested machine-readable output (`--json`).
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Writes `report` when `--json` was passed, printing the destination; the
/// shared tail of every `repro_*` main.
pub fn write_if_requested(report: &ScenarioReport) {
    if !json_requested() {
        return;
    }
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("failed to write {}: {error}", report.path().display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_specials() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Num(1.5).render(), "1.5");
        assert_eq!(JsonValue::Int(7).render(), "7");
    }

    #[test]
    fn scenario_report_renders_all_sections() {
        let timing = MaintainerTiming {
            method: "SSG".into(),
            seconds: 0.5,
            frames: 100,
            metrics: MaintenanceMetrics::new(),
        };
        assert!((timing.frames_per_sec() - 200.0).abs() < 1e-9);
        let report = ScenarioReport::new("unit", Scale::Quick)
            .with_maintainers(vec![timing])
            .with_series(
                "all",
                &[Series {
                    method: "SSG".into(),
                    points: vec![("4".into(), 0.25)],
                }],
            );
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for needle in [
            "\"scenario\":\"unit\"",
            "\"scale\":\"quick\"",
            "\"frames_per_sec\":200",
            "\"peak_live_states\":0",
            "\"group\":\"all\"",
            "\"x\":\"4\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(report.path(), PathBuf::from("BENCH_unit.json"));
    }

    #[test]
    fn zero_second_runs_report_zero_throughput() {
        let timing = MaintainerTiming {
            method: "MFS".into(),
            seconds: 0.0,
            frames: 10,
            metrics: MaintenanceMetrics::new(),
        };
        assert_eq!(timing.frames_per_sec(), 0.0);
    }
}
