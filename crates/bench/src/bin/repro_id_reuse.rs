//! Id-reuse scenario: tracker identifiers recycled across class boundaries,
//! ingested with epoch retirement off and on (MFS and SSG), plus the
//! adaptive-versus-fixed intersection-memo comparison on the NAIVE
//! stable-scene workload.
//!
//! Demonstrates the bounded-memory object lifecycle end to end: with
//! retirement on, the engine-side footprint (shared class store + lifecycle
//! maps) plateaus at the live window while the append-history baseline
//! grows with every object generation ever observed — and reuse semantics
//! stay correct throughout (a recycled id is a new object, never spliced
//! into an old generation's states).
//!
//! Flags: `--quick` for a reduced run, `--json` to also write
//! `BENCH_id_reuse.json` (per-run timings, the sampled engine-memory
//! trajectory, the gate inputs and the memo comparison), `--gate` to exit
//! non-zero unless (a) every retirement-enabled run keeps its peak
//! engine-side bytes within 2× the ceiling its first retirement epoch
//! triggered at, across ≥ 50 epochs, (b) every baseline run demonstrably
//! outgrows its retiring twin, and (c) the adaptive memo's hit rate beats
//! the fixed 32k baseline on the stable-scene workload.

use tvq_bench::experiments::{self, IdReuseRun, MemoRun};
use tvq_bench::{emit_json_report, JsonValue, Scale};

fn trajectory_json(run: &IdReuseRun) -> JsonValue {
    JsonValue::Arr(
        run.trajectory
            .iter()
            .map(|sample| {
                JsonValue::Obj(vec![
                    ("frame".into(), JsonValue::Int(sample.frame)),
                    (
                        "tracked_objects".into(),
                        JsonValue::Int(sample.tracked_objects),
                    ),
                    (
                        "class_map_bytes".into(),
                        JsonValue::Int(sample.class_map_bytes),
                    ),
                    (
                        "lifecycle_bytes".into(),
                        JsonValue::Int(sample.lifecycle_bytes),
                    ),
                    ("compactions".into(), JsonValue::Int(sample.compactions)),
                    (
                        "objects_retired".into(),
                        JsonValue::Int(sample.objects_retired),
                    ),
                ])
            })
            .collect(),
    )
}

fn gate_json(run: &IdReuseRun) -> JsonValue {
    JsonValue::Obj(vec![
        ("method".into(), JsonValue::Str(run.method.clone())),
        (
            "peak_engine_bytes".into(),
            JsonValue::Int(run.peak_engine_bytes),
        ),
        (
            "peak_tracked_objects".into(),
            JsonValue::Int(run.peak_tracked_objects),
        ),
        (
            "retirement_epochs".into(),
            JsonValue::Int(run.metrics.compactions),
        ),
        (
            "generations_started".into(),
            JsonValue::Int(run.metrics.generations_started),
        ),
        (
            "objects_retired".into(),
            JsonValue::Int(run.metrics.objects_retired),
        ),
        (
            "engine_bytes_at_first_retirement".into(),
            match run.engine_bytes_at_first_retirement {
                Some(bytes) => JsonValue::Int(bytes),
                None => JsonValue::Null,
            },
        ),
        (
            "passes_engine_memory_gate".into(),
            JsonValue::Bool(run.passes_engine_memory_gate()),
        ),
    ])
}

fn memo_json(run: &MemoRun) -> JsonValue {
    JsonValue::Obj(vec![
        ("method".into(), JsonValue::Str(run.method.clone())),
        (
            "hits".into(),
            JsonValue::Int(run.metrics.intersection_cache_hits),
        ),
        (
            "misses".into(),
            JsonValue::Int(run.metrics.intersection_cache_misses),
        ),
        (
            "resizes".into(),
            JsonValue::Int(run.metrics.intersection_cache_resizes),
        ),
        (
            "slots".into(),
            JsonValue::Int(run.metrics.intersection_cache_slots),
        ),
        ("hit_rate".into(), JsonValue::Num(run.hit_rate())),
        ("seconds".into(), JsonValue::Num(run.seconds)),
    ])
}

/// The baseline half of the gate: each `/off` run must demonstrably outgrow
/// its retiring `/on` twin (factor 2 — in practice it is far larger and
/// keeps growing with the feed length).
fn baseline_outgrows(runs: &[IdReuseRun]) -> Vec<(String, bool)> {
    let mut checks = Vec::new();
    for on in runs.iter().filter(|run| run.method.ends_with("/on")) {
        let base = on.method.trim_end_matches("/on");
        if let Some(off) = runs.iter().find(|run| run.method == format!("{base}/off")) {
            checks.push((
                base.to_owned(),
                off.peak_engine_bytes >= on.peak_engine_bytes.saturating_mul(2),
            ));
        }
    }
    checks
}

fn main() {
    let scale = Scale::from_args();
    let runs = experiments::id_reuse(scale);
    let memo = experiments::id_reuse_memo_comparison();

    println!("Id reuse: recycled tracker ids, retirement off vs. on");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>14} {:>10} {:>12}",
        "method", "seconds", "frames/sec", "tracked", "engine bytes", "epochs", "generations"
    );
    println!("{}", "-".repeat(86));
    for run in &runs {
        println!(
            "{:>10} {:>10.3} {:>12.0} {:>10} {:>14} {:>10} {:>12}",
            run.method,
            run.seconds,
            run.frames as f64 / run.seconds.max(f64::EPSILON),
            run.peak_tracked_objects,
            run.peak_engine_bytes,
            run.metrics.compactions,
            run.metrics.generations_started,
        );
    }
    println!();
    println!("Intersection memo on NAIVE/stable (fixed 32k vs. adaptive)");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "method", "hits", "misses", "hit rate", "resizes", "slots"
    );
    println!("{}", "-".repeat(70));
    for run in &memo {
        println!(
            "{:>10} {:>10} {:>12} {:>11.1}% {:>10} {:>10}",
            run.method,
            run.metrics.intersection_cache_hits,
            run.metrics.intersection_cache_misses,
            run.hit_rate() * 100.0,
            run.metrics.intersection_cache_resizes,
            run.metrics.intersection_cache_slots,
        );
    }

    emit_json_report("id_reuse", scale, |report| {
        let mut report = report.with_maintainers(
            runs.iter()
                .map(IdReuseRun::timing)
                .chain(memo.iter().map(MemoRun::timing))
                .collect(),
        );
        for run in &runs {
            report = report.with_extra(format!("trajectory/{}", run.method), trajectory_json(run));
        }
        report
            .with_extra(
                "gate",
                JsonValue::Arr(
                    runs.iter()
                        .filter(|run| run.method.ends_with("/on"))
                        .map(gate_json)
                        .collect(),
                ),
            )
            .with_extra(
                "baseline_outgrows",
                JsonValue::Arr(
                    baseline_outgrows(&runs)
                        .into_iter()
                        .map(|(method, ok)| {
                            JsonValue::Obj(vec![
                                ("method".into(), JsonValue::Str(method)),
                                ("outgrows".into(), JsonValue::Bool(ok)),
                            ])
                        })
                        .collect(),
                ),
            )
            .with_extra("memo", JsonValue::Arr(memo.iter().map(memo_json).collect()))
    });

    if std::env::args().any(|a| a == "--gate") {
        let mut failed = false;
        for run in runs.iter().filter(|run| run.method.ends_with("/on")) {
            if run.passes_engine_memory_gate() {
                println!(
                    "gate OK   {}: peak {}B <= 2 x first-epoch ceiling {:?} over {} epochs",
                    run.method,
                    run.peak_engine_bytes,
                    run.engine_bytes_at_first_retirement,
                    run.metrics.compactions
                );
            } else {
                eprintln!(
                    "gate FAIL {}: peak engine bytes {} vs ceiling {:?} over {} epochs",
                    run.method,
                    run.peak_engine_bytes,
                    run.engine_bytes_at_first_retirement,
                    run.metrics.compactions
                );
                failed = true;
            }
        }
        for (method, ok) in baseline_outgrows(&runs) {
            if ok {
                println!("gate OK   {method}: append-history baseline outgrows the retiring run");
            } else {
                eprintln!("gate FAIL {method}: baseline did not outgrow the retiring run");
                failed = true;
            }
        }
        let fixed = memo.iter().find(|run| run.method == "fixed32k");
        let adaptive = memo.iter().find(|run| run.method == "adaptive");
        match (fixed, adaptive) {
            (Some(fixed), Some(adaptive)) if adaptive.hit_rate() > fixed.hit_rate() => {
                println!(
                    "gate OK   memo: adaptive hit rate {:.1}% > fixed {:.1}%",
                    adaptive.hit_rate() * 100.0,
                    fixed.hit_rate() * 100.0
                );
            }
            (Some(fixed), Some(adaptive)) => {
                eprintln!(
                    "gate FAIL memo: adaptive hit rate {:.1}% <= fixed {:.1}%",
                    adaptive.hit_rate() * 100.0,
                    fixed.hit_rate() * 100.0
                );
                failed = true;
            }
            _ => {
                eprintln!("gate FAIL memo: comparison runs missing");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
