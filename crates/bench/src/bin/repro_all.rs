//! Runs every reproduction experiment (Table 6 and Figures 4-10) in sequence.
//! Pass `--quick` for a reduced run, `--json` to also write a combined
//! `BENCH_all.json` covering every figure's series.

use tvq_bench::{emit_json_report, experiments, format_table, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Reproduction run at {scale:?} scale\n");
    println!("{}", experiments::table6(scale));
    let prefix = |name: &str, results: Vec<(String, Vec<tvq_bench::Series>)>| {
        results
            .into_iter()
            .map(|(dataset, series)| (format!("{name}/{dataset}"), series))
            .collect::<Vec<_>>()
    };
    let fig4 = prefix("fig4", experiments::fig4(scale));
    print!(
        "{}",
        experiments::render(
            "Figure 4: MCOS generation time vs. total frames",
            "frames",
            &fig4
        )
    );
    let fig5 = prefix("fig5", experiments::fig5(scale));
    print!(
        "{}",
        experiments::render(
            "Figure 5: MCOS generation time vs. duration d",
            "d (frames)",
            &fig5
        )
    );
    let fig6 = prefix("fig6", experiments::fig6(scale));
    print!(
        "{}",
        experiments::render(
            "Figure 6: MCOS generation time vs. window size w",
            "w (frames)",
            &fig6
        )
    );
    let fig7 = prefix("fig7", experiments::fig7(scale));
    print!(
        "{}",
        experiments::render(
            "Figure 7: MCOS generation time vs. occlusion parameter po",
            "po",
            &fig7
        )
    );
    let fig8 = prefix("fig8", experiments::fig8(scale));
    print!(
        "{}",
        experiments::render(
            "Figure 8: total time vs. number of queries",
            "queries",
            &fig8
        )
    );
    let fig9 = prefix("fig9", experiments::fig9(scale));
    print!(
        "{}",
        experiments::render(
            "Figure 9: total time vs. n_min (>=-only queries)",
            "n_min",
            &fig9
        )
    );
    let fig10 = experiments::fig10(scale);
    println!(
        "{}",
        format_table(
            "Figure 10: end-to-end average time per query (50 queries)",
            "dataset",
            &fig10
        )
    );
    emit_json_report("all", scale, |report| {
        let mut report = report
            .with_maintainers(experiments::instrumented_summary(scale))
            .with_series("fig10", &fig10);
        for group in [fig4, fig5, fig6, fig7, fig8, fig9] {
            report = report.with_groups(&group);
        }
        report
    });
}
