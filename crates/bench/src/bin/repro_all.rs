//! Runs every reproduction experiment (Table 6 and Figures 4-10) in sequence.
//! Pass `--quick` for a reduced run.

use tvq_bench::{experiments, format_table, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Reproduction run at {scale:?} scale\n");
    println!("{}", experiments::table6(scale));
    print!(
        "{}",
        experiments::render(
            "Figure 4: MCOS generation time vs. total frames",
            "frames",
            &experiments::fig4(scale)
        )
    );
    print!(
        "{}",
        experiments::render(
            "Figure 5: MCOS generation time vs. duration d",
            "d (frames)",
            &experiments::fig5(scale)
        )
    );
    print!(
        "{}",
        experiments::render(
            "Figure 6: MCOS generation time vs. window size w",
            "w (frames)",
            &experiments::fig6(scale)
        )
    );
    print!(
        "{}",
        experiments::render(
            "Figure 7: MCOS generation time vs. occlusion parameter po",
            "po",
            &experiments::fig7(scale)
        )
    );
    print!(
        "{}",
        experiments::render(
            "Figure 8: total time vs. number of queries",
            "queries",
            &experiments::fig8(scale)
        )
    );
    print!(
        "{}",
        experiments::render(
            "Figure 9: total time vs. n_min (>=-only queries)",
            "n_min",
            &experiments::fig9(scale)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 10: end-to-end average time per query (50 queries)",
            "dataset",
            &experiments::fig10(scale)
        )
    );
}
