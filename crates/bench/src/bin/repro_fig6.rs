//! Reproduces Figure 6: MCOS generation time vs. window size w (d = 240).
//! Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_fig6.json`.

use tvq_bench::{emit_json_report, experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig6(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 6: MCOS generation time vs. window size w",
            "w (frames)",
            &results
        )
    );
    emit_json_report("fig6", scale, |report| {
        report
            .with_groups(&results)
            .with_maintainers(experiments::instrumented_summary(scale))
    });
}
