//! Reproduces Figure 6: MCOS generation time vs. window size w (d = 240).
//! Pass `--quick` for a reduced run.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig6(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 6: MCOS generation time vs. window size w",
            "w (frames)",
            &results
        )
    );
}
