//! Reproduces Figure 5: MCOS generation time vs. duration threshold d
//! (w = 300). Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_fig5.json`.

use tvq_bench::{emit_json_report, experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig5(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 5: MCOS generation time vs. duration d",
            "d (frames)",
            &results
        )
    );
    emit_json_report("fig5", scale, |report| {
        report
            .with_groups(&results)
            .with_maintainers(experiments::instrumented_summary(scale))
    });
}
