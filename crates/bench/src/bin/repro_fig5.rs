//! Reproduces Figure 5: MCOS generation time vs. duration threshold d
//! (w = 300). Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_fig5.json`.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig5(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 5: MCOS generation time vs. duration d",
            "d (frames)",
            &results
        )
    );
    if tvq_bench::json_requested() {
        tvq_bench::write_if_requested(
            &tvq_bench::ScenarioReport::new("fig5", scale)
                .with_groups(&results)
                .with_maintainers(experiments::instrumented_summary(scale)),
        );
    }
}
