//! Reproduces Figure 5: MCOS generation time vs. duration threshold d
//! (w = 300). Pass `--quick` for a reduced run.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig5(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 5: MCOS generation time vs. duration d",
            "d (frames)",
            &results
        )
    );
}
