//! Reproduces Figure 10: end-to-end average time per query (50 queries) for
//! every dataset and method. Pass `--quick` for a reduced run, `--json` to
//! also write `BENCH_fig10.json`.

use tvq_bench::{emit_json_report, experiments, format_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let series = experiments::fig10(scale);
    println!(
        "{}",
        format_table(
            "Figure 10: end-to-end average time per query (50 queries)",
            "dataset",
            &series
        )
    );
    emit_json_report("fig10", scale, |report| {
        report
            .with_series("all", &series)
            .with_maintainers(experiments::instrumented_summary(scale))
    });
}
