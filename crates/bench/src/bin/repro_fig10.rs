//! Reproduces Figure 10: end-to-end average time per query (50 queries) for
//! every dataset and method. Pass `--quick` for a reduced run.

use tvq_bench::{experiments, format_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let series = experiments::fig10(scale);
    println!(
        "{}",
        format_table(
            "Figure 10: end-to-end average time per query (50 queries)",
            "dataset",
            &series
        )
    );
}
