//! Reproduces Figure 10: end-to-end average time per query (50 queries) for
//! every dataset and method. Pass `--quick` for a reduced run, `--json` to
//! also write `BENCH_fig10.json`.

use tvq_bench::{experiments, format_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let series = experiments::fig10(scale);
    println!(
        "{}",
        format_table(
            "Figure 10: end-to-end average time per query (50 queries)",
            "dataset",
            &series
        )
    );
    if tvq_bench::json_requested() {
        tvq_bench::write_if_requested(
            &tvq_bench::ScenarioReport::new("fig10", scale)
                .with_series("all", &series)
                .with_maintainers(experiments::instrumented_summary(scale)),
        );
    }
}
