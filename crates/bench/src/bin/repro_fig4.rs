//! Reproduces Figure 4: MCOS generation time vs. number of frames
//! (w = 300, d = 240). Pass `--quick` for a reduced run.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig4(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 4: MCOS generation time vs. total frames",
            "frames",
            &results
        )
    );
}
