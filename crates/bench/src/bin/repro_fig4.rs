//! Reproduces Figure 4: MCOS generation time vs. number of frames
//! (w = 300, d = 240). Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_fig4.json`.

use tvq_bench::{emit_json_report, experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig4(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 4: MCOS generation time vs. total frames",
            "frames",
            &results
        )
    );
    emit_json_report("fig4", scale, |report| {
        report
            .with_groups(&results)
            .with_maintainers(experiments::instrumented_summary(scale))
    });
}
