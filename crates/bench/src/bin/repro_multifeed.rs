//! Multi-feed scaling scenario: total ingestion time for N concurrent
//! camera feeds (cycling through the paper's six dataset profiles) as the
//! worker-pool size grows. Goes beyond the paper's single-feed evaluation —
//! this is the sharding axis the production deployment scales along. Pass
//! `--quick` for a reduced run, `--json` to also write
//! `BENCH_multifeed.json` (frames/sec, peak state counts and
//! per-maintainer timings of a four-camera deployment).

use tvq_bench::{emit_json_report, experiments, format_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let series = experiments::multi_feed(scale);
    print!(
        "{}",
        format_table(
            "Multi-feed scaling: ingestion time vs. concurrent feeds (per worker-pool size)",
            "feeds",
            &series
        )
    );
    emit_json_report("multifeed", scale, |report| {
        report
            .with_series("scaling", &series)
            .with_maintainers(experiments::instrumented_multifeed(scale))
    });
}
