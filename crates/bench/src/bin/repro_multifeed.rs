//! Multi-feed scaling scenario: total ingestion time for N concurrent
//! camera feeds (cycling through the paper's six dataset profiles) as the
//! worker-pool size grows. Goes beyond the paper's single-feed evaluation —
//! this is the sharding axis the production deployment scales along. Pass
//! `--quick` for a reduced run.

use tvq_bench::{experiments, format_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let series = experiments::multi_feed(scale);
    print!(
        "{}",
        format_table(
            "Multi-feed scaling: ingestion time vs. concurrent feeds (per worker-pool size)",
            "feeds",
            &series
        )
    );
}
