//! Reproduces Figure 8: total time (MCOS generation + query evaluation) vs.
//! number of registered queries, on V1 and M2. Pass `--quick` for a reduced run, `--json` to also write
//! `BENCH_fig8.json`.

use tvq_bench::{emit_json_report, experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig8(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 8: total time vs. number of queries",
            "queries",
            &results
        )
    );
    emit_json_report("fig8", scale, |report| {
        report
            .with_groups(&results)
            .with_maintainers(experiments::instrumented_summary(scale))
    });
}
