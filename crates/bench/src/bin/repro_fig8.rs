//! Reproduces Figure 8: total time (MCOS generation + query evaluation) vs.
//! number of registered queries, on V1 and M2. Pass `--quick` for a reduced
//! run.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig8(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 8: total time vs. number of queries",
            "queries",
            &results
        )
    );
}
