//! Restart scenario: crash-point fault injection over a durable feed,
//! recovery, and transcript differencing against an uninterrupted run.
//!
//! An engine ingests a churny scripted feed durably (WAL + epoch
//! snapshots on a `MemDisk`). A counting pass enumerates every mutating
//! IO operation the run performs; the scenario then kills the "process"
//! at a strided sample of those crash points (cycling the torn-tail
//! policies), recovers from the post-reboot view of the same disk,
//! resumes the feed from the durable cursor, and compares the FNV-64
//! transcript hash — every acknowledged frame result plus the recovered
//! continuation, and the final catalog version — against the run that
//! never crashed.
//!
//! Flags: `--quick` for a reduced run, `--json` to also write
//! `BENCH_restart.json` (per-sample replay depth and hash verdicts plus
//! the durable run's WAL/snapshot/fsync counters), `--gate` to exit
//! non-zero unless (a) every sampled crash point recovers to a
//! transcript identical to the uninterrupted run and (b) the WAL tail
//! replayed after any crash stays within one checkpoint interval — the
//! largest observed WAL-record gap between consecutive snapshots, plus
//! the one-record snapshot-flush deferral and fsync-before-ack windows.

use std::path::Path;
use std::time::Instant;

use tvq_bench::{emit_json_report, JsonValue, MaintainerTiming, Scale};
use tvq_common::{ClassId, FrameId, FrameObjects, ObjectId, QueryId, WindowSpec};
use tvq_core::{CompactionPolicy, MaintenanceMetrics};
use tvq_engine::{EngineConfig, FrameResult, TemporalVideoQueryEngine};
use tvq_query::{CnfQuery, Condition};
use tvq_store::{MemDisk, SharedIo, TornTail};

/// Frames between compaction checks; `CompactionPolicy::every` makes each
/// check that retired anything an epoch, and every epoch lands a snapshot.
const CHECK_INTERVAL: u64 = 8;
/// Small segments so the sweep crosses WAL rotation, not just appends.
const ROTATE_BYTES: usize = 256;

/// Slack on the replay-depth gate: the deferred snapshot flush plus the
/// fsync-before-ack window each admit one extra in-flight record.
const REPLAY_SLACK: u64 = 2;

/// One durable operation of the scripted feed.
#[derive(Debug, Clone)]
enum Op {
    Frame(FrameObjects),
    Add(CnfQuery),
    Remove(QueryId),
}

fn frame(fid: u64, detections: &[(u32, u16)], ends: &[u32]) -> FrameObjects {
    FrameObjects::new(
        FrameId(fid),
        detections
            .iter()
            .map(|&(id, class)| (ObjectId(id), ClassId(class)))
            .collect(),
    )
    .with_track_ends(ends.iter().map(|&id| ObjectId(id)).collect())
}

fn geq(id: u32, class: u16, n: u32) -> CnfQuery {
    CnfQuery::conjunction(QueryId(id), vec![Condition::at_least(ClassId(class), n)])
}

/// The scripted feed: churny detections across three class axes, periodic
/// track ends (including a recycled id, so recovery replays the id-reuse
/// path too), a query added at 1/4 and 1/2 of the feed and one removed at
/// 3/4.
fn script(frames: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..frames {
        let a = (i % 5) as u32 + 1;
        let b = (i % 3) as u32 + 6;
        let detections = [(a, 1u16), (b, 0u16), (9, (i % 2) as u16)];
        let mut ends: Vec<u32> = Vec::new();
        if i % 6 == 5 {
            ends.push(((i / 6) % 3) as u32 + 6);
        }
        if i % 13 == 7 {
            ends.push(9);
        }
        ops.push(Op::Frame(frame(i, &detections, &ends)));
        if i == frames / 4 {
            ops.push(Op::Add(geq(1, 0, 2)));
        }
        if i == frames / 2 {
            ops.push(Op::Add(CnfQuery::conjunction(
                QueryId(2),
                vec![
                    Condition::at_least(ClassId(1), 1),
                    Condition::at_least(ClassId(0), 1),
                ],
            )));
        }
        if i == frames * 3 / 4 {
            ops.push(Op::Remove(QueryId(1)));
        }
    }
    ops
}

fn build_engine(window: WindowSpec) -> TemporalVideoQueryEngine {
    TemporalVideoQueryEngine::builder(
        EngineConfig::new(window).with_compaction(Some(CompactionPolicy::every(CHECK_INTERVAL))),
    )
    .with_query(geq(0, 1, 1))
    .build()
    .unwrap()
}

fn apply(
    engine: &mut TemporalVideoQueryEngine,
    op: &Op,
) -> tvq_common::Result<Option<FrameResult>> {
    match op {
        Op::Frame(f) => engine.observe(f).map(Some),
        Op::Add(q) => engine.add_query(q.clone()).map(|()| None),
        Op::Remove(id) => engine.remove_query(*id).map(|()| None),
    }
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// FNV-64 over the full transcript: every frame result in feed order plus
/// the final catalog version.
fn transcript_hash(results: &[FrameResult], catalog_version: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for result in results {
        fnv1a(&mut hash, format!("{result:?}").as_bytes());
    }
    fnv1a(&mut hash, &catalog_version.to_le_bytes());
    hash
}

/// The uninterrupted durable run: the reference transcript and the
/// instrumented timing behind the `--json` report.
struct Reference {
    results: Vec<FrameResult>,
    catalog_version: u64,
    hash: u64,
    metrics: MaintenanceMetrics,
    seconds: f64,
    /// The checkpoint interval the run actually exhibited: the largest
    /// number of WAL records between consecutive snapshots (compaction
    /// epochs only land a snapshot when the check retired something, so
    /// this is workload-dependent, not just `CHECK_INTERVAL`).
    checkpoint_gap: u64,
}

fn run_uninterrupted(io: SharedIo, dir: &Path, ops: &[Op], window: WindowSpec) -> Reference {
    let started = Instant::now();
    let mut engine = build_engine(window);
    engine.attach_durability(io, dir).unwrap();
    engine.set_wal_rotate_bytes(ROTATE_BYTES);
    let bootstrap = engine.metrics();
    let (mut last_snaps, mut wal_at_snap) = (bootstrap.snapshots_written, bootstrap.wal_records);
    let mut checkpoint_gap = 0u64;
    let mut results = Vec::new();
    for op in ops {
        if let Some(result) = apply(&mut engine, op).unwrap() {
            results.push(result);
        }
        let m = engine.metrics();
        if m.snapshots_written > last_snaps {
            checkpoint_gap = checkpoint_gap.max(m.wal_records - wal_at_snap);
            last_snaps = m.snapshots_written;
            wal_at_snap = m.wal_records;
        }
    }
    engine.sync_store().unwrap();
    // The unsnapshotted tail after the last epoch is also a possible replay.
    checkpoint_gap = checkpoint_gap.max(engine.metrics().wal_records - wal_at_snap);
    let catalog_version = engine.catalog_version();
    let hash = transcript_hash(&results, catalog_version);
    Reference {
        results,
        catalog_version,
        hash,
        metrics: engine.metrics(),
        seconds: started.elapsed().as_secs_f64(),
        checkpoint_gap,
    }
}

/// Runs the script through a faulty IO until the injected crash, returning
/// the acknowledged frame results.
fn run_until_crash(io: SharedIo, dir: &Path, ops: &[Op], window: WindowSpec) -> Vec<FrameResult> {
    let mut engine = build_engine(window);
    let mut acked = Vec::new();
    if engine.attach_durability(io, dir).is_err() {
        return acked;
    }
    engine.set_wal_rotate_bytes(ROTATE_BYTES);
    for op in ops {
        match apply(&mut engine, op) {
            Ok(Some(result)) => acked.push(result),
            Ok(None) => {}
            Err(_) => return acked, // the injected crash; the process is dead
        }
    }
    let _ = engine.sync_store();
    acked
}

/// One sampled crash point's outcome.
struct Sample {
    crash_at: u64,
    torn: TornTail,
    records_replayed: u64,
    fresh_restart: bool,
    hash: u64,
    matches: bool,
    detail: Option<String>,
}

/// Recovers from the post-reboot disk, resumes the script from the durable
/// cursor and returns the reconstructed transcript's outcome. Invariant
/// violations (acknowledged-but-lost work, replay divergence) surface as
/// `Err` details rather than panics so the gate can report them.
fn recover_and_resume(
    disk: &MemDisk,
    dir: &Path,
    ops: &[Op],
    window: WindowSpec,
    acked: &[FrameResult],
    reference: &Reference,
) -> Result<(Vec<FrameResult>, u64, u64, bool), String> {
    let io = disk.io();

    // A crash before the bootstrap snapshot landed: nothing durable exists,
    // so the restart is a fresh engine over the same directory.
    if !TemporalVideoQueryEngine::has_data(&io, dir) {
        if !acked.is_empty() {
            return Err(format!(
                "{} acknowledged operations but no durable data",
                acked.len()
            ));
        }
        let mut engine = build_engine(window);
        engine
            .attach_durability(io, dir)
            .map_err(|e| format!("fresh attach failed: {e}"))?;
        engine.set_wal_rotate_bytes(ROTATE_BYTES);
        let mut results = Vec::new();
        for op in ops {
            if let Some(result) = apply(&mut engine, op).map_err(|e| format!("resume: {e}"))? {
                results.push(result);
            }
        }
        let catalog_version = engine.catalog_version();
        return Ok((results, catalog_version, 0, true));
    }

    let (mut engine, report) =
        TemporalVideoQueryEngine::recover(io, dir).map_err(|e| format!("recover failed: {e}"))?;
    let durable_frames = engine.metrics().frames_processed as usize;
    let durable_catalog = engine.catalog_version() as usize;

    // Acknowledged implies durable; at most the one in-flight operation of
    // the fsync-before-ack window may be durable without an ack.
    if durable_frames != acked.len() && durable_frames != acked.len() + 1 {
        return Err(format!(
            "durable frames {durable_frames} vs {} acknowledged",
            acked.len()
        ));
    }
    let replay_start = durable_frames - report.replayed_frames.len();
    if report.replayed_frames != reference.results[replay_start..durable_frames] {
        return Err("replay diverged from the original execution".to_owned());
    }

    // Transcript so far: every acknowledged result, plus the durable but
    // unacknowledged in-flight frame (if any) taken from the replay.
    let mut results = acked.to_vec();
    if durable_frames == acked.len() + 1 {
        match report.replayed_frames.last() {
            Some(result) => results.push(result.clone()),
            None => return Err("in-flight durable frame missing from replay".to_owned()),
        }
    }

    // The durable state is an exact prefix of the script; skip it.
    let (mut frames_seen, mut catalog_seen) = (0usize, 0usize);
    let mut resume_at = ops.len();
    for (index, op) in ops.iter().enumerate() {
        let done = match op {
            Op::Frame(_) => {
                frames_seen += 1;
                frames_seen <= durable_frames
            }
            Op::Add(_) | Op::Remove(_) => {
                catalog_seen += 1;
                catalog_seen <= durable_catalog
            }
        };
        if !done {
            resume_at = index;
            break;
        }
    }
    for op in &ops[resume_at..] {
        if let Some(result) = apply(&mut engine, op).map_err(|e| format!("resume: {e}"))? {
            results.push(result);
        }
    }
    let catalog_version = engine.catalog_version();
    Ok((results, catalog_version, report.records_replayed, false))
}

fn sample_json(sample: &Sample) -> JsonValue {
    JsonValue::Obj(vec![
        ("crash_at".into(), JsonValue::Int(sample.crash_at)),
        ("torn".into(), JsonValue::Str(format!("{:?}", sample.torn))),
        (
            "records_replayed".into(),
            JsonValue::Int(sample.records_replayed),
        ),
        (
            "fresh_restart".into(),
            JsonValue::Bool(sample.fresh_restart),
        ),
        (
            "transcript_hash".into(),
            JsonValue::Str(format!("{:016x}", sample.hash)),
        ),
        ("transcript_matches".into(), JsonValue::Bool(sample.matches)),
        (
            "detail".into(),
            match &sample.detail {
                Some(detail) => JsonValue::Str(detail.clone()),
                None => JsonValue::Null,
            },
        ),
    ])
}

fn main() {
    let scale = Scale::from_args();
    let (frames, sample_count, window) = match scale {
        Scale::Quick => (160u64, 12usize, WindowSpec::new(6, 3).unwrap()),
        Scale::Paper => (800u64, 60usize, WindowSpec::new(24, 12).unwrap()),
    };
    let ops = script(frames);
    let dir = Path::new("/restart");

    let reference = {
        let disk = MemDisk::new();
        run_uninterrupted(disk.io(), dir, &ops, window)
    };

    // Counting pass: the same durable run through a fault IO that never
    // fires enumerates the crash surface (every mutating IO operation).
    let total_ops = {
        let disk = MemDisk::new();
        let counter = disk.fault_io(u64::MAX, TornTail::Drop);
        let counter_io: SharedIo = counter.clone();
        run_until_crash(counter_io, dir, &ops, window);
        counter.ops()
    };
    assert!(
        total_ops >= sample_count as u64,
        "crash surface too small: {total_ops} IO ops for {sample_count} samples"
    );

    let mut samples = Vec::new();
    for index in 0..sample_count {
        let crash_at = 1 + index as u64 * (total_ops - 1) / (sample_count as u64 - 1);
        let torn = TornTail::ALL[index % TornTail::ALL.len()];
        let disk = MemDisk::new();
        let faulty = disk.fault_io(crash_at, torn);
        let faulty_io: SharedIo = faulty.clone();
        let acked = run_until_crash(faulty_io, dir, &ops, window);
        let outcome = if faulty.crashed() {
            recover_and_resume(&disk, dir, &ops, window, &acked, &reference)
        } else {
            Err(format!("crash point {crash_at} was never reached"))
        };
        samples.push(match outcome {
            Ok((results, catalog_version, records_replayed, fresh_restart)) => {
                let hash = transcript_hash(&results, catalog_version);
                Sample {
                    crash_at,
                    torn,
                    records_replayed,
                    fresh_restart,
                    hash,
                    matches: hash == reference.hash,
                    detail: None,
                }
            }
            Err(detail) => Sample {
                crash_at,
                torn,
                records_replayed: 0,
                fresh_restart: false,
                hash: 0,
                matches: false,
                detail: Some(detail),
            },
        });
    }

    let max_replayed = samples
        .iter()
        .map(|s| s.records_replayed)
        .max()
        .unwrap_or(0);
    let replay_bound = reference.checkpoint_gap + REPLAY_SLACK;
    println!(
        "Restart: {} frames durable, {} IO ops, {} sampled crash points",
        frames, total_ops, sample_count
    );
    println!(
        "reference transcript {:016x} (catalog v{}, {} results, {} snapshots, {} WAL records)",
        reference.hash,
        reference.catalog_version,
        reference.results.len(),
        reference.metrics.snapshots_written,
        reference.metrics.wal_records,
    );
    println!(
        "{:>10} {:>6} {:>10} {:>8} {:>18} {:>10}",
        "crash_at", "torn", "replayed", "restart", "transcript", "verdict"
    );
    println!("{}", "-".repeat(68));
    for sample in &samples {
        println!(
            "{:>10} {:>6} {:>10} {:>8} {:>18} {:>10}",
            sample.crash_at,
            format!("{:?}", sample.torn),
            sample.records_replayed,
            if sample.fresh_restart {
                "fresh"
            } else {
                "recover"
            },
            format!("{:016x}", sample.hash),
            match (&sample.detail, sample.matches) {
                (Some(_), _) => "error",
                (None, true) => "match",
                (None, false) => "DIVERGED",
            },
        );
        if let Some(detail) = &sample.detail {
            println!("{:>10} {detail}", "");
        }
    }
    println!(
        "max WAL records replayed: {max_replayed} (bound {replay_bound} = observed checkpoint interval {} + {REPLAY_SLACK} in-flight)",
        reference.checkpoint_gap
    );

    emit_json_report("restart", scale, |report| {
        report
            .with_maintainers(vec![MaintainerTiming {
                method: "SSG/durable".into(),
                seconds: reference.seconds,
                frames,
                metrics: reference.metrics.clone(),
            }])
            .with_extra(
                "gate",
                JsonValue::Obj(vec![
                    (
                        "reference_hash".into(),
                        JsonValue::Str(format!("{:016x}", reference.hash)),
                    ),
                    ("total_io_ops".into(), JsonValue::Int(total_ops)),
                    (
                        "checkpoint_gap".into(),
                        JsonValue::Int(reference.checkpoint_gap),
                    ),
                    ("replay_bound".into(), JsonValue::Int(replay_bound)),
                    ("max_records_replayed".into(), JsonValue::Int(max_replayed)),
                    (
                        "all_transcripts_match".into(),
                        JsonValue::Bool(samples.iter().all(|s| s.matches)),
                    ),
                ]),
            )
            .with_extra(
                "samples",
                JsonValue::Arr(samples.iter().map(sample_json).collect()),
            )
    });

    if std::env::args().any(|a| a == "--gate") {
        let mut failed = false;
        let diverged: Vec<&Sample> = samples.iter().filter(|s| !s.matches).collect();
        if diverged.is_empty() {
            println!(
                "gate OK   recovery: all {} sampled crash points reproduce transcript {:016x}",
                samples.len(),
                reference.hash
            );
        } else {
            for sample in &diverged {
                eprintln!(
                    "gate FAIL recovery: crash at op {} ({:?}) diverged: {}",
                    sample.crash_at,
                    sample.torn,
                    sample
                        .detail
                        .as_deref()
                        .unwrap_or("transcript hash mismatch")
                );
            }
            failed = true;
        }
        if max_replayed <= replay_bound {
            println!(
                "gate OK   replay: WAL tail replay {max_replayed} <= one checkpoint interval ({replay_bound})"
            );
        } else {
            eprintln!(
                "gate FAIL replay: WAL tail replay {max_replayed} exceeds checkpoint interval bound {replay_bound}"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
