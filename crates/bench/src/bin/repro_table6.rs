//! Reproduces Table 6 (dataset statistics). Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_table6.json` (the instrumented
//! per-maintainer timings over the V1/M2 feeds).

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("{}", experiments::table6(scale));
    if tvq_bench::json_requested() {
        tvq_bench::write_if_requested(
            &tvq_bench::ScenarioReport::new("table6", scale)
                .with_maintainers(experiments::instrumented_summary(scale)),
        );
    }
}
