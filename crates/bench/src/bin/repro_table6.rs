//! Reproduces Table 6 (dataset statistics). Pass `--quick` for a reduced run.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("{}", experiments::table6(scale));
}
