//! Reproduces Table 6 (dataset statistics). Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_table6.json` (the instrumented
//! per-maintainer timings over the V1/M2 feeds).

use tvq_bench::{emit_json_report, experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("{}", experiments::table6(scale));
    emit_json_report("table6", scale, |report| {
        report.with_maintainers(experiments::instrumented_summary(scale))
    });
}
