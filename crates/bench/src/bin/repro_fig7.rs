//! Reproduces Figure 7: MCOS generation time vs. the occlusion (id reuse)
//! parameter po. Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_fig7.json`.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig7(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 7: MCOS generation time vs. occlusion parameter po",
            "po",
            &results
        )
    );
    if tvq_bench::json_requested() {
        tvq_bench::write_if_requested(
            &tvq_bench::ScenarioReport::new("fig7", scale)
                .with_groups(&results)
                .with_maintainers(experiments::instrumented_summary(scale)),
        );
    }
}
