//! Reproduces Figure 7: MCOS generation time vs. the occlusion (id reuse)
//! parameter po. Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_fig7.json`.

use tvq_bench::{emit_json_report, experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig7(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 7: MCOS generation time vs. occlusion parameter po",
            "po",
            &results
        )
    );
    emit_json_report("fig7", scale, |report| {
        report
            .with_groups(&results)
            .with_maintainers(experiments::instrumented_summary(scale))
    });
}
