//! Reproduces Figure 7: MCOS generation time vs. the occlusion (id reuse)
//! parameter po. Pass `--quick` for a reduced run.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig7(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 7: MCOS generation time vs. occlusion parameter po",
            "po",
            &results
        )
    );
}
