//! Skewed-feed scheduling scenario: a 12-camera grid in which two hot
//! cameras (an order of magnitude more concurrent objects than the rest)
//! collide on one worker of a static mod-4 sharding, with the hotspot
//! flipping to two different cameras halfway through. Ingested three ways —
//! one worker, four static workers, four workers with work-stealing
//! rebalancing — to show that the deterministic scheduler recovers the
//! parallelism static sharding loses to skew *without changing a single
//! result*.
//!
//! Flags: `--quick` for a reduced run, `--json` to also write
//! `BENCH_skew.json` (per-configuration timings, scheduling telemetry and
//! the gate verdict), `--gate` to exit non-zero unless the verdict passes:
//! identical transcripts across all three configurations, a rebalanced
//! schedule that admits ≥ 1.5× parallelism (busy time / critical-path time
//! — machine-independent) and beats static sharding's critical path, and,
//! on machines with at least 4 cores, a ≥ 1.5× wall-clock speedup of the
//! rebalanced 4-worker run over the 1-worker baseline.

use tvq_bench::experiments::{self, SkewRun};
use tvq_bench::{emit_json_report, JsonValue, Scale};

fn run_json(run: &SkewRun) -> JsonValue {
    JsonValue::Obj(vec![
        ("method".into(), JsonValue::Str(run.method.clone())),
        ("workers".into(), JsonValue::Int(run.workers as u64)),
        ("matches".into(), JsonValue::Int(run.matches)),
        (
            "transcript".into(),
            JsonValue::Str(format!("{:016x}", run.transcript)),
        ),
        ("busy_nanos".into(), JsonValue::Int(run.sched.busy_nanos)),
        (
            "critical_path_nanos".into(),
            JsonValue::Int(run.sched.critical_path_nanos),
        ),
        (
            "schedule_parallelism".into(),
            JsonValue::Num(run.sched.schedule_parallelism()),
        ),
        (
            "feeds_migrated".into(),
            JsonValue::Int(run.metrics.feeds_migrated),
        ),
        ("rebalances".into(), JsonValue::Int(run.metrics.rebalances)),
        (
            "per_shard_queue_depth".into(),
            JsonValue::Int(run.metrics.per_shard_queue_depth),
        ),
    ])
}

fn main() {
    let scale = Scale::from_args();
    let runs = experiments::skew(scale);
    let verdict = experiments::skew_verdict(&runs);

    println!("Skewed feeds: hot-camera collision, static sharding vs. work stealing");
    println!(
        "{:>14} {:>9} {:>12} {:>13} {:>11} {:>10} {:>12}",
        "method", "seconds", "frames/sec", "parallelism", "migrations", "matches", "transcript"
    );
    println!("{}", "-".repeat(88));
    for run in &runs {
        println!(
            "{:>14} {:>9.3} {:>12.0} {:>13.2} {:>11} {:>10} {:>12}",
            run.method,
            run.seconds,
            run.frames as f64 / run.seconds.max(f64::EPSILON),
            run.sched.schedule_parallelism(),
            run.metrics.feeds_migrated,
            run.matches,
            format!("{:08x}", run.transcript >> 32),
        );
    }
    println!(
        "transcripts identical: {}; rebalance beats static critical path: {}; \
         wall-clock speedup vs 1w: {:.2}x ({} cores{})",
        verdict.identical_transcripts,
        verdict.rebalance_beats_static,
        verdict.wall_clock_speedup,
        verdict.cores,
        if verdict.wall_clock_gate_active() {
            ""
        } else {
            "; wall-clock gate inactive below 4 cores"
        },
    );

    emit_json_report("skew", scale, |report| {
        report
            .with_maintainers(runs.iter().map(SkewRun::timing).collect())
            .with_extra("runs", JsonValue::Arr(runs.iter().map(run_json).collect()))
            .with_extra(
                "gate",
                JsonValue::Obj(vec![
                    (
                        "identical_transcripts".into(),
                        JsonValue::Bool(verdict.identical_transcripts),
                    ),
                    (
                        "rebalance_parallelism".into(),
                        JsonValue::Num(verdict.rebalance_parallelism),
                    ),
                    (
                        "static4_parallelism".into(),
                        JsonValue::Num(verdict.static4_parallelism),
                    ),
                    (
                        "rebalance_beats_static".into(),
                        JsonValue::Bool(verdict.rebalance_beats_static),
                    ),
                    (
                        "wall_clock_speedup".into(),
                        JsonValue::Num(verdict.wall_clock_speedup),
                    ),
                    ("cores".into(), JsonValue::Int(verdict.cores as u64)),
                    (
                        "wall_clock_gate_active".into(),
                        JsonValue::Bool(verdict.wall_clock_gate_active()),
                    ),
                    ("passes".into(), JsonValue::Bool(verdict.passes())),
                ]),
            )
    });

    if std::env::args().any(|a| a == "--gate") {
        if verdict.passes() {
            println!(
                "gate OK   parallelism {:.2} >= 1.5, static {:.2}, wall-clock {:.2}x",
                verdict.rebalance_parallelism,
                verdict.static4_parallelism,
                verdict.wall_clock_speedup
            );
        } else {
            eprintln!("gate FAIL {verdict:?}");
            std::process::exit(1);
        }
    }
}
