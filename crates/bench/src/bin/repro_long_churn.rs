//! Long-churn scenario: hours-scale object turnover compressed into a
//! bounded frame budget, ingested with interner compaction off and on (MFS
//! and SSG). Demonstrates both halves of the compaction story: sustained
//! frames/sec, and a plateauing `interned_sets`/`arena_bytes` curve with
//! compaction enabled versus monotone growth with it disabled.
//!
//! Flags: `--quick` for a reduced run, `--json` to also write
//! `BENCH_long_churn.json` (per-run timings, the sampled memory trajectory
//! and the gate inputs), `--gate` to exit non-zero unless every
//! compaction-enabled run keeps its peak arena bytes within 2× the ceiling
//! its first compaction epoch triggered at (the CI regression gate for
//! unbounded-deployment memory).

use tvq_bench::experiments::{self, ChurnRun};
use tvq_bench::{emit_json_report, JsonValue, Scale};

fn trajectory_json(run: &ChurnRun) -> JsonValue {
    JsonValue::Arr(
        run.trajectory
            .iter()
            .map(|sample| {
                JsonValue::Obj(vec![
                    ("frame".into(), JsonValue::Int(sample.frame)),
                    ("interned_sets".into(), JsonValue::Int(sample.interned_sets)),
                    ("arena_bytes".into(), JsonValue::Int(sample.arena_bytes)),
                    ("bitmap_bytes".into(), JsonValue::Int(sample.bitmap_bytes)),
                    ("compactions".into(), JsonValue::Int(sample.compactions)),
                ])
            })
            .collect(),
    )
}

fn gate_json(run: &ChurnRun) -> JsonValue {
    JsonValue::Obj(vec![
        ("method".into(), JsonValue::Str(run.method.clone())),
        (
            "peak_arena_bytes".into(),
            JsonValue::Int(run.peak_arena_bytes),
        ),
        (
            "peak_interned_sets".into(),
            JsonValue::Int(run.peak_interned_sets),
        ),
        (
            "arena_bytes_at_first_compaction".into(),
            match run.arena_bytes_at_first_compaction {
                Some(bytes) => JsonValue::Int(bytes),
                None => JsonValue::Null,
            },
        ),
        (
            "passes_arena_gate".into(),
            JsonValue::Bool(run.passes_arena_gate()),
        ),
    ])
}

fn main() {
    let scale = Scale::from_args();
    let runs = experiments::long_churn(scale);

    println!("Long churn: unbounded object turnover, compaction off vs. on");
    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "method", "seconds", "frames/sec", "peak interned", "peak arena B", "compactions"
    );
    println!("{}", "-".repeat(78));
    for run in &runs {
        println!(
            "{:>10} {:>10.3} {:>12.0} {:>14} {:>14} {:>12}",
            run.method,
            run.seconds,
            run.frames as f64 / run.seconds.max(f64::EPSILON),
            run.peak_interned_sets,
            run.peak_arena_bytes,
            run.metrics.compactions,
        );
    }

    emit_json_report("long_churn", scale, |report| {
        let mut report = report.with_maintainers(runs.iter().map(ChurnRun::timing).collect());
        for run in &runs {
            report = report.with_extra(format!("trajectory/{}", run.method), trajectory_json(run));
        }
        report.with_extra(
            "gate",
            JsonValue::Arr(
                runs.iter()
                    .filter(|run| run.method.ends_with("/on"))
                    .map(gate_json)
                    .collect(),
            ),
        )
    });

    if std::env::args().any(|a| a == "--gate") {
        let mut failed = false;
        for run in runs.iter().filter(|run| run.method.ends_with("/on")) {
            if run.passes_arena_gate() {
                println!(
                    "gate OK   {}: peak {} <= 2 x first-epoch ceiling {:?}",
                    run.method, run.peak_arena_bytes, run.arena_bytes_at_first_compaction
                );
            } else {
                eprintln!(
                    "gate FAIL {}: peak arena bytes {} vs first-epoch ceiling {:?}",
                    run.method, run.peak_arena_bytes, run.arena_bytes_at_first_compaction
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
