//! Reproduces Figure 9: total time with 100 `>=`-only queries vs. n_min, on
//! the real datasets, comparing the `_E` variants against the pruning `_O`
//! variants. Pass `--quick` for a reduced
//! run, `--json` to also write `BENCH_fig9.json`.

use tvq_bench::{emit_json_report, experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig9(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 9: total time vs. n_min (>=-only queries)",
            "n_min",
            &results
        )
    );
    emit_json_report("fig9", scale, |report| {
        report
            .with_groups(&results)
            .with_maintainers(experiments::instrumented_summary(scale))
    });
}
