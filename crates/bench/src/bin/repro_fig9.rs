//! Reproduces Figure 9: total time with 100 `>=`-only queries vs. n_min, on
//! the real datasets, comparing the `_E` variants against the pruning `_O`
//! variants. Pass `--quick` for a reduced run.

use tvq_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let results = experiments::fig9(scale);
    print!(
        "{}",
        experiments::render(
            "Figure 9: total time vs. n_min (>=-only queries)",
            "n_min",
            &results
        )
    );
}
