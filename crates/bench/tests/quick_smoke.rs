//! Smoke tests for the reproduction experiments: every `repro_*` binary's
//! underlying experiment must, at `--quick` scale, produce non-empty series
//! with finite, non-negative timings (or, for Table 6, a complete table).
//!
//! One test per experiment so the suite parallelises across the figure set.

use tvq_bench::experiments::{self, Fig9Method};
use tvq_bench::{Scale, Series};

/// Asserts the common shape of a per-dataset figure result: at least one
/// dataset, the expected methods per dataset, and every point finite.
fn assert_figure_rows(figure: &str, results: &[(String, Vec<Series>)], expected_methods: &[&str]) {
    assert!(!results.is_empty(), "{figure}: no datasets");
    for (dataset, series) in results {
        let methods: Vec<&str> = series.iter().map(|s| s.method.as_str()).collect();
        assert_eq!(
            methods, expected_methods,
            "{figure}/{dataset}: unexpected method set"
        );
        for s in series {
            assert!(
                !s.points.is_empty(),
                "{figure}/{dataset}/{}: no data points",
                s.method
            );
            for (x, seconds) in &s.points {
                assert!(
                    seconds.is_finite() && *seconds >= 0.0,
                    "{figure}/{dataset}/{}: non-finite timing at x={x}: {seconds}",
                    s.method
                );
            }
        }
    }
}

const MCOS_METHODS: [&str; 3] = ["NAIVE", "MFS", "SSG"];

#[test]
fn table6_quick_reports_every_dataset_row() {
    let table = experiments::table6(Scale::Quick);
    for name in ["V1", "V2", "D1", "D2", "M1", "M2"] {
        let row = table
            .lines()
            .find(|line| line.starts_with(name))
            .unwrap_or_else(|| panic!("missing row for {name} in:\n{table}"));
        // Every numeric cell of the row must parse as a finite number.
        let numbers: Vec<f64> = row
            .split(['|', '/'])
            .skip(1)
            .map(|cell| cell.trim().parse::<f64>().expect("numeric cell"))
            .collect();
        assert_eq!(numbers.len(), 10, "row {name} incomplete: {row}");
        assert!(numbers.iter().all(|n| n.is_finite() && *n >= 0.0));
    }
}

#[test]
fn fig4_quick_produces_finite_series() {
    assert_figure_rows("fig4", &experiments::fig4(Scale::Quick), &MCOS_METHODS);
}

#[test]
fn fig5_quick_produces_finite_series() {
    assert_figure_rows("fig5", &experiments::fig5(Scale::Quick), &MCOS_METHODS);
}

#[test]
fn fig6_quick_produces_finite_series() {
    assert_figure_rows("fig6", &experiments::fig6(Scale::Quick), &MCOS_METHODS);
}

#[test]
fn fig7_quick_produces_finite_series() {
    let results = experiments::fig7(Scale::Quick);
    assert_figure_rows("fig7", &results, &MCOS_METHODS);
    // The x axis is the id-reuse parameter po = 0..=3.
    for (dataset, series) in &results {
        for s in series {
            let xs: Vec<&str> = s.points.iter().map(|(x, _)| x.as_str()).collect();
            assert_eq!(xs, ["0", "1", "2", "3"], "fig7/{dataset}/{}", s.method);
        }
    }
}

#[test]
fn fig8_quick_produces_finite_series() {
    assert_figure_rows("fig8", &experiments::fig8(Scale::Quick), &MCOS_METHODS);
}

#[test]
fn fig9_quick_produces_finite_series_for_all_five_variants() {
    let expected: Vec<&str> = Fig9Method::ALL.iter().map(|m| m.name()).collect();
    assert_figure_rows("fig9", &experiments::fig9(Scale::Quick), &expected);
}

#[test]
fn fig10_quick_produces_finite_per_dataset_averages() {
    let series = experiments::fig10(Scale::Quick);
    let methods: Vec<&str> = series.iter().map(|s| s.method.as_str()).collect();
    assert_eq!(methods, MCOS_METHODS);
    for s in &series {
        let datasets: Vec<&str> = s.points.iter().map(|(x, _)| x.as_str()).collect();
        assert_eq!(
            datasets,
            ["V1", "V2", "D1", "D2", "M1", "M2"],
            "{}",
            s.method
        );
        assert!(s
            .points
            .iter()
            .all(|(_, seconds)| seconds.is_finite() && *seconds >= 0.0));
    }
}
