//! Multi-camera feed generation.
//!
//! A multi-feed deployment ingests frames from N cameras concurrently. This
//! module synthesises such a deployment: each camera produces an independent
//! feed (a sequence of [`FrameObjects`]) generated from a [`DatasetProfile`]
//! with a per-feed seed, tagged with a [`FeedId`]. The [`interleave`] helper
//! then turns the per-feed sequences into round-robin batches of
//! `(FeedId, FrameObjects)` pairs — the ingestion shape the multi-feed
//! engine's `push_batch` consumes — while preserving each feed's frame
//! order.
//!
//! # Example
//!
//! ```
//! use tvq_video::{generate_camera_grid, interleave, DatasetProfile};
//!
//! let feeds = generate_camera_grid(3, &DatasetProfile::d1().truncated(40), 7);
//! assert_eq!(feeds.len(), 3);
//! let batches = interleave(&feeds, 16);
//! // Every frame of every feed lands in exactly one batch.
//! let total: usize = batches.iter().map(|b| b.len()).sum();
//! assert_eq!(total, feeds.iter().map(|f| f.frames.len()).sum::<usize>());
//! ```

use tvq_common::{FeedId, FrameObjects};

use crate::generator::generate;
use crate::profiles::DatasetProfile;

/// One camera's feed: a feed identifier and the frame sequence the camera
/// produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CameraFeed {
    /// The feed's identifier (its index in the deployment).
    pub feed: FeedId,
    /// The feed's frames, in presentation order.
    pub frames: Vec<FrameObjects>,
}

/// Derives the generation seed of feed `feed` from a deployment seed.
///
/// SplitMix64-style mixing keeps per-feed streams decorrelated even for
/// adjacent feed identifiers.
pub fn feed_seed(seed: u64, feed: FeedId) -> u64 {
    let mut z = seed
        .wrapping_add(u64::from(feed.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates one feed per profile: feed `i` is synthesised from
/// `profiles[i]` with a seed derived from `seed` and the feed id.
/// Deterministic for a given `(profiles, seed)` pair.
pub fn generate_feeds(profiles: &[DatasetProfile], seed: u64) -> Vec<CameraFeed> {
    profiles
        .iter()
        .enumerate()
        .map(|(index, profile)| {
            let feed = FeedId(index as u32);
            let relation = generate(profile, feed_seed(seed, feed));
            CameraFeed {
                feed,
                frames: relation.frames().cloned().collect(),
            }
        })
        .collect()
}

/// Generates a homogeneous camera grid: `feeds` cameras all shaped like
/// `profile`, each with an independent per-feed seed.
pub fn generate_camera_grid(feeds: usize, profile: &DatasetProfile, seed: u64) -> Vec<CameraFeed> {
    let profiles = vec![profile.clone(); feeds];
    generate_feeds(&profiles, seed)
}

/// Interleaves per-feed frame sequences round-robin (frame 0 of every feed,
/// then frame 1 of every feed, ...) and chunks the stream into batches of at
/// most `batch_size` tagged frames.
///
/// Within the concatenated batches each feed's frames appear in their
/// original order, which is the ingestion contract of the multi-feed
/// engine's `push_batch`.
///
/// # Panics
///
/// Panics if `batch_size` is zero.
pub fn interleave(feeds: &[CameraFeed], batch_size: usize) -> Vec<Vec<(FeedId, FrameObjects)>> {
    assert!(batch_size > 0, "batch size must be positive");
    let longest = feeds.iter().map(|f| f.frames.len()).max().unwrap_or(0);
    let mut batches = Vec::new();
    let mut current: Vec<(FeedId, FrameObjects)> = Vec::with_capacity(batch_size);
    for index in 0..longest {
        for feed in feeds {
            if let Some(frame) = feed.frames.get(index) {
                current.push((feed.feed, frame.clone()));
                if current.len() == batch_size {
                    batches.push(std::mem::take(&mut current));
                }
            }
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::FrameId;

    #[test]
    fn feeds_are_deterministic_and_distinct() {
        let a = generate_camera_grid(3, &DatasetProfile::d1().truncated(60), 11);
        let b = generate_camera_grid(3, &DatasetProfile::d1().truncated(60), 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for (index, feed) in a.iter().enumerate() {
            assert_eq!(feed.feed, FeedId(index as u32));
            assert_eq!(feed.frames.len(), 60);
        }
        // Different per-feed seeds: the cameras do not all see the same film.
        assert_ne!(a[0].frames, a[1].frames);
        assert_ne!(
            generate_camera_grid(3, &DatasetProfile::d1().truncated(60), 12),
            a
        );
    }

    #[test]
    fn heterogeneous_feeds_follow_their_profiles() {
        let feeds = generate_feeds(
            &[
                DatasetProfile::v1().truncated(30),
                DatasetProfile::m2().truncated(50),
            ],
            5,
        );
        assert_eq!(feeds.len(), 2);
        assert_eq!(feeds[0].frames.len(), 30);
        assert_eq!(feeds[1].frames.len(), 50);
    }

    #[test]
    fn interleave_preserves_per_feed_order_and_covers_every_frame() {
        let feeds = generate_feeds(
            &[
                DatasetProfile::d1().truncated(20),
                DatasetProfile::d2().truncated(35),
            ],
            3,
        );
        let batches = interleave(&feeds, 7);
        assert!(batches.iter().all(|b| b.len() <= 7));
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 55);
        // Per-feed frame ids are strictly increasing across the whole stream.
        let mut last: std::collections::HashMap<FeedId, FrameId> = Default::default();
        for (feed, frame) in batches.iter().flatten() {
            if let Some(previous) = last.insert(*feed, frame.fid) {
                assert!(previous < frame.fid, "feed {feed} went backwards");
            }
        }
    }

    #[test]
    fn feed_seed_mixes_feed_ids() {
        assert_ne!(feed_seed(1, FeedId(0)), feed_seed(1, FeedId(1)));
        assert_ne!(feed_seed(1, FeedId(0)), feed_seed(2, FeedId(0)));
        assert_eq!(feed_seed(9, FeedId(4)), feed_seed(9, FeedId(4)));
    }
}
