//! Tracker-id recycling feeds.
//!
//! The [`churn`](crate::churn) generator mints a **fresh** identifier for
//! every replacement object — the regime that exercises arena compaction.
//! Real trackers do the opposite: identifiers come from a finite counter or
//! pool and are **recycled** once their previous owner is gone. The next
//! object behind a recycled id is a different physical object and may well
//! be of a different class — exactly the hazard the engine's object
//! lifecycle (generation tags, alias ids, epoch retirement) exists for.
//!
//! [`id_reuse_feed`] synthesises that regime deterministically (pure
//! arithmetic, no RNG): a rolling population of `population` concurrent
//! objects in which every [`turnover_interval`](IdReuseProfile) frames the
//! oldest member leaves and a newcomer enters. Departed identifiers enter a
//! FIFO free pool; a newcomer takes the pool's oldest identifier once it
//! has rested for at least [`recycle_delay`](IdReuseProfile) frames (fresh
//! identifiers are minted only while the pool is dry, so the id universe
//! stays *finite* while the object universe is unbounded). Each newcomer's
//! class flips with its generation — recycled identifiers routinely cross
//! the class boundary. A rolling occlusion hides one population slot at a
//! time so every turnover period still yields several distinct object sets.
//!
//! With `recycle_delay` **shorter** than the query window, recycling lands
//! while old-generation states are still live — the splice hazard; with it
//! longer, recycling exercises the retirement path instead. The default
//! profile keeps it short on purpose.

use tvq_common::{ClassId, FeedId, FrameId, FrameObjects, ObjectId};

use crate::multifeed::CameraFeed;

/// Shape of an id-recycling feed. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdReuseProfile {
    /// Total frames to synthesise.
    pub frames: u64,
    /// Concurrent objects per frame (before occlusion).
    pub population: u32,
    /// Frames between object replacements (one per interval).
    pub turnover_interval: u64,
    /// Frames a released identifier rests in the pool before it may be
    /// recycled to a new object.
    pub recycle_delay: u64,
    /// Length of the rolling occlusion rotation (frames per slot).
    pub occlusion_period: u64,
    /// How many frames of each occlusion period the slot is hidden for.
    pub occlusion_duty: u64,
    /// Whether departures emit explicit end-of-track events
    /// ([`FrameObjects::track_ends`]) on their turnover frame. Off by
    /// default: the no-events feed is the regime the engine's coarser reuse
    /// detection (class changes, epoch retirement) — and the committed
    /// bench gates — are calibrated against.
    pub emit_track_ends: bool,
}

impl IdReuseProfile {
    /// The default recycling shape: 16 concurrent objects, a replacement
    /// every 8 frames, released ids recycled after resting 8 frames (well
    /// inside the 60-frame bench window, so reuse regularly lands while
    /// old-generation states are live), and a 24-frame occlusion rotation.
    ///
    /// Classes alternate with the admission generation, so with these
    /// parameters the steady-state recycle offset (`population + 1`
    /// generations) is odd and **every recycled identifier returns with
    /// the opposite class** — the worst case for any layer tempted to
    /// trust a stale class.
    pub const fn new(frames: u64) -> Self {
        IdReuseProfile {
            frames,
            population: 16,
            turnover_interval: 8,
            recycle_delay: 8,
            occlusion_period: 24,
            occlusion_duty: 9,
            emit_track_ends: false,
        }
    }

    /// Turns on explicit end-of-track events for departures.
    pub const fn with_track_ends(mut self) -> Self {
        self.emit_track_ends = true;
        self
    }

    /// Number of object *generations* the feed will produce: the initial
    /// population plus one replacement per completed turnover interval.
    pub fn generations(&self) -> u64 {
        if self.frames == 0 {
            return 0;
        }
        u64::from(self.population) + (self.frames - 1) / self.turnover_interval
    }
}

/// One live population member.
#[derive(Debug, Clone, Copy)]
struct Member {
    id: u32,
    class: ClassId,
    /// Population slot (drives the occlusion rotation).
    slot: u64,
}

/// Synthesises one id-recycling feed. Fully deterministic: identical
/// profiles produce identical feeds on every run and platform.
pub fn id_reuse_feed(feed: FeedId, profile: &IdReuseProfile) -> CameraFeed {
    assert!(profile.population > 0, "population must be positive");
    assert!(
        profile.turnover_interval > 0,
        "turnover interval must be positive"
    );
    assert!(
        profile.occlusion_period > 0,
        "occlusion period must be positive"
    );
    let population = u64::from(profile.population);
    // Decorrelate feeds: each feed's ids live in their own block.
    let id_base = u64::from(feed.raw()) * 1_000_000_007 % u64::from(u32::MAX - 2_000_000);

    let mut next_fresh = 0u32;
    let mut generation = 0u64;
    let mut members: Vec<Member> = Vec::with_capacity(profile.population as usize);
    // FIFO pool of `(identifier, release frame)` pairs.
    let mut pool: std::collections::VecDeque<(u32, u64)> = std::collections::VecDeque::new();

    let mut admit = |pool: &mut std::collections::VecDeque<(u32, u64)>, frame: u64| -> Member {
        let id = match pool.front() {
            Some(&(id, released)) if frame >= released + profile.recycle_delay => {
                pool.pop_front();
                id
            }
            _ => {
                let id = next_fresh;
                next_fresh += 1;
                id
            }
        };
        // Class flips with the generation: a recycled identifier's new
        // owner regularly sits on the other side of the class boundary.
        let member = Member {
            id,
            class: ClassId((generation % 2) as u16),
            slot: generation % population,
        };
        generation += 1;
        member
    };

    for _ in 0..population {
        let member = admit(&mut pool, 0);
        members.push(member);
    }

    let frames = (0..profile.frames)
        .map(|i| {
            let mut ends: Vec<ObjectId> = Vec::new();
            if i > 0 && i % profile.turnover_interval == 0 {
                // The oldest member departs; its id rests, then recycles.
                let departed = members.remove(0);
                pool.push_back((departed.id, i));
                if profile.emit_track_ends {
                    ends.push(ObjectId((id_base + u64::from(departed.id)) as u32));
                }
                let member = admit(&mut pool, i);
                members.push(member);
            }
            let occluded_slot = (i / profile.occlusion_period + 1) % population;
            let occlusion_active = i % profile.occlusion_period < profile.occlusion_duty;
            let detections = members
                .iter()
                .filter(|m| !(occlusion_active && m.slot == occluded_slot))
                .map(|m| (ObjectId((id_base + u64::from(m.id)) as u32), m.class))
                .collect();
            FrameObjects::new(FrameId(i), detections).with_track_ends(ends)
        })
        .collect();
    CameraFeed { feed, frames }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn feed_is_deterministic_and_sized() {
        let profile = IdReuseProfile::new(300);
        let a = id_reuse_feed(FeedId(0), &profile);
        let b = id_reuse_feed(FeedId(0), &profile);
        assert_eq!(a, b);
        assert_eq!(a.frames.len(), 300);
        for frame in &a.frames {
            let visible = frame.classes.len() as u32;
            assert!(visible == profile.population || visible == profile.population - 1);
        }
    }

    #[test]
    fn identifiers_are_recycled_into_a_finite_universe() {
        let profile = IdReuseProfile::new(2000);
        let feed = id_reuse_feed(FeedId(0), &profile);
        let ids: BTreeSet<ObjectId> = feed
            .frames
            .iter()
            .flat_map(|f| f.classes.iter().map(|&(id, _)| id))
            .collect();
        // Far fewer distinct ids than generations: the pool recycles.
        assert!(profile.generations() > 2 * ids.len() as u64);
        // And the universe is bounded by population + ids resting in the
        // pool (at most one release per turnover interval within the
        // recycle delay, rounded up, plus pipeline slack).
        let bound =
            u64::from(profile.population) + profile.recycle_delay / profile.turnover_interval + 2;
        assert!(
            (ids.len() as u64) <= bound,
            "{} ids exceed bound {}",
            ids.len(),
            bound
        );
    }

    #[test]
    fn recycled_ids_cross_class_boundaries() {
        let profile = IdReuseProfile::new(1200);
        let feed = id_reuse_feed(FeedId(0), &profile);
        // Track the classes each id appears with over the feed's lifetime.
        let mut classes_of: BTreeMap<ObjectId, BTreeSet<ClassId>> = BTreeMap::new();
        for frame in &feed.frames {
            for &(id, class) in &frame.classes {
                classes_of.entry(id).or_default().insert(class);
            }
        }
        let crossers = classes_of.values().filter(|set| set.len() > 1).count();
        assert!(
            crossers >= classes_of.len() / 2,
            "only {crossers}/{} ids ever crossed the class boundary",
            classes_of.len()
        );
    }

    #[test]
    fn feeds_do_not_share_identifiers() {
        let profile = IdReuseProfile::new(120);
        let collect = |feed: &CameraFeed| -> BTreeSet<ObjectId> {
            feed.frames
                .iter()
                .flat_map(|f| f.classes.iter().map(|&(id, _)| id))
                .collect()
        };
        let a = collect(&id_reuse_feed(FeedId(0), &profile));
        let b = collect(&id_reuse_feed(FeedId(1), &profile));
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn track_ends_cover_every_departure_and_default_off() {
        let profile = IdReuseProfile::new(200);
        let silent = id_reuse_feed(FeedId(0), &profile);
        assert!(silent.frames.iter().all(|f| f.track_ends.is_empty()));

        let feed = id_reuse_feed(FeedId(0), &profile.with_track_ends());
        // Detections are identical — only the event channel differs.
        for (a, b) in silent.frames.iter().zip(&feed.frames) {
            assert_eq!(a.classes, b.classes);
        }
        let mut ended = 0usize;
        for frame in &feed.frames {
            let turnover = frame.fid.raw() > 0 && frame.fid.raw() % profile.turnover_interval == 0;
            assert_eq!(frame.track_ends.len(), usize::from(turnover));
            ended += frame.track_ends.len();
            // An ended id may already be recycled on this very frame (the
            // end applies first), but the *departed object* is gone.
            for &end in &frame.track_ends {
                assert!(end.raw() > 0 || frame.fid.raw() > 0);
            }
        }
        assert_eq!(
            ended as u64,
            (profile.frames - 1) / profile.turnover_interval
        );
    }

    #[test]
    fn both_classes_keep_appearing() {
        let profile = IdReuseProfile::new(240);
        let feed = id_reuse_feed(FeedId(0), &profile);
        for frame in &feed.frames {
            let cars = frame
                .classes
                .iter()
                .filter(|&&(_, c)| c == ClassId(1))
                .count();
            let people = frame.classes.len() - cars;
            assert!(cars >= 2 && people >= 2, "frame {} lost a class", frame.fid);
        }
    }
}
