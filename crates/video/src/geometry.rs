//! Plain 2-D geometry used by the scene simulator.

/// A point (or vector) in world coordinates, measured in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Component-wise addition.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Euclidean distance to another point.
    pub fn distance_to(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned bounding box, stored as centre plus half extents.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BoundingBox {
    /// Centre of the box.
    pub centre: Point,
    /// Half of the box width.
    pub half_width: f64,
    /// Half of the box height.
    pub half_height: f64,
}

impl BoundingBox {
    /// Creates a bounding box from its centre and full width/height.
    pub fn new(centre: Point, width: f64, height: f64) -> Self {
        BoundingBox {
            centre,
            half_width: width / 2.0,
            half_height: height / 2.0,
        }
    }

    /// Box area in square pixels.
    pub fn area(&self) -> f64 {
        4.0 * self.half_width * self.half_height
    }

    /// Left edge.
    pub fn left(&self) -> f64 {
        self.centre.x - self.half_width
    }

    /// Right edge.
    pub fn right(&self) -> f64 {
        self.centre.x + self.half_width
    }

    /// Top edge (smaller y).
    pub fn top(&self) -> f64 {
        self.centre.y - self.half_height
    }

    /// Bottom edge (larger y).
    pub fn bottom(&self) -> f64 {
        self.centre.y + self.half_height
    }

    /// Area of the intersection of two boxes.
    pub fn intersection_area(&self, other: &BoundingBox) -> f64 {
        let w = (self.right().min(other.right()) - self.left().max(other.left())).max(0.0);
        let h = (self.bottom().min(other.bottom()) - self.top().max(other.top())).max(0.0);
        w * h
    }

    /// Intersection-over-union of two boxes (0 when disjoint, 1 when equal).
    pub fn iou(&self, other: &BoundingBox) -> f64 {
        let inter = self.intersection_area(other);
        if inter == 0.0 {
            return 0.0;
        }
        inter / (self.area() + other.area() - inter)
    }

    /// Fraction of this box covered by `other` (used for occlusion checks:
    /// an object mostly covered by a closer object is not detected).
    pub fn coverage_by(&self, other: &BoundingBox) -> f64 {
        let area = self.area();
        if area == 0.0 {
            return 0.0;
        }
        self.intersection_area(other) / area
    }

    /// Whether any part of this box lies inside the viewport rectangle
    /// `[0, width] x [0, height]` after subtracting the viewport origin.
    pub fn visible_in(&self, origin: Point, width: f64, height: f64) -> bool {
        self.right() > origin.x
            && self.left() < origin.x + width
            && self.bottom() > origin.y
            && self.top() < origin.y + height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let p = Point::new(1.0, 2.0).offset(3.0, -1.0);
        assert_eq!(p, Point::new(4.0, 1.0));
        assert!((Point::new(0.0, 0.0).distance_to(Point::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_edges_and_area() {
        let b = BoundingBox::new(Point::new(10.0, 20.0), 4.0, 6.0);
        assert_eq!(b.left(), 8.0);
        assert_eq!(b.right(), 12.0);
        assert_eq!(b.top(), 17.0);
        assert_eq!(b.bottom(), 23.0);
        assert!((b.area() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn iou_of_identical_and_disjoint_boxes() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), 10.0, 10.0);
        let b = BoundingBox::new(Point::new(0.0, 0.0), 10.0, 10.0);
        assert!((a.iou(&b) - 1.0).abs() < 1e-12);
        let c = BoundingBox::new(Point::new(100.0, 100.0), 10.0, 10.0);
        assert_eq!(a.iou(&c), 0.0);
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn partial_overlap_coverage() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), 10.0, 10.0);
        let b = BoundingBox::new(Point::new(5.0, 0.0), 10.0, 10.0);
        // Half of a is covered by b.
        assert!((a.coverage_by(&b) - 0.5).abs() < 1e-12);
        assert!((a.iou(&b) - (50.0 / 150.0)).abs() < 1e-12);
    }

    #[test]
    fn viewport_visibility() {
        let b = BoundingBox::new(Point::new(5.0, 5.0), 2.0, 2.0);
        assert!(b.visible_in(Point::new(0.0, 0.0), 100.0, 100.0));
        assert!(!b.visible_in(Point::new(50.0, 50.0), 100.0, 100.0));
        // Partially visible at the boundary counts as visible.
        assert!(b.visible_in(Point::new(5.5, 0.0), 100.0, 100.0));
    }
}
