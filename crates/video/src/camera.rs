//! Camera model.
//!
//! The paper's datasets split into feeds captured by *static* cameras
//! (VisualRoad, Detrac) and *moving* cameras (MOT16). A moving camera shrinks
//! the time each object stays in view and continuously introduces new
//! objects, which is exactly the regime in which SSG outperforms MFS. The
//! camera model therefore only needs a moving viewport over the world.

use crate::geometry::{BoundingBox, Point};

/// A camera observing the scene through a rectangular viewport.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    /// Viewport width in pixels.
    pub width: f64,
    /// Viewport height in pixels.
    pub height: f64,
    /// Viewport origin (top-left corner) at frame 0.
    pub origin: Point,
    /// Per-frame viewport displacement (zero for a static camera).
    pub velocity: Point,
}

impl Camera {
    /// A static camera covering `width x height` starting at the world origin.
    pub fn fixed(width: f64, height: f64) -> Self {
        Camera {
            width,
            height,
            origin: Point::new(0.0, 0.0),
            velocity: Point::new(0.0, 0.0),
        }
    }

    /// A camera panning with the given per-frame velocity.
    pub fn panning(width: f64, height: f64, vx: f64, vy: f64) -> Self {
        Camera {
            width,
            height,
            origin: Point::new(0.0, 0.0),
            velocity: Point::new(vx, vy),
        }
    }

    /// Whether the camera moves.
    pub fn is_moving(&self) -> bool {
        self.velocity.x != 0.0 || self.velocity.y != 0.0
    }

    /// Viewport origin at the given frame.
    pub fn origin_at(&self, frame: u64) -> Point {
        self.origin.offset(
            self.velocity.x * frame as f64,
            self.velocity.y * frame as f64,
        )
    }

    /// Whether a world-space bounding box is (partially) visible at `frame`.
    pub fn sees(&self, frame: u64, bbox: &BoundingBox) -> bool {
        bbox.visible_in(self.origin_at(frame), self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_camera_keeps_its_viewport() {
        let camera = Camera::fixed(100.0, 100.0);
        assert!(!camera.is_moving());
        assert_eq!(camera.origin_at(50), Point::new(0.0, 0.0));
        let inside = BoundingBox::new(Point::new(50.0, 50.0), 10.0, 10.0);
        let outside = BoundingBox::new(Point::new(500.0, 50.0), 10.0, 10.0);
        assert!(camera.sees(0, &inside));
        assert!(!camera.sees(0, &outside));
    }

    #[test]
    fn panning_camera_changes_what_it_sees() {
        let camera = Camera::panning(100.0, 100.0, 10.0, 0.0);
        assert!(camera.is_moving());
        let object = BoundingBox::new(Point::new(250.0, 50.0), 20.0, 20.0);
        assert!(!camera.sees(0, &object));
        assert!(camera.sees(20, &object));
        assert!(!camera.sees(40, &object));
    }
}
