//! Simulated object detector (the Faster R-CNN stand-in).
//!
//! The detector observes the ground-truth scene through the camera and
//! reports, per frame, the set of visible objects. It reproduces the failure
//! modes of a real detector that matter to the query layer:
//!
//! * **occlusion** — an object whose bounding box is mostly covered by a
//!   closer object is not detected;
//! * **random misses** — every visible object is dropped with a small
//!   probability (false negatives on blurry/small objects);
//! * **field of view** — objects outside the camera viewport are not seen.
//!
//! False positives (hallucinated objects) are not simulated: the tracking
//! layer of the paper's pipeline suppresses unconfirmed detections, so the
//! structured relation effectively contains only tracked objects.

use rand::rngs::StdRng;
use rand::Rng;

use tvq_common::{ClassId, TrackId};

use crate::camera::Camera;
use crate::scene::GroundTruth;

/// Configuration of the simulated detector.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// An object covered by closer objects beyond this fraction is occluded.
    pub occlusion_coverage: f64,
    /// Probability of missing a visible, unoccluded object.
    pub miss_rate: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            occlusion_coverage: 0.6,
            miss_rate: 0.02,
        }
    }
}

/// One detection reported by the simulated detector.
#[derive(Debug, Clone, Copy)]
pub struct Detection {
    /// Ground-truth track the detection belongs to (the tracker does not see
    /// this field; it is used to evaluate tracking quality).
    pub track: TrackId,
    /// Detected class (assumed correct: classification errors do not change
    /// the structure of the query-processing problem).
    pub class: ClassId,
}

/// The simulated detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedDetector {
    config: DetectorConfig,
}

impl SimulatedDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        SimulatedDetector { config }
    }

    /// Runs the detector on one frame of ground truth.
    pub fn detect(
        &self,
        frame: u64,
        camera: &Camera,
        ground_truth: &[GroundTruth],
        rng: &mut StdRng,
    ) -> Vec<Detection> {
        let mut detections = Vec::new();
        for (idx, observation) in ground_truth.iter().enumerate() {
            if !camera.sees(frame, &observation.bbox) {
                continue;
            }
            // Occlusion: total coverage by strictly closer objects.
            let mut covered = 0.0;
            for (other_idx, other) in ground_truth.iter().enumerate() {
                if other_idx == idx || other.depth >= observation.depth {
                    continue;
                }
                covered += observation.bbox.coverage_by(&other.bbox);
            }
            if covered >= self.config.occlusion_coverage {
                continue;
            }
            if rng.gen_bool(self.config.miss_rate.clamp(0.0, 1.0)) {
                continue;
            }
            detections.push(Detection {
                track: observation.track,
                class: observation.class,
            });
        }
        detections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BoundingBox, Point};
    use rand::SeedableRng;

    fn gt(track: u64, x: f64, depth: f64) -> GroundTruth {
        GroundTruth {
            track: TrackId(track),
            class: ClassId(1),
            bbox: BoundingBox::new(Point::new(x, 50.0), 40.0, 40.0),
            depth,
        }
    }

    #[test]
    fn detects_visible_objects() {
        let detector = SimulatedDetector::new(DetectorConfig {
            occlusion_coverage: 0.6,
            miss_rate: 0.0,
        });
        let camera = Camera::fixed(200.0, 200.0);
        let mut rng = StdRng::seed_from_u64(1);
        let detections =
            detector.detect(0, &camera, &[gt(0, 50.0, 1.0), gt(1, 150.0, 2.0)], &mut rng);
        assert_eq!(detections.len(), 2);
    }

    #[test]
    fn occluded_objects_are_missed() {
        let detector = SimulatedDetector::new(DetectorConfig {
            occlusion_coverage: 0.6,
            miss_rate: 0.0,
        });
        let camera = Camera::fixed(200.0, 200.0);
        let mut rng = StdRng::seed_from_u64(1);
        // Both at x=50: the farther object (depth 5) is fully covered by the
        // closer one (depth 1).
        let detections =
            detector.detect(0, &camera, &[gt(0, 50.0, 1.0), gt(1, 50.0, 5.0)], &mut rng);
        let tracks: Vec<u64> = detections.iter().map(|d| d.track.raw()).collect();
        assert_eq!(tracks, vec![0]);
    }

    #[test]
    fn out_of_view_objects_are_not_detected() {
        let detector = SimulatedDetector::default();
        let camera = Camera::fixed(100.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let detections = detector.detect(0, &camera, &[gt(0, 500.0, 1.0)], &mut rng);
        assert!(detections.is_empty());
    }

    #[test]
    fn miss_rate_one_drops_everything() {
        let detector = SimulatedDetector::new(DetectorConfig {
            occlusion_coverage: 0.9,
            miss_rate: 1.0,
        });
        let camera = Camera::fixed(200.0, 200.0);
        let mut rng = StdRng::seed_from_u64(1);
        let detections = detector.detect(0, &camera, &[gt(0, 50.0, 1.0)], &mut rng);
        assert!(detections.is_empty());
    }
}
