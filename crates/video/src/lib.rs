//! Video-feed substrate: the simulated vision stack.
//!
//! The paper's architecture (Figure 2) starts with an Object Detection &
//! Tracking module built on Faster R-CNN and Deep SORT. That module's only
//! interaction with the rest of the system is the structured relation
//! `VR(fid, id, class)`, so this crate provides two ways to produce such a
//! relation without the real vision models:
//!
//! * a **scene-level simulation** — ground-truth objects moving through a
//!   2-D world ([`scene`]), observed by a static or panning [`camera`],
//!   detected by a [`detector`] that honours occlusion and misses, and
//!   tracked by a [`tracker`] that bridges short occlusions, commits identity
//!   switches after long ones, and implements the paper's `po` id-reuse
//!   parameter; the [`pipeline`] module wires the four together;
//! * a **statistical generator** ([`generator`]) that directly synthesises a
//!   relation matching the Table-6 statistics of one of the paper's six
//!   evaluation datasets ([`profiles`]), which is what the benchmark harness
//!   uses;
//! * a **multi-camera generator** ([`multifeed`]) that synthesises N
//!   independent feeds tagged with `FeedId`s and interleaves them into the
//!   round-robin batches the sharded multi-feed engine ingests;
//! * a **long-churn generator** ([`churn`]) that compresses hours of
//!   unbounded object turnover into a benchmarkable frame budget — the
//!   workload that exercises the interner's epoch compaction;
//! * an **id-recycling generator** ([`id_reuse`]) in which departed tracker
//!   identifiers return for new objects across class boundaries — the
//!   workload that exercises the engine's object lifecycle (generation
//!   tags, alias ids, epoch retirement of dead identifiers);
//! * a **skewed camera grid** ([`skewed_grid()`](skewed_grid::skewed_grid)) in which a couple of hot
//!   cameras colliding on one static shard carry ~90% of the fleet's
//!   maintenance work, with a mid-run hotspot flip — the workload that
//!   exercises the multi-feed engine's work-stealing scheduler.
//!
//! Real detector output can also be ingested from CSV via
//! [`tvq_common::io`]; everything downstream is agnostic to the source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod churn;
pub mod detector;
pub mod generator;
pub mod geometry;
pub mod id_reuse;
pub mod multifeed;
pub mod pipeline;
pub mod profiles;
pub mod scene;
pub mod skewed_grid;
pub mod tracker;

pub use camera::Camera;
pub use churn::{long_churn_feed, ChurnProfile};
pub use detector::{Detection, DetectorConfig, SimulatedDetector};
pub use generator::{apply_id_reuse, generate, generate_with_id_reuse};
pub use geometry::{BoundingBox, Point};
pub use id_reuse::{id_reuse_feed, IdReuseProfile};
pub use multifeed::{feed_seed, generate_camera_grid, generate_feeds, interleave, CameraFeed};
pub use pipeline::ScenePipeline;
pub use profiles::DatasetProfile;
pub use scene::{populate_scene, Motion, Scene, SceneObject};
pub use skewed_grid::{skewed_grid, SkewProfile};
pub use tracker::{SimulatedTracker, TrackerConfig};
