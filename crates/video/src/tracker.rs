//! Simulated multi-object tracker (the Deep SORT stand-in).
//!
//! The tracker turns per-frame detections into persistent object identifiers.
//! It reproduces the tracking behaviour the paper's semantics are built
//! around:
//!
//! * objects keep the same identifier across frames, including across short
//!   occlusions (the gap simply shows up as missing frames for that id);
//! * after an occlusion longer than `max_gap` frames the tracker loses the
//!   association and assigns a **new identifier** (identity switch) — one of
//!   the detection errors the duration parameter `d` compensates for;
//! * the **id reuse parameter `po`** of Section 6.2: each object identifier
//!   may be reused for up to `po` later objects after its original owner
//!   disappears, which is how the paper injects additional artificial
//!   occlusions into its datasets (Figure 7).

use std::collections::HashMap;
use std::collections::VecDeque;

use tvq_common::{ClassId, ObjectId, TrackId};

use crate::detector::Detection;

/// Configuration of the simulated tracker.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Maximum occlusion gap (in frames) the tracker can bridge while keeping
    /// the same object identifier.
    pub max_gap: u64,
    /// Number of times an identifier may be reused after its owner leaves
    /// (the paper's `po`; 0 disables reuse).
    pub id_reuse: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            max_gap: 30,
            id_reuse: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct ActiveTrack {
    object: ObjectId,
    last_seen: u64,
}

/// The simulated tracker.
#[derive(Debug)]
pub struct SimulatedTracker {
    config: TrackerConfig,
    active: HashMap<TrackId, ActiveTrack>,
    /// Identifiers released by expired tracks that may still be reused.
    reusable: VecDeque<ObjectId>,
    /// How many times each identifier has been reused so far.
    reuse_counts: HashMap<ObjectId, u32>,
    next_id: u32,
}

impl SimulatedTracker {
    /// Creates a tracker with the given configuration.
    pub fn new(config: TrackerConfig) -> Self {
        SimulatedTracker {
            config,
            active: HashMap::new(),
            reusable: VecDeque::new(),
            reuse_counts: HashMap::new(),
            next_id: 0,
        }
    }

    fn allocate_id(&mut self) -> ObjectId {
        if self.config.id_reuse > 0 {
            if let Some(id) = self.reusable.pop_front() {
                *self.reuse_counts.entry(id).or_insert(0) += 1;
                return id;
            }
        }
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        id
    }

    fn release_id(&mut self, id: ObjectId) {
        if self.config.id_reuse == 0 {
            return;
        }
        let used = self.reuse_counts.get(&id).copied().unwrap_or(0);
        if used < self.config.id_reuse {
            self.reusable.push_back(id);
        }
    }

    /// Processes the detections of one frame, returning `(object id, class)`
    /// pairs — the tuples of the structured relation for this frame.
    pub fn track(&mut self, frame: u64, detections: &[Detection]) -> Vec<(ObjectId, ClassId)> {
        // Expire tracks whose occlusion gap exceeded the limit.
        let max_gap = self.config.max_gap;
        let mut expired: Vec<TrackId> = Vec::new();
        for (&track, state) in &self.active {
            if frame.saturating_sub(state.last_seen) > max_gap {
                expired.push(track);
            }
        }
        for track in expired {
            if let Some(state) = self.active.remove(&track) {
                self.release_id(state.object);
            }
        }

        let mut output = Vec::with_capacity(detections.len());
        for detection in detections {
            let object = match self.active.get_mut(&detection.track) {
                Some(state) => {
                    state.last_seen = frame;
                    state.object
                }
                None => {
                    let object = self.allocate_id();
                    self.active.insert(
                        detection.track,
                        ActiveTrack {
                            object,
                            last_seen: frame,
                        },
                    );
                    object
                }
            };
            output.push((object, detection.class));
        }
        output
    }

    /// Number of identifiers handed out so far.
    pub fn ids_allocated(&self) -> u32 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detection(track: u64) -> Detection {
        Detection {
            track: TrackId(track),
            class: ClassId(1),
        }
    }

    #[test]
    fn same_track_keeps_its_identifier() {
        let mut tracker = SimulatedTracker::new(TrackerConfig::default());
        let a = tracker.track(0, &[detection(7)]);
        let b = tracker.track(1, &[detection(7)]);
        assert_eq!(a, b);
        assert_eq!(tracker.ids_allocated(), 1);
    }

    #[test]
    fn short_occlusions_are_bridged() {
        let mut tracker = SimulatedTracker::new(TrackerConfig {
            max_gap: 5,
            id_reuse: 0,
        });
        let before = tracker.track(0, &[detection(3)]);
        tracker.track(1, &[]);
        tracker.track(2, &[]);
        let after = tracker.track(3, &[detection(3)]);
        assert_eq!(before, after);
    }

    #[test]
    fn long_occlusions_cause_identity_switches() {
        let mut tracker = SimulatedTracker::new(TrackerConfig {
            max_gap: 2,
            id_reuse: 0,
        });
        let before = tracker.track(0, &[detection(3)]);
        for frame in 1..6 {
            tracker.track(frame, &[]);
        }
        let after = tracker.track(6, &[detection(3)]);
        assert_ne!(before, after);
        assert_eq!(tracker.ids_allocated(), 2);
    }

    #[test]
    fn id_reuse_recycles_identifiers_up_to_po_times() {
        let mut tracker = SimulatedTracker::new(TrackerConfig {
            max_gap: 1,
            id_reuse: 2,
        });
        // Track 0 appears then disappears for good.
        let first = tracker.track(0, &[detection(0)]);
        for frame in 1..5 {
            tracker.track(frame, &[]);
        }
        // A brand-new ground-truth object appears: it reuses the released id.
        let second = tracker.track(5, &[detection(1)]);
        assert_eq!(first[0].0, second[0].0);
        // After exhausting the reuse budget a fresh id is allocated.
        for frame in 6..10 {
            tracker.track(frame, &[]);
        }
        let third = tracker.track(10, &[detection(2)]);
        assert_eq!(first[0].0, third[0].0);
        for frame in 11..15 {
            tracker.track(frame, &[]);
        }
        let fourth = tracker.track(15, &[detection(3)]);
        assert_ne!(first[0].0, fourth[0].0);
        assert_eq!(tracker.ids_allocated(), 2);
    }

    #[test]
    fn distinct_tracks_get_distinct_ids() {
        let mut tracker = SimulatedTracker::new(TrackerConfig::default());
        let out = tracker.track(0, &[detection(0), detection(1), detection(2)]);
        let ids: std::collections::HashSet<ObjectId> = out.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids.len(), 3);
    }
}
