//! Ground-truth scene model.
//!
//! The paper's pipeline starts from raw video processed by Faster R-CNN and
//! Deep SORT. We cannot run those models here, so we simulate the *scene*
//! they observe: objects of different classes move through a 2-D world on
//! simple trajectories, enter and leave, and overlap each other. The
//! simulated [detector](crate::detector) and [tracker](crate::tracker)
//! then observe this scene and produce the structured relation, reproducing
//! the phenomena the paper's query semantics must tolerate (occlusion, missed
//! detections, identity switches).

use rand::rngs::StdRng;
use rand::Rng;

use tvq_common::{ClassId, TrackId};

use crate::geometry::{BoundingBox, Point};

/// Motion model of a scene object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Motion {
    /// The object keeps a constant velocity (pixels per frame).
    Linear {
        /// Horizontal velocity.
        vx: f64,
        /// Vertical velocity.
        vy: f64,
    },
    /// The object stays around its spawn point, jittering randomly with the
    /// given step size (pedestrians loitering, parked cars).
    Loiter {
        /// Maximum per-frame displacement.
        step: f64,
    },
}

/// A ground-truth object in the scene.
#[derive(Debug, Clone)]
pub struct SceneObject {
    /// Ground-truth track identifier (what a perfect tracker would output).
    pub track: TrackId,
    /// Object class.
    pub class: ClassId,
    /// Frame at which the object enters the scene.
    pub enters_at: u64,
    /// Frame after which the object leaves the scene (exclusive).
    pub leaves_at: u64,
    /// Position at `enters_at`.
    pub spawn: Point,
    /// Bounding-box width in pixels.
    pub width: f64,
    /// Bounding-box height in pixels.
    pub height: f64,
    /// Motion model.
    pub motion: Motion,
    /// Distance from the camera (smaller = closer); closer objects occlude
    /// farther ones when their boxes overlap.
    pub depth: f64,
}

impl SceneObject {
    /// Whether the object is present in the scene at `frame`.
    pub fn present_at(&self, frame: u64) -> bool {
        frame >= self.enters_at && frame < self.leaves_at
    }

    /// Ground-truth bounding box at `frame` (deterministic for linear motion;
    /// loitering uses the supplied RNG).
    pub fn bbox_at(&self, frame: u64, rng: &mut StdRng) -> BoundingBox {
        let dt = frame.saturating_sub(self.enters_at) as f64;
        let centre = match self.motion {
            Motion::Linear { vx, vy } => self.spawn.offset(vx * dt, vy * dt),
            Motion::Loiter { step } => self
                .spawn
                .offset(rng.gen_range(-step..=step), rng.gen_range(-step..=step)),
        };
        BoundingBox::new(centre, self.width, self.height)
    }
}

/// A ground-truth scene: world bounds plus the objects that populate it.
#[derive(Debug, Clone)]
pub struct Scene {
    /// World width in pixels.
    pub width: f64,
    /// World height in pixels.
    pub height: f64,
    /// Total number of frames simulated.
    pub num_frames: u64,
    /// The scene's objects.
    pub objects: Vec<SceneObject>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new(width: f64, height: f64, num_frames: u64) -> Self {
        Scene {
            width,
            height,
            num_frames,
            objects: Vec::new(),
        }
    }

    /// Adds an object and returns its ground-truth track id.
    pub fn add_object(&mut self, mut object: SceneObject) -> TrackId {
        let track = TrackId(self.objects.len() as u64);
        object.track = track;
        self.objects.push(object);
        track
    }

    /// Ground-truth visible objects (track, class, bbox, depth) at `frame`,
    /// before any detector/occlusion effects.
    pub fn ground_truth_at(&self, frame: u64, rng: &mut StdRng) -> Vec<GroundTruth> {
        self.objects
            .iter()
            .filter(|o| o.present_at(frame))
            .map(|o| GroundTruth {
                track: o.track,
                class: o.class,
                bbox: o.bbox_at(frame, rng),
                depth: o.depth,
            })
            .collect()
    }
}

/// One ground-truth observation: an object's true position at a frame.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruth {
    /// Ground-truth track identifier.
    pub track: TrackId,
    /// Object class.
    pub class: ClassId,
    /// True bounding box in world coordinates.
    pub bbox: BoundingBox,
    /// Camera distance (smaller = closer).
    pub depth: f64,
}

/// Randomly populates a scene with objects of the given classes.
///
/// `class_weights` gives the relative frequency of each class; lifetimes are
/// drawn uniformly from `lifetime` and arrival frames uniformly over the
/// feed. Cars and trucks move linearly across the scene, people loiter.
pub fn populate_scene(
    scene: &mut Scene,
    rng: &mut StdRng,
    num_objects: usize,
    class_weights: &[(ClassId, f64)],
    lifetime: std::ops::RangeInclusive<u64>,
) {
    let total_weight: f64 = class_weights.iter().map(|&(_, w)| w).sum();
    for _ in 0..num_objects {
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut class = class_weights[0].0;
        for &(c, w) in class_weights {
            if pick < w {
                class = c;
                break;
            }
            pick -= w;
        }
        let lifetime_frames = rng.gen_range(lifetime.clone());
        let enters_at = rng.gen_range(0..scene.num_frames.max(1));
        let leaves_at = (enters_at + lifetime_frames).min(scene.num_frames);
        let spawn = Point::new(
            rng.gen_range(0.0..scene.width),
            rng.gen_range(0.0..scene.height),
        );
        let is_vehicle = class != ClassId(0);
        let motion = if is_vehicle {
            Motion::Linear {
                vx: rng.gen_range(-6.0..6.0),
                vy: rng.gen_range(-1.5..1.5),
            }
        } else {
            Motion::Loiter { step: 1.5 }
        };
        let (width, height) = if is_vehicle {
            (rng.gen_range(60.0..140.0), rng.gen_range(40.0..80.0))
        } else {
            (rng.gen_range(20.0..40.0), rng.gen_range(50.0..90.0))
        };
        scene.add_object(SceneObject {
            track: TrackId(0),
            class,
            enters_at,
            leaves_at,
            spawn,
            width,
            height,
            motion,
            depth: rng.gen_range(1.0..100.0),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn presence_window_is_half_open() {
        let object = SceneObject {
            track: TrackId(0),
            class: ClassId(1),
            enters_at: 5,
            leaves_at: 10,
            spawn: Point::new(0.0, 0.0),
            width: 10.0,
            height: 10.0,
            motion: Motion::Linear { vx: 1.0, vy: 0.0 },
            depth: 1.0,
        };
        assert!(!object.present_at(4));
        assert!(object.present_at(5));
        assert!(object.present_at(9));
        assert!(!object.present_at(10));
    }

    #[test]
    fn linear_motion_advances_with_time() {
        let object = SceneObject {
            track: TrackId(0),
            class: ClassId(1),
            enters_at: 0,
            leaves_at: 100,
            spawn: Point::new(10.0, 20.0),
            width: 4.0,
            height: 4.0,
            motion: Motion::Linear { vx: 2.0, vy: -1.0 },
            depth: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let b0 = object.bbox_at(0, &mut rng);
        let b5 = object.bbox_at(5, &mut rng);
        assert_eq!(b0.centre, Point::new(10.0, 20.0));
        assert_eq!(b5.centre, Point::new(20.0, 15.0));
    }

    #[test]
    fn ground_truth_filters_absent_objects() {
        let mut scene = Scene::new(1000.0, 800.0, 50);
        let mut rng = StdRng::seed_from_u64(2);
        populate_scene(
            &mut scene,
            &mut rng,
            20,
            &[(ClassId(0), 1.0), (ClassId(1), 2.0)],
            5..=20,
        );
        assert_eq!(scene.objects.len(), 20);
        let gt = scene.ground_truth_at(10, &mut rng);
        for observation in &gt {
            let object = &scene.objects[observation.track.raw() as usize];
            assert!(object.present_at(10));
        }
    }

    #[test]
    fn populate_respects_object_count_and_classes() {
        let mut scene = Scene::new(500.0, 500.0, 100);
        let mut rng = StdRng::seed_from_u64(3);
        populate_scene(&mut scene, &mut rng, 50, &[(ClassId(1), 1.0)], 10..=30);
        assert_eq!(scene.objects.len(), 50);
        assert!(scene.objects.iter().all(|o| o.class == ClassId(1)));
        assert!(scene.objects.iter().all(|o| o.leaves_at <= 100));
    }
}
