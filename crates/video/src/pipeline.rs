//! End-to-end detection/tracking pipeline over a simulated scene.
//!
//! This is the drop-in replacement for the paper's Object Detection &
//! Tracking module (Figure 2): a ground-truth [`Scene`] is observed through a
//! [`Camera`], the [`SimulatedDetector`] produces per-frame detections
//! (subject to occlusion and misses), and the [`SimulatedTracker`] assigns
//! persistent object identifiers. The output is the structured relation
//! `VR(fid, id, class)` consumed by MCOS generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tvq_common::{ClassRegistry, VideoRelation};

use crate::camera::Camera;
use crate::detector::{DetectorConfig, SimulatedDetector};
use crate::scene::Scene;
use crate::tracker::{SimulatedTracker, TrackerConfig};

/// A complete simulated vision pipeline.
#[derive(Debug)]
pub struct ScenePipeline {
    /// The ground-truth scene being filmed.
    pub scene: Scene,
    /// The observing camera.
    pub camera: Camera,
    /// Detector configuration.
    pub detector: DetectorConfig,
    /// Tracker configuration.
    pub tracker: TrackerConfig,
    /// Class registry used to label the output relation.
    pub registry: ClassRegistry,
}

impl ScenePipeline {
    /// Creates a pipeline with default detector/tracker settings and the
    /// default class registry.
    pub fn new(scene: Scene, camera: Camera) -> Self {
        ScenePipeline {
            scene,
            camera,
            detector: DetectorConfig::default(),
            tracker: TrackerConfig::default(),
            registry: ClassRegistry::with_default_classes(),
        }
    }

    /// Runs detection and tracking over every frame of the scene, producing
    /// the structured relation. Deterministic for a given seed.
    pub fn run(&self, seed: u64) -> VideoRelation {
        let mut rng = StdRng::seed_from_u64(seed);
        let detector = SimulatedDetector::new(self.detector);
        let mut tracker = SimulatedTracker::new(self.tracker);
        let mut relation = VideoRelation::new(self.registry.clone());
        for frame in 0..self.scene.num_frames {
            let ground_truth = self.scene.ground_truth_at(frame, &mut rng);
            let detections = detector.detect(frame, &self.camera, &ground_truth, &mut rng);
            let tracked = tracker.track(frame, &detections);
            relation.push_detections(tracked);
        }
        relation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::populate_scene;
    use tvq_common::{ClassId, DatasetStats};

    fn sample_pipeline(num_objects: usize, camera: Camera) -> ScenePipeline {
        let mut scene = Scene::new(1600.0, 900.0, 200);
        let mut rng = StdRng::seed_from_u64(11);
        populate_scene(
            &mut scene,
            &mut rng,
            num_objects,
            &[(ClassId(0), 1.0), (ClassId(1), 2.0), (ClassId(2), 0.5)],
            30..=120,
        );
        ScenePipeline::new(scene, camera)
    }

    #[test]
    fn pipeline_is_deterministic_per_seed() {
        let pipeline = sample_pipeline(40, Camera::fixed(1600.0, 900.0));
        let a = pipeline.run(3);
        let b = pipeline.run(3);
        assert_eq!(a.num_records(), b.num_records());
        assert_eq!(a.num_objects(), b.num_objects());
        let c = pipeline.run(4);
        // A different seed almost surely yields different detections.
        assert!(a.num_records() != c.num_records() || a.num_objects() != c.num_objects());
    }

    #[test]
    fn pipeline_produces_a_plausible_relation() {
        let pipeline = sample_pipeline(60, Camera::fixed(1600.0, 900.0));
        let relation = pipeline.run(7);
        assert_eq!(relation.num_frames(), 200);
        let stats = DatasetStats::of(&relation);
        assert!(stats.objects > 0);
        assert!(stats.objects_per_frame > 0.5);
        assert!(stats.frames_per_object > 5.0);
    }

    #[test]
    fn moving_camera_shortens_object_presence() {
        let static_stats =
            DatasetStats::of(&sample_pipeline(60, Camera::fixed(1600.0, 900.0)).run(5));
        let moving_stats =
            DatasetStats::of(&sample_pipeline(60, Camera::panning(800.0, 900.0, 12.0, 0.0)).run(5));
        assert!(
            moving_stats.frames_per_object < static_stats.frames_per_object,
            "moving camera should reduce frames per object: {} vs {}",
            moving_stats.frames_per_object,
            static_stats.frames_per_object
        );
    }
}
