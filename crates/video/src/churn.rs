//! Long-running feeds with unbounded object turnover.
//!
//! The paper's evaluation feeds are bounded: a fixed cast of objects
//! (re-)appears, so a per-feed set-interner arena saturates quickly. A
//! *deployment* feed is not like that — a traffic camera sees new vehicles
//! forever, and every new object id mints new object sets. This module
//! synthesises that regime, compressed: hours of turnover squeezed into a
//! frame budget a benchmark can afford.
//!
//! [`long_churn_feed`] maintains a rolling population of `population`
//! concurrent objects. Every `turnover_interval` frames the oldest object
//! leaves and a **fresh identifier** (never reused) enters; on top of the
//! turnover, a rolling occlusion hides one population slot for a stretch of
//! frames at a time, so each turnover period still produces several
//! distinct object sets (the intersection work the maintainers exist for).
//! Over `frames` frames the universe grows to
//! `population + frames / turnover_interval` distinct ids — unbounded in
//! the feed length, which is exactly what the interner's epoch compaction
//! is for: live states only ever reference the current population, so the
//! arena's live ratio decays as turnover retires sets.
//!
//! Classes alternate car/person per population slot so classed CNF queries
//! keep matching throughout the feed's lifetime.

use tvq_common::{ClassId, FeedId, FrameId, FrameObjects, ObjectId};

use crate::multifeed::CameraFeed;

/// Shape of a long-churn feed. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnProfile {
    /// Total frames to synthesise.
    pub frames: u64,
    /// Concurrent objects per frame (before occlusion).
    pub population: u32,
    /// Frames between object replacements (one per interval).
    pub turnover_interval: u64,
    /// Length of the rolling occlusion (frames per slot before moving on);
    /// the first `occlusion_duty` frames of each period hide the slot.
    pub occlusion_period: u64,
    /// How many frames of each occlusion period the slot is hidden for.
    pub occlusion_duty: u64,
}

impl ChurnProfile {
    /// The default long-churn shape: 16 concurrent objects, a replacement
    /// every 8 frames, a 24-frame occlusion rotation hiding each slot for
    /// 9 frames.
    pub const fn new(frames: u64) -> Self {
        ChurnProfile {
            frames,
            population: 16,
            turnover_interval: 8,
            occlusion_period: 24,
            occlusion_duty: 9,
        }
    }

    /// Number of distinct object identifiers the feed will mint: the
    /// initial population plus one replacement per completed turnover
    /// interval (the last frame's cohort is `(frames - 1) /
    /// turnover_interval + population` members, numbered from zero).
    pub fn universe_size(&self) -> u64 {
        if self.frames == 0 {
            return 0;
        }
        u64::from(self.population) + (self.frames - 1) / self.turnover_interval
    }
}

/// Synthesises one long-churn feed. Fully deterministic — the schedule is
/// arithmetic, no RNG involved — so identical profiles produce identical
/// feeds on every run and platform.
pub fn long_churn_feed(feed: FeedId, profile: &ChurnProfile) -> CameraFeed {
    assert!(profile.population > 0, "population must be positive");
    assert!(
        profile.turnover_interval > 0,
        "turnover interval must be positive"
    );
    assert!(
        profile.occlusion_period > 0,
        "occlusion period must be positive"
    );
    let population = u64::from(profile.population);
    // Decorrelate feeds: each feed's ids live in their own block, so
    // multi-feed deployments never share objects across cameras.
    let id_base = u64::from(feed.raw()) * 1_000_000_007 % u64::from(u32::MAX - 1_000_000);
    let frames = (0..profile.frames)
        .map(|i| {
            let replacements = i / profile.turnover_interval;
            // The rotation starts at slot 1, not slot 0: the very first
            // population member (id 0, slot 0) lives only for the first
            // turnover interval, and an occlusion window opening at frame 0
            // on its slot would hide it for its entire lifetime — the feed
            // would then mint one id fewer than `universe_size` promises.
            let occluded_slot = (i / profile.occlusion_period + 1) % population;
            let occlusion_active = i % profile.occlusion_period < profile.occlusion_duty;
            let detections = (0..population)
                // The population is a sliding range of ids: the k-th oldest
                // member is `replacements + k`. Slot index = id mod population
                // keeps each id's class stable for its whole lifetime.
                .map(|k| replacements + k)
                .filter(|&member| !(occlusion_active && member % population == occluded_slot))
                .map(|member| {
                    (
                        ObjectId((id_base + member) as u32),
                        ClassId((member % 2) as u16),
                    )
                })
                .collect();
            FrameObjects::new(FrameId(i), detections)
        })
        .collect();
    CameraFeed { feed, frames }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn churn_feed_is_deterministic_and_sized() {
        let profile = ChurnProfile::new(200);
        let a = long_churn_feed(FeedId(0), &profile);
        let b = long_churn_feed(FeedId(0), &profile);
        assert_eq!(a, b);
        assert_eq!(a.frames.len(), 200);
        for frame in &a.frames {
            let visible = frame.classes.len() as u32;
            assert!(visible == profile.population || visible == profile.population - 1);
        }
    }

    #[test]
    fn universe_grows_with_turnover() {
        let profile = ChurnProfile::new(400);
        let feed = long_churn_feed(FeedId(0), &profile);
        let ids: BTreeSet<ObjectId> = feed
            .frames
            .iter()
            .flat_map(|f| f.classes.iter().map(|&(id, _)| id))
            .collect();
        assert_eq!(ids.len() as u64, profile.universe_size());
        // Early objects never return: the last frame only holds recent ids.
        let first_id = *ids.iter().next().unwrap();
        assert!(!feed
            .frames
            .last()
            .unwrap()
            .classes
            .iter()
            .any(|&(id, _)| id == first_id));
    }

    #[test]
    fn feeds_do_not_share_objects() {
        let profile = ChurnProfile::new(100);
        let a = long_churn_feed(FeedId(0), &profile);
        let b = long_churn_feed(FeedId(1), &profile);
        let ids_a: BTreeSet<ObjectId> = a
            .frames
            .iter()
            .flat_map(|f| f.classes.iter().map(|&(id, _)| id))
            .collect();
        let ids_b: BTreeSet<ObjectId> = b
            .frames
            .iter()
            .flat_map(|f| f.classes.iter().map(|&(id, _)| id))
            .collect();
        assert!(ids_a.is_disjoint(&ids_b));
    }

    #[test]
    fn both_classes_present_every_frame() {
        let profile = ChurnProfile::new(64);
        let feed = long_churn_feed(FeedId(0), &profile);
        for frame in &feed.frames {
            let cars = frame
                .classes
                .iter()
                .filter(|&&(_, c)| c == ClassId(1))
                .count();
            let people = frame
                .classes
                .iter()
                .filter(|&&(_, c)| c == ClassId(0))
                .count();
            assert!(cars >= 2 && people >= 2, "frame {} lost a class", frame.fid);
        }
    }
}
