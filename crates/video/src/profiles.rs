//! Dataset profiles calibrated to the paper's Table 6.
//!
//! The paper evaluates on six videos: two synthetic feeds from the VisualRoad
//! benchmark (V1, V2), two Detrac traffic videos (D1, D2) and two MOT16
//! pedestrian videos (M1, M2), characterised by the statistics in Table 6.
//! We cannot ship those videos, so each profile records the target statistics
//! and the [statistical generator](crate::generator) synthesises a structured
//! relation matching them; `repro_table6` then verifies the match.

use tvq_common::DatasetStats;

/// Statistical profile of one evaluation dataset.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Short name used in the paper's figures (V1, V2, D1, D2, M1, M2).
    pub name: &'static str,
    /// Total number of frames.
    pub frames: usize,
    /// Total number of unique tracked objects.
    pub objects: usize,
    /// Average number of occlusion gaps per object (Occ/Obj).
    pub occlusions_per_object: f64,
    /// Average number of frames each object is visible in (F/Obj).
    pub frames_per_object: f64,
    /// Whether the source video was captured by a moving camera (MOT16).
    pub moving_camera: bool,
    /// Relative class frequencies `(label, weight)`.
    pub class_mix: &'static [(&'static str, f64)],
}

const TRAFFIC_MIX: &[(&str, f64)] = &[
    ("car", 0.72),
    ("person", 0.10),
    ("truck", 0.12),
    ("bus", 0.06),
];
const PEDESTRIAN_MIX: &[(&str, f64)] = &[
    ("person", 0.82),
    ("car", 0.12),
    ("truck", 0.04),
    ("bus", 0.02),
];

impl DatasetProfile {
    /// VisualRoad, rain with light traffic.
    pub fn v1() -> Self {
        DatasetProfile {
            name: "V1",
            frames: 1800,
            objects: 173,
            occlusions_per_object: 3.6,
            frames_per_object: 76.71,
            moving_camera: false,
            class_mix: TRAFFIC_MIX,
        }
    }

    /// VisualRoad, postpluvial with heavy traffic.
    pub fn v2() -> Self {
        DatasetProfile {
            name: "V2",
            frames: 1700,
            objects: 127,
            occlusions_per_object: 6.33,
            frames_per_object: 79.84,
            moving_camera: false,
            class_mix: TRAFFIC_MIX,
        }
    }

    /// Detrac MVI_40171.
    pub fn d1() -> Self {
        DatasetProfile {
            name: "D1",
            frames: 1150,
            objects: 179,
            occlusions_per_object: 5.20,
            frames_per_object: 48.61,
            moving_camera: false,
            class_mix: TRAFFIC_MIX,
        }
    }

    /// Detrac MVI_40751.
    pub fn d2() -> Self {
        DatasetProfile {
            name: "D2",
            frames: 1145,
            objects: 158,
            occlusions_per_object: 7.23,
            frames_per_object: 65.18,
            moving_camera: false,
            class_mix: TRAFFIC_MIX,
        }
    }

    /// MOT16-06 (moving camera).
    pub fn m1() -> Self {
        DatasetProfile {
            name: "M1",
            frames: 1194,
            objects: 342,
            occlusions_per_object: 3.37,
            frames_per_object: 23.67,
            moving_camera: true,
            class_mix: PEDESTRIAN_MIX,
        }
    }

    /// MOT16-13 (moving camera).
    pub fn m2() -> Self {
        DatasetProfile {
            name: "M2",
            frames: 750,
            objects: 186,
            occlusions_per_object: 3.48,
            frames_per_object: 46.96,
            moving_camera: true,
            class_mix: PEDESTRIAN_MIX,
        }
    }

    /// All six evaluation datasets, in the paper's order.
    pub fn all() -> Vec<DatasetProfile> {
        vec![
            DatasetProfile::v1(),
            DatasetProfile::v2(),
            DatasetProfile::d1(),
            DatasetProfile::d2(),
            DatasetProfile::m1(),
            DatasetProfile::m2(),
        ]
    }

    /// Looks a profile up by its paper name (case-insensitive).
    pub fn by_name(name: &str) -> Option<DatasetProfile> {
        DatasetProfile::all()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Average number of objects per frame implied by the profile
    /// (Obj/F = objects × F/Obj ÷ frames, the relation that also holds in
    /// Table 6).
    pub fn objects_per_frame(&self) -> f64 {
        self.objects as f64 * self.frames_per_object / self.frames as f64
    }

    /// The Table 6 row as [`DatasetStats`] (the target the generator aims at).
    pub fn target_stats(&self) -> DatasetStats {
        DatasetStats {
            frames: self.frames,
            objects: self.objects,
            objects_per_frame: self.objects_per_frame(),
            occlusions_per_object: self.occlusions_per_object,
            frames_per_object: self.frames_per_object,
        }
    }

    /// A custom profile derived from this one with a different target number
    /// of objects per frame — the paper's "videos with different
    /// configurations" used to study the effect of object density.
    pub fn with_objects_per_frame(&self, objects_per_frame: f64) -> DatasetProfile {
        let mut profile = self.clone();
        profile.objects =
            ((objects_per_frame * self.frames as f64) / self.frames_per_object).round() as usize;
        profile
    }

    /// A copy truncated to the first `frames` frames (scales the object count
    /// proportionally so density is preserved).
    pub fn truncated(&self, frames: usize) -> DatasetProfile {
        let mut profile = self.clone();
        let ratio = frames as f64 / self.frames as f64;
        profile.frames = frames;
        profile.objects = ((self.objects as f64) * ratio).round().max(1.0) as usize;
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_6_values_are_recorded() {
        let all = DatasetProfile::all();
        assert_eq!(all.len(), 6);
        let names: Vec<&str> = all.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["V1", "V2", "D1", "D2", "M1", "M2"]);
        let d2 = DatasetProfile::d2();
        assert_eq!(d2.frames, 1145);
        assert_eq!(d2.objects, 158);
        assert!((d2.occlusions_per_object - 7.23).abs() < 1e-9);
    }

    #[test]
    fn objects_per_frame_matches_table_6() {
        // Table 6 reports Obj/F directly; it must be consistent with the
        // other columns to within rounding.
        let expected = [
            ("V1", 7.37),
            ("V2", 5.94),
            ("D1", 7.56),
            ("D2", 8.99),
            ("M1", 6.75),
            ("M2", 11.59),
        ];
        for (name, objf) in expected {
            let profile = DatasetProfile::by_name(name).unwrap();
            let derived = profile.objects_per_frame();
            assert!(
                (derived - objf).abs() / objf < 0.03,
                "{name}: derived {derived:.2} vs table {objf:.2}"
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(DatasetProfile::by_name("m2").is_some());
        assert!(DatasetProfile::by_name("M2").is_some());
        assert!(DatasetProfile::by_name("X9").is_none());
    }

    #[test]
    fn density_override_scales_object_count() {
        let base = DatasetProfile::v1();
        let denser = base.with_objects_per_frame(base.objects_per_frame() * 2.0);
        assert!((denser.objects as f64 / base.objects as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn truncation_scales_objects_proportionally() {
        let base = DatasetProfile::v1();
        let half = base.truncated(900);
        assert_eq!(half.frames, 900);
        assert!((half.objects as f64 - base.objects as f64 / 2.0).abs() <= 1.0);
    }

    #[test]
    fn moving_camera_flags_follow_the_paper() {
        assert!(!DatasetProfile::v1().moving_camera);
        assert!(!DatasetProfile::d2().moving_camera);
        assert!(DatasetProfile::m1().moving_camera);
        assert!(DatasetProfile::m2().moving_camera);
    }
}
