//! A skewed camera grid: a few hot cameras dominating the fleet's work.
//!
//! Real multi-camera deployments are not uniform — a camera watching a busy
//! intersection produces an order of magnitude more detections (and, because
//! MCOS maintenance cost grows superlinearly in the concurrent-object count,
//! far more than an order of magnitude more *work*) than one watching a
//! loading dock at night. Static `feed mod workers` sharding serialises
//! whatever hot cameras happen to collide on one worker; this generator
//! synthesises exactly that adversarial shape, so the scheduler benchmarks
//! and differential tests can measure and pin down the work-stealing
//! response:
//!
//! * `hot_feeds` of the grid's `feeds` cameras are **hot**: a rolling
//!   population of `hot_objects` concurrent objects. The rest are cold with
//!   `cold_objects` (default 18 vs 3 — with superlinear per-frame cost the
//!   hot cameras then carry ~90% of the fleet's maintenance work);
//! * the hot set is chosen to **collide under `feed mod collide_workers`**
//!   (all hot feeds land on the same worker of a `collide_workers`-sized
//!   pool), the worst case for static sharding;
//! * halfway through the feed the hotspot **flips** to a disjoint set of
//!   formerly cold cameras (the intersection rush hour moving across town),
//!   so a scheduler that migrated once and stopped watching is re-skewed;
//! * generation is pure arithmetic (no RNG, no wall clock): identical
//!   profiles produce identical grids on every platform, which the
//!   determinism suites rely on.
//!
//! Each camera runs the [`churn`](crate::churn)-style rolling occlusion so
//! object sets keep changing (the intersection work the maintainers exist
//! for), and per-feed id blocks are decorrelated so cameras never share
//! object identifiers.

use tvq_common::{ClassId, FeedId, FrameId, FrameObjects, ObjectId};

use crate::multifeed::CameraFeed;

/// Shape of a skewed camera grid. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewProfile {
    /// Cameras in the grid.
    pub feeds: u32,
    /// Frames per camera.
    pub frames: u64,
    /// How many cameras are hot at any moment.
    pub hot_feeds: u32,
    /// Concurrent objects on a hot camera.
    pub hot_objects: u32,
    /// Concurrent objects on a cold camera.
    pub cold_objects: u32,
    /// The worker count the hot set is chosen to collide under: every hot
    /// feed is congruent mod `collide_workers`, so a static
    /// `feed mod collide_workers` sharding serialises all of them on one
    /// worker.
    pub collide_workers: u32,
}

impl SkewProfile {
    /// The default skewed grid: 12 cameras, 2 hot at a time with 18
    /// concurrent objects against 3 on the cold cameras, colliding under a
    /// 4-worker static sharding.
    pub const fn new(frames: u64) -> Self {
        SkewProfile {
            feeds: 12,
            frames,
            hot_feeds: 2,
            hot_objects: 18,
            cold_objects: 3,
            collide_workers: 4,
        }
    }

    /// The hot camera set for `frame`: feeds congruent to 1 (first half) or
    /// 2 (second half) mod `collide_workers`, taken in ascending feed
    /// order. The flip at `frames / 2` moves the hotspot to cameras that
    /// were cold the whole first half.
    pub fn hot_set(&self, frame: u64) -> Vec<FeedId> {
        let residue = if frame < self.frames / 2 { 1 } else { 2 };
        (0..self.feeds)
            .filter(|feed| feed % self.collide_workers == residue % self.collide_workers)
            .take(self.hot_feeds as usize)
            .map(FeedId)
            .collect()
    }
}

/// Synthesises the skewed grid: one [`CameraFeed`] per camera, all of equal
/// length, hot cameras per [`SkewProfile::hot_set`]. Fully deterministic.
pub fn skewed_grid(profile: &SkewProfile) -> Vec<CameraFeed> {
    assert!(profile.feeds > 0, "the grid needs at least one camera");
    assert!(
        profile.collide_workers > 0,
        "collide_workers must be positive"
    );
    assert!(
        profile.hot_objects >= profile.cold_objects,
        "hot cameras must carry at least the cold population"
    );
    (0..profile.feeds)
        .map(|raw| {
            let feed = FeedId(raw);
            // Per-feed id blocks (same decorrelation as the churn feeds):
            // cameras never share object identifiers.
            let id_base = u64::from(raw) * 1_000_000_007 % u64::from(u32::MAX - 1_000_000);
            let frames = (0..profile.frames)
                .map(|i| {
                    let hot = profile.hot_set(i).contains(&feed);
                    let population = u64::from(if hot {
                        profile.hot_objects
                    } else {
                        profile.cold_objects
                    });
                    // Rolling occlusion: one slot hides for the first 3
                    // frames of every 8-frame period, so object sets keep
                    // changing without object turnover. Slots 0 and 1 (one
                    // object of each class) are exempt, so classed CNF
                    // queries keep matching on every camera.
                    let occluded_slot = if population > 2 {
                        2 + (i / 8) % (population - 2)
                    } else {
                        population // out of range: nothing occluded
                    };
                    let occlusion_active = i % 8 < 3;
                    let detections = (0..population)
                        .filter(|&slot| !(occlusion_active && slot == occluded_slot))
                        .map(|slot| {
                            (
                                ObjectId((id_base + slot) as u32),
                                ClassId((slot % 2) as u16),
                            )
                        })
                        .collect();
                    FrameObjects::new(FrameId(i), detections)
                })
                .collect();
            CameraFeed { feed, frames }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn grid_is_deterministic_and_shaped() {
        let profile = SkewProfile::new(40);
        let a = skewed_grid(&profile);
        let b = skewed_grid(&profile);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.iter().all(|feed| feed.frames.len() == 40));
    }

    #[test]
    fn hot_set_collides_statically_then_flips() {
        let profile = SkewProfile::new(40);
        let early = profile.hot_set(0);
        let late = profile.hot_set(20);
        assert_eq!(early, vec![FeedId(1), FeedId(5)]);
        assert_eq!(late, vec![FeedId(2), FeedId(6)]);
        // Both hot sets collide under the static mod-4 sharding...
        for set in [&early, &late] {
            let shards: BTreeSet<u32> = set.iter().map(|feed| feed.raw() % 4).collect();
            assert_eq!(shards.len(), 1, "hot set {set:?} does not collide");
        }
        // ...and the flip moves the hotspot to previously cold cameras.
        assert!(early.iter().all(|feed| !late.contains(feed)));
    }

    #[test]
    fn hot_cameras_dominate_detections() {
        let profile = SkewProfile::new(40);
        let grid = skewed_grid(&profile);
        let hot0: usize = grid[1].frames[0].classes.len();
        let cold0: usize = grid[0].frames[0].classes.len();
        assert!(
            hot0 >= 5 * cold0,
            "hot camera ({hot0} objects) must dwarf cold ({cold0})"
        );
        // After the flip, feed 1 cools down and feed 2 heats up.
        let half = 20usize;
        assert!(grid[1].frames[half].classes.len() < hot0);
        assert!(grid[2].frames[half].classes.len() >= 5 * cold0);
    }

    #[test]
    fn feeds_do_not_share_objects() {
        let grid = skewed_grid(&SkewProfile::new(16));
        let mut seen: BTreeSet<ObjectId> = BTreeSet::new();
        for feed in &grid {
            let ids: BTreeSet<ObjectId> = feed
                .frames
                .iter()
                .flat_map(|f| f.classes.iter().map(|&(id, _)| id))
                .collect();
            assert!(seen.is_disjoint(&ids), "feed {} reuses ids", feed.feed);
            seen.extend(ids);
        }
    }

    #[test]
    fn both_classes_present_on_every_camera() {
        let grid = skewed_grid(&SkewProfile::new(24));
        for feed in &grid {
            for frame in &feed.frames {
                let cars = frame
                    .classes
                    .iter()
                    .filter(|&&(_, c)| c == ClassId(1))
                    .count();
                let people = frame
                    .classes
                    .iter()
                    .filter(|&&(_, c)| c == ClassId(0))
                    .count();
                assert!(
                    cars >= 1 && people >= 1,
                    "feed {} frame {} lost a class",
                    feed.feed,
                    frame.fid
                );
            }
        }
    }
}
