//! Statistical feed generator.
//!
//! Generates a structured relation whose Table-6 statistics (frames, unique
//! objects, objects per frame, occlusions per object, frames per object)
//! match a [`DatasetProfile`]. This is the workhorse of the benchmark
//! harness: the MCOS-generation algorithms never look at pixels, so a
//! relation with the right statistical shape reproduces the relative
//! behaviour the paper reports for each dataset.
//!
//! Each object receives an arrival frame, a target number of visible frames,
//! and a number of occlusion gaps; the visible frames are split into runs
//! separated by the gaps. The paper's occlusion parameter `po` (Figure 7) is
//! reproduced by [`apply_id_reuse`], which re-assigns released identifiers to
//! later objects — exactly the mechanism described in Section 6.2.

use std::collections::HashMap;
use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tvq_common::{ClassId, ClassRegistry, FrameId, ObjectId, ObjectRecord, VideoRelation};

use crate::profiles::DatasetProfile;

/// Generates a relation matching the profile's statistics. Deterministic for
/// a given seed.
pub fn generate(profile: &DatasetProfile, seed: u64) -> VideoRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut registry = ClassRegistry::with_default_classes();
    let class_ids: Vec<(ClassId, f64)> = profile
        .class_mix
        .iter()
        .map(|&(label, weight)| (registry.register(label), weight))
        .collect();
    let total_weight: f64 = class_ids.iter().map(|&(_, w)| w).sum();

    let frames = profile.frames.max(1);
    let mut per_frame: Vec<Vec<(ObjectId, ClassId)>> = vec![Vec::new(); frames];

    for object_index in 0..profile.objects {
        let id = ObjectId(object_index as u32);
        let class = pick_class(&class_ids, total_weight, &mut rng);

        // Visible frame budget centred on the profile's F/Obj.
        let mean_presence = profile.frames_per_object.max(1.0);
        let visible = rng
            .gen_range((0.6 * mean_presence)..=(1.4 * mean_presence))
            .round()
            .max(1.0) as usize;
        let visible = visible.min(frames);

        // Occlusion gaps: an integer with expectation Occ/Obj.
        let base = profile.occlusions_per_object.floor() as usize;
        let frac = profile.occlusions_per_object - base as f64;
        let mut gaps = base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)));
        // An object visible for v frames can have at most v - 1 gaps.
        gaps = gaps.min(visible.saturating_sub(1));
        let gap_lengths: Vec<usize> = (0..gaps).map(|_| rng.gen_range(2..=12)).collect();
        let span = visible + gap_lengths.iter().sum::<usize>();
        let span = span.min(frames);

        let latest_arrival = frames - span;
        let arrival = if latest_arrival == 0 {
            0
        } else {
            rng.gen_range(0..=latest_arrival)
        };

        // Split the visible frames into `gaps + 1` non-empty runs.
        let runs = split_into_runs(visible, gaps + 1, &mut rng);
        let mut frame = arrival;
        for (run_index, run) in runs.iter().enumerate() {
            for _ in 0..*run {
                if frame < frames {
                    per_frame[frame].push((id, class));
                }
                frame += 1;
            }
            if run_index < gap_lengths.len() {
                frame += gap_lengths[run_index];
            }
        }
    }

    let mut relation = VideoRelation::new(registry);
    for detections in per_frame {
        relation.push_detections(detections);
    }
    relation
}

/// Generates a relation for the profile and then applies the paper's `po`
/// id-reuse transformation (`po = 0` leaves identifiers untouched).
pub fn generate_with_id_reuse(profile: &DatasetProfile, po: u32, seed: u64) -> VideoRelation {
    let relation = generate(profile, seed);
    if po == 0 {
        relation
    } else {
        apply_id_reuse(&relation, po)
    }
}

/// Reuses object identifiers after their owners disappear, at most `po` times
/// per identifier (Section 6.2's occlusion parameter). The remapping is
/// deterministic: identifiers are reassigned in order of first appearance.
pub fn apply_id_reuse(relation: &VideoRelation, po: u32) -> VideoRelation {
    // Last frame in which every original identifier appears.
    let mut last_seen: HashMap<ObjectId, FrameId> = HashMap::new();
    for record in relation.records() {
        let entry = last_seen.entry(record.id).or_insert(record.fid);
        *entry = (*entry).max(record.fid);
    }

    let mut mapping: HashMap<ObjectId, ObjectId> = HashMap::new();
    let mut pool: VecDeque<ObjectId> = VecDeque::new();
    let mut reuse_counts: HashMap<ObjectId, u32> = HashMap::new();
    let mut next_id = 0u32;
    let mut records: Vec<ObjectRecord> = Vec::with_capacity(relation.num_records());
    let mut pending_release: Vec<(FrameId, ObjectId)> = Vec::new();

    for frame in relation.frames() {
        // Release identifiers whose owners disappeared before this frame.
        pending_release.retain(|&(last, id)| {
            if last < frame.fid {
                let used = reuse_counts.get(&id).copied().unwrap_or(0);
                if used < po {
                    pool.push_back(id);
                }
                false
            } else {
                true
            }
        });
        for &(original, class) in &frame.classes {
            let mapped = *mapping.entry(original).or_insert_with(|| {
                let id = match pool.pop_front() {
                    Some(id) => {
                        *reuse_counts.entry(id).or_insert(0) += 1;
                        id
                    }
                    None => {
                        let id = ObjectId(next_id);
                        next_id += 1;
                        id
                    }
                };
                pending_release.push((last_seen[&original], id));
                id
            });
            records.push(ObjectRecord {
                fid: frame.fid,
                id: mapped,
                class,
            });
        }
    }
    let mut rebuilt = VideoRelation::from_records(relation.registry().clone(), &records)
        .expect("classes are registered");
    // Preserve trailing empty frames lost by the record round-trip.
    while rebuilt.num_frames() < relation.num_frames() {
        rebuilt.push_detections(Vec::new());
    }
    rebuilt
}

fn pick_class(classes: &[(ClassId, f64)], total: f64, rng: &mut StdRng) -> ClassId {
    let mut pick = rng.gen_range(0.0..total);
    for &(class, weight) in classes {
        if pick < weight {
            return class;
        }
        pick -= weight;
    }
    classes.last().map(|&(c, _)| c).unwrap_or(ClassId(0))
}

/// Splits `total` into `parts` positive integers summing to `total`
/// (`parts <= total`).
fn split_into_runs(total: usize, parts: usize, rng: &mut StdRng) -> Vec<usize> {
    let parts = parts.max(1).min(total.max(1));
    let mut cuts: Vec<usize> = (1..parts).map(|_| rng.gen_range(1..total.max(2))).collect();
    cuts.sort_unstable();
    cuts.dedup();
    // Deduplication may have removed cuts; the resulting runs are still valid,
    // just fewer of them (slightly fewer occlusions than requested).
    let mut runs = Vec::with_capacity(cuts.len() + 1);
    let mut previous = 0;
    for cut in cuts {
        runs.push(cut - previous);
        previous = cut;
    }
    runs.push(total - previous);
    runs.retain(|&r| r > 0);
    if runs.is_empty() {
        runs.push(total);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::DatasetStats;

    #[test]
    fn split_into_runs_sums_to_total() {
        let mut rng = StdRng::seed_from_u64(5);
        for total in 1..40 {
            for parts in 1..=total {
                let runs = split_into_runs(total, parts, &mut rng);
                assert_eq!(runs.iter().sum::<usize>(), total);
                assert!(runs.iter().all(|&r| r > 0));
                assert!(runs.len() <= parts);
            }
        }
    }

    #[test]
    fn generated_feeds_match_profile_statistics() {
        for profile in DatasetProfile::all() {
            let relation = generate(&profile, 42);
            let stats = DatasetStats::of(&relation);
            let target = profile.target_stats();
            assert_eq!(stats.frames, target.frames, "{}", profile.name);
            assert_eq!(stats.objects, target.objects, "{}", profile.name);
            let error = stats.relative_error_to(&target);
            assert!(
                error.frames_per_object_pct < 15.0,
                "{}: F/Obj off by {:.1}% ({:.1} vs {:.1})",
                profile.name,
                error.frames_per_object_pct,
                stats.frames_per_object,
                target.frames_per_object
            );
            assert!(
                error.objects_per_frame_pct < 15.0,
                "{}: Obj/F off by {:.1}%",
                profile.name,
                error.objects_per_frame_pct
            );
            assert!(
                error.occlusions_per_object_pct < 30.0,
                "{}: Occ/Obj off by {:.1}% ({:.2} vs {:.2})",
                profile.name,
                error.occlusions_per_object_pct,
                stats.occlusions_per_object,
                target.occlusions_per_object
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let profile = DatasetProfile::d1();
        let a = generate(&profile, 7);
        let b = generate(&profile, 7);
        assert_eq!(a.num_records(), b.num_records());
        let c = generate(&profile, 8);
        assert_ne!(a.num_records(), c.num_records());
    }

    #[test]
    fn id_reuse_reduces_unique_objects_and_adds_occlusions() {
        let profile = DatasetProfile::m2();
        let base = generate(&profile, 3);
        let reused = apply_id_reuse(&base, 3);
        let base_stats = DatasetStats::of(&base);
        let reused_stats = DatasetStats::of(&reused);
        assert_eq!(base.num_records(), reused.num_records());
        assert!(reused_stats.objects < base_stats.objects);
        assert!(reused_stats.occlusions_per_object > base_stats.occlusions_per_object);
        assert_eq!(base.num_frames(), reused.num_frames());
    }

    #[test]
    fn id_reuse_zero_is_identity_via_generate_with_id_reuse() {
        let profile = DatasetProfile::v2();
        let a = generate_with_id_reuse(&profile, 0, 9);
        let b = generate(&profile, 9);
        assert_eq!(a.num_records(), b.num_records());
        assert_eq!(a.num_objects(), b.num_objects());
    }

    #[test]
    fn per_frame_object_sets_are_duplicate_free() {
        let relation = generate(&DatasetProfile::d2(), 11);
        for frame in relation.frames() {
            assert_eq!(frame.objects.len(), frame.classes.len());
        }
    }
}
