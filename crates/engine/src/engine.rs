//! The end-to-end temporal video query engine.
//!
//! [`TemporalVideoQueryEngine`] wires the three layers of the paper's
//! architecture together: it consumes per-frame detections (from the
//! simulated vision pipeline, the statistical generator, or ingested CSV),
//! feeds the class-filtered object sets to an MCOS maintainer, and evaluates
//! the registered CNF queries over the resulting Result State Set, producing
//! [`QueryMatch`]es per frame.

use std::sync::{Arc, PoisonError, RwLock};

use tvq_common::{
    ClassRegistry, ClassStore, DatasetStats, Error, FrameId, FrameObjects, ObjectId, ObjectSet,
    QueryId, Result, SetInterner, SharedClassMap, VideoRelation,
};
use tvq_core::{
    MaintainerKind, MaintenanceMetrics, ObjectLifecycle, SharedPruner, StateMaintainer, StatePruner,
};
use tvq_query::{evaluate_result_set, ClassCounts, CnfQuery, QueryMatch};

use crate::adaptive::choose_maintainer;
use crate::catalog::{QueryCatalog, SharedCatalog};
use crate::config::{EngineConfig, MaintainerSelection};
use crate::durable::Durability;
use crate::persist;

/// The result of processing one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameResult {
    /// The processed frame.
    pub frame: FrameId,
    /// The query matches of the window ending at this frame.
    pub matches: Vec<QueryMatch>,
}

impl FrameResult {
    /// Whether any query matched at this frame.
    pub fn any(&self) -> bool {
        !self.matches.is_empty()
    }
}

/// Streaming-safe pruner (shared with the restore path in
/// [`persist`](crate::persist) via [`TemporalVideoQueryEngine::assemble`]):
/// reads the engine's live class store and its
/// *current* query-catalog snapshot, so catalog swaps take effect on the
/// very next judged state.
///
/// Soundness across swaps: when the current catalog is not ≥-only (or is
/// empty), [`CatalogSnapshot::prune_active`](crate::catalog::CatalogSnapshot::prune_active)
/// is `false` and the pruner keeps everything — the engine leaves the
/// pruner attached permanently and lets the snapshot decide, so a catalog
/// that oscillates between prunable and unprunable workloads never needs a
/// maintainer rebuild.
struct LivePruner {
    catalog: SharedCatalog,
    classes: SharedClassMap,
}

impl LivePruner {
    /// The current snapshot's evaluator, or `None` while pruning is
    /// inactive. Snapshots are immutable, so a poisoned cell still holds a
    /// usable `Arc` (same recovery reasoning as the class store below).
    fn active_evaluator(&self) -> Option<Arc<tvq_query::CnfEvaluator>> {
        let snapshot = self.catalog.read().unwrap_or_else(PoisonError::into_inner);
        snapshot
            .prune_active()
            .then(|| Arc::clone(snapshot.evaluator()))
    }
}

impl StatePruner for LivePruner {
    fn should_terminate(&self, objects: &ObjectSet) -> bool {
        let Some(evaluator) = self.active_evaluator() else {
            return false;
        };
        // Live store entries are immutable, so a poisoned lock (a panicking
        // thread elsewhere in the process) leaves it in a usable state:
        // recover the guard instead of cascading the panic into every shard
        // that shares the store.
        let store = self.classes.read().unwrap_or_else(PoisonError::into_inner);
        let counts = ClassCounts::of(objects, store.classes());
        !evaluator.any_satisfied(&counts)
    }

    fn should_terminate_with(
        &self,
        objects: &ObjectSet,
        counts: Option<&tvq_common::ClassCounts>,
    ) -> bool {
        // The interner computed these counts from the same shared class map
        // at intern time; skip the lock and the re-aggregation.
        match counts {
            Some(counts) => match self.active_evaluator() {
                Some(evaluator) => !evaluator.any_satisfied(counts),
                None => false,
            },
            None => self.should_terminate(objects),
        }
    }
}

/// Builder for [`TemporalVideoQueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: EngineConfig,
    registry: ClassRegistry,
    queries: Vec<CnfQuery>,
    stats: Option<DatasetStats>,
    class_store: Option<SharedClassMap>,
    allow_empty: bool,
    catalog_seed: u64,
}

impl EngineBuilder {
    /// Starts a builder with the given configuration and the default class
    /// registry.
    pub fn new(config: EngineConfig) -> Self {
        EngineBuilder {
            config,
            registry: ClassRegistry::with_default_classes(),
            queries: Vec::new(),
            stats: None,
            class_store: None,
            allow_empty: false,
            catalog_seed: 0,
        }
    }

    /// Permits building with zero registered queries. Off by default (an
    /// embedded engine with no queries is almost always a configuration
    /// mistake); server deployments turn it on so the engine can start idle
    /// and receive its workload over the wire via
    /// [`TemporalVideoQueryEngine::add_query`].
    pub fn allow_empty_catalog(mut self) -> Self {
        self.allow_empty = true;
        self
    }

    /// Seeds the catalog's version counter. The multi-feed engine uses this
    /// so a per-feed engine built lazily *after* catalog swaps reports the
    /// fleet's current version rather than restarting at zero.
    pub(crate) fn with_catalog_seed(mut self, version: u64) -> Self {
        self.catalog_seed = version;
        self
    }

    /// Registers into a caller-provided (possibly shared) class store
    /// instead of a private one. Sharing is only sound across feeds with a
    /// common object-id space; the store's reference counts keep eviction
    /// correct across sharers either way.
    pub fn with_class_store(mut self, store: SharedClassMap) -> Self {
        self.class_store = Some(store);
        self
    }

    /// Uses a custom class registry.
    pub fn with_registry(mut self, registry: ClassRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers a structured query.
    pub fn with_query(mut self, query: CnfQuery) -> Self {
        self.queries.push(query);
        self
    }

    /// Registers a query written in the textual language, e.g.
    /// `"car >= 2 AND person >= 1"`. New class labels are registered.
    pub fn with_query_text(mut self, text: &str) -> Result<Self> {
        let id = tvq_common::QueryId(self.queries.len() as u32);
        let query = tvq_query::parse_query(text, id, &mut self.registry)?;
        self.queries.push(query);
        Ok(self)
    }

    /// Supplies feed statistics for adaptive maintainer selection.
    pub fn with_feed_stats(mut self, stats: DatasetStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Result<TemporalVideoQueryEngine> {
        if self.queries.is_empty() && !self.allow_empty {
            return Err(Error::InvalidConfig(
                "at least one query must be registered".to_owned(),
            ));
        }
        let catalog = QueryCatalog::new(self.queries, self.catalog_seed)?;
        let kind = match self.config.maintainer {
            MaintainerSelection::Fixed(kind) => kind,
            MaintainerSelection::Auto => self
                .stats
                .as_ref()
                .map(choose_maintainer)
                .unwrap_or(MaintainerKind::Ssg),
        };
        let classes: SharedClassMap = self
            .class_store
            .unwrap_or_else(|| Arc::new(RwLock::new(ClassStore::new())));
        Ok(TemporalVideoQueryEngine::assemble(
            self.config,
            self.registry,
            catalog,
            kind,
            classes,
        ))
    }
}

/// The end-to-end engine (Figure 2 of the paper).
pub struct TemporalVideoQueryEngine {
    pub(crate) config: EngineConfig,
    pub(crate) registry: ClassRegistry,
    /// The versioned query workload. The engine is its sole writer;
    /// the maintainer's [`LivePruner`] follows it through the shared cell.
    pub(crate) catalog: QueryCatalog,
    /// The *resolved* maintenance strategy (`Auto` selection pinned at
    /// build time) — what snapshots persist and recovery rebuilds.
    pub(crate) kind: MaintainerKind,
    pub(crate) maintainer: Box<dyn StateMaintainer>,
    /// Generation-aware tracker-id resolution, class-store registration and
    /// epoch retirement (see [`ObjectLifecycle`]). Holds the engine's
    /// (possibly shared) class store; its live-binding map doubles as the
    /// per-frame fast path that skips the store's write lock in steady
    /// state.
    pub(crate) lifecycle: ObjectLifecycle,
    /// Frames since the compaction policy was last consulted.
    pub(crate) frames_since_compaction_check: u64,
    /// WAL + snapshot attachment, when the engine runs durably (see
    /// [`durable`](crate::durable)).
    pub(crate) durability: Option<Durability>,
}

impl std::fmt::Debug for TemporalVideoQueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemporalVideoQueryEngine")
            .field("config", &self.config)
            .field("strategy", &self.strategy())
            .field("queries", &self.catalog.snapshot().queries().len())
            .field("catalog_version", &self.catalog.version())
            .finish()
    }
}

impl TemporalVideoQueryEngine {
    /// Starts a builder.
    pub fn builder(config: EngineConfig) -> EngineBuilder {
        EngineBuilder::new(config)
    }

    /// Assembles an engine around already-validated parts. Shared by
    /// [`EngineBuilder::build`] and the snapshot-restore path in
    /// [`persist`](crate::persist), so both wire the interner, pruner and
    /// maintainer identically.
    pub(crate) fn assemble(
        config: EngineConfig,
        registry: ClassRegistry,
        catalog: QueryCatalog,
        kind: MaintainerKind,
        classes: SharedClassMap,
    ) -> TemporalVideoQueryEngine {
        // The per-feed interner shares the engine's live class store, so
        // every interned set gets its class counts computed exactly once and
        // the evaluator skips the per-frame histogram rebuild.
        let interner =
            SetInterner::with_classes(Arc::clone(&classes)).with_memo_config(config.memo);
        // The pruner is attached whenever pruning is configured — even if
        // the *current* catalog cannot prune — because the catalog may swap
        // to a prunable workload later. The LivePruner reads the snapshot's
        // prune_active flag per judgement, so an inactive pruner keeps
        // every state (and `strategy()` drops the "_O" suffix).
        let pruner: Option<SharedPruner> = if config.pruning {
            Some(Arc::new(LivePruner {
                catalog: catalog.shared(),
                classes: Arc::clone(&classes),
            }))
        } else {
            None
        };
        let maintainer = kind.build_with_options(config.window, pruner, interner);
        TemporalVideoQueryEngine {
            config,
            registry,
            catalog,
            kind,
            maintainer,
            lifecycle: ObjectLifecycle::new(classes),
            frames_since_compaction_check: 0,
            durability: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The name of the MCOS-generation strategy in use (e.g. `"SSG_O"`).
    /// The `_O` pruning suffix tracks the *current* catalog: it appears
    /// only while the registered workload actually lets Section 5.3
    /// terminate states (≥-only and non-empty).
    pub fn strategy(&self) -> &'static str {
        let name = self.maintainer.name();
        if self.catalog.snapshot().prune_active() {
            name
        } else {
            name.trim_end_matches("_O")
        }
    }

    /// The current query-catalog version (0 at build; each
    /// [`add_query`](Self::add_query) / [`remove_query`](Self::remove_query)
    /// increments it).
    pub fn catalog_version(&self) -> u64 {
        self.catalog.version()
    }

    /// The currently registered queries.
    pub fn queries(&self) -> &[CnfQuery] {
        self.catalog.snapshot().queries()
    }

    /// Registers a query mid-stream, swapping in a new catalog version
    /// before the next frame. The new query's matches converge with a
    /// fresh engine's after one full window turnover (states the old
    /// catalog pruned, and detections its class filter dropped, are not
    /// resurrected — see the [catalog docs](crate::catalog)).
    pub fn add_query(&mut self, query: CnfQuery) -> Result<()> {
        self.flush_due_snapshot()?;
        let record = self
            .durability
            .is_some()
            .then(|| persist::encode_add_query_record(&query));
        self.apply_add_query(query)?;
        if let Some(body) = record {
            self.log_durable(&body)?;
        }
        Ok(())
    }

    /// The in-memory half of [`add_query`](Self::add_query) — also the
    /// WAL-replay path, which must not re-log the records it replays.
    pub(crate) fn apply_add_query(&mut self, query: CnfQuery) -> Result<()> {
        self.catalog.add_query(query)?;
        self.maintainer.pruner_changed();
        Ok(())
    }

    /// Parses and registers a textual query (e.g. `"car >= 2"`)
    /// mid-stream, minting the next free query id. Returns the id so the
    /// caller can [`remove_query`](Self::remove_query) it later.
    pub fn add_query_text(&mut self, text: &str) -> Result<QueryId> {
        let id = self.catalog.next_query_id();
        let query = tvq_query::parse_query(text, id, &mut self.registry)?;
        self.add_query(query)?;
        Ok(id)
    }

    /// Cancels a query mid-stream, swapping in a new catalog version
    /// before the next frame. Immediately invisible to surviving queries
    /// (removal only narrows evaluation and widens ≥-only pruning, which
    /// Proposition 1 keeps sound).
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        self.flush_due_snapshot()?;
        let record = self
            .durability
            .is_some()
            .then(|| persist::encode_remove_query_record(id));
        self.apply_remove_query(id)?;
        if let Some(body) = record {
            self.log_durable(&body)?;
        }
        Ok(())
    }

    /// The in-memory half of [`remove_query`](Self::remove_query) — also
    /// the WAL-replay path.
    pub(crate) fn apply_remove_query(&mut self, id: QueryId) -> Result<()> {
        self.catalog.remove_query(id)?;
        self.maintainer.pruner_changed();
        Ok(())
    }

    /// Fast-forwards the catalog to the fleet's master query set at
    /// `version`, skipping the intermediate swaps this engine missed while
    /// its worker was down. No-op when already current. Publishes through
    /// the existing shared cell (the live pruner keeps observing swaps) and
    /// schedules a snapshot so the catch-up is durable before the next
    /// logged operation.
    pub(crate) fn reconcile_catalog(&mut self, queries: &[CnfQuery], version: u64) -> Result<()> {
        if self.catalog.version() == version {
            return Ok(());
        }
        self.catalog.force(queries.to_vec(), version)?;
        self.maintainer.pruner_changed();
        self.mark_snapshot_due();
        Ok(())
    }

    /// The class registry (labels for query classes).
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// Work counters: the underlying maintainer's, augmented with the
    /// engine-side object-lifecycle gauges (tracked objects, class-store
    /// and lifecycle bytes, retirements, generations).
    pub fn metrics(&self) -> MaintenanceMetrics {
        let mut metrics = self.maintainer.metrics().clone();
        metrics.tracked_objects = self.lifecycle.tracked_objects() as u64;
        metrics.tracks_ended = self.lifecycle.tracks_ended();
        metrics.catalog_swaps = self.catalog.swaps();
        metrics.class_map_bytes = self
            .lifecycle
            .store()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .bytes() as u64;
        metrics.lifecycle_bytes = self.lifecycle.bytes() as u64;
        metrics.objects_retired = self.lifecycle.retired_total();
        metrics.generations_started = self.lifecycle.generations_started();
        if let Some(d) = &self.durability {
            metrics.wal_bytes = d.wal.bytes_written();
            metrics.wal_records = d.wal.records_written();
            metrics.snapshots_written = d.snaps.snapshots_written();
            metrics.snapshot_bytes = d.snaps.bytes_written();
            metrics.fsyncs = d.wal.fsyncs() + d.snaps.fsyncs();
            metrics.recoveries = d.recoveries;
        }
        metrics
    }

    /// The underlying maintainer's counters alone, borrowed — the cheap
    /// per-frame sampling path (no lock, no clone). [`metrics`](Self::metrics)
    /// additionally fills in the engine-side lifecycle gauges.
    pub fn maintainer_metrics(&self) -> &MaintenanceMetrics {
        self.maintainer.metrics()
    }

    /// The engine's object lifecycle (generation bindings, tracked-object
    /// counts, alias translation) — read access for tests and tooling.
    pub fn lifecycle(&self) -> &ObjectLifecycle {
        &self.lifecycle
    }

    /// Number of states currently materialised by the maintainer.
    pub fn live_states(&self) -> usize {
        self.maintainer.live_states()
    }

    /// Runs one compaction check (and possibly a compaction epoch) right
    /// now, regardless of the configured cadence. Returns whether an epoch
    /// ran. Normally the engine does this between frames per the configured
    /// [`CompactionPolicy`](tvq_core::CompactionPolicy); this entry point
    /// exists for deployments that want to compact at their own quiet
    /// moments (e.g. scene changes) and for tests.
    pub fn compact_now(&mut self) -> bool {
        let compacted = match &self.config.compaction {
            Some(policy) => match self.maintainer.maybe_compact(policy) {
                Some(outcome) => {
                    self.lifecycle.retire(&outcome.retired_objects);
                    true
                }
                None => false,
            },
            None => false,
        };
        if compacted {
            self.mark_snapshot_due();
        }
        compacted
    }

    /// Processes one frame of detections and returns the query matches of the
    /// window ending at this frame.
    ///
    /// Objects whose class no registered query mentions are dropped before
    /// they reach MCOS generation, as prescribed in Section 3. The remaining
    /// detections pass through the [`ObjectLifecycle`]: tracker ids are
    /// resolved to generation-aware internal ids (a reused id never splices
    /// into an old generation's states) and first-time bindings register
    /// their class in the shared store. Between frames the engine consults
    /// the configured compaction policy (if any) every `check_interval`
    /// frames; a compaction epoch bounds the maintainer-side state (arena,
    /// bitmaps, universe map) *and* retires dead object ids upward, so the
    /// engine's class store and tracking maps plateau with the live window
    /// too. Matches always report **tracker ids** as ingested (aliased
    /// generations are translated back at the result boundary).
    ///
    /// With durability attached (see [`attach_durability`]) the frame is
    /// additionally appended to the WAL and fsynced before `Ok` is
    /// returned, and a snapshot marked due by a previous compaction epoch
    /// is flushed first.
    ///
    /// [`attach_durability`]: Self::attach_durability
    pub fn observe(&mut self, frame: &FrameObjects) -> Result<FrameResult> {
        self.flush_due_snapshot()?;
        let record = self.pending_frame_record(frame);
        let result = self.observe_applied(frame)?;
        if let Some(body) = record {
            self.log_durable(&body)?;
        }
        Ok(result)
    }

    /// The in-memory half of [`observe`](Self::observe) — also the
    /// WAL-replay path, which must not re-log the records it replays.
    pub(crate) fn observe_applied(&mut self, frame: &FrameObjects) -> Result<FrameResult> {
        // Apply track-end events *before* resolving this frame's detections:
        // an id the tracker ended and immediately recycled (same frame or a
        // later one, same class or not) must start a new generation rather
        // than splice into the ended one.
        if !frame.track_ends.is_empty() {
            self.lifecycle.end_tracks(&frame.track_ends);
        }
        let snapshot = Arc::clone(self.catalog.snapshot());
        let mut internal: Vec<ObjectId> = Vec::with_capacity(frame.classes.len());
        self.lifecycle
            .resolve_frame(&frame.classes, snapshot.relevant_classes(), &mut internal);
        let objects = ObjectSet::from_ids(internal);
        self.maintainer.advance(frame.fid, &objects)?;
        let mut compacted = false;
        if let Some(policy) = &self.config.compaction {
            self.frames_since_compaction_check += 1;
            if self.frames_since_compaction_check >= policy.check_interval {
                self.frames_since_compaction_check = 0;
                if let Some(outcome) = self.maintainer.maybe_compact(policy) {
                    self.lifecycle.retire(&outcome.retired_objects);
                    compacted = true;
                }
            }
        }
        if compacted {
            // The snapshot itself is deferred to the next durable operation
            // so the caller's sidecar (updated after this call returns) is
            // captured consistently.
            self.mark_snapshot_due();
        }
        let mut matches = {
            let store = self
                .lifecycle
                .store()
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            evaluate_result_set(
                snapshot.evaluator(),
                self.maintainer.results(),
                store.classes(),
            )
        };
        if self.lifecycle.has_aliases() {
            // Reuse generations are live: translate alias internals back to
            // the tracker ids the caller knows. Distinct generations of one
            // tracker id never co-occur in a frame, hence never share a
            // state, so translation cannot collide within one match.
            for m in &mut matches {
                if m.objects
                    .iter()
                    .any(|id| self.lifecycle.external_of(id) != id)
                {
                    let translated: Vec<ObjectId> = m
                        .objects
                        .iter()
                        .map(|id| self.lifecycle.external_of(id))
                        .collect();
                    m.objects = ObjectSet::from_ids(translated);
                }
            }
        }
        Ok(FrameResult {
            frame: frame.fid,
            matches,
        })
    }

    /// Processes a whole structured relation, returning one [`FrameResult`]
    /// per frame.
    pub fn process_relation(&mut self, relation: &VideoRelation) -> Result<Vec<FrameResult>> {
        let mut results = Vec::with_capacity(relation.num_frames());
        for frame in relation.frames() {
            results.push(self.observe(frame)?);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::{ClassId, WindowSpec};

    fn frame(fid: u64, detections: &[(u32, u16)]) -> FrameObjects {
        FrameObjects::new(
            FrameId(fid),
            detections
                .iter()
                .map(|&(id, class)| (ObjectId(id), ClassId(class)))
                .collect(),
        )
    }

    fn small_config(kind: MaintainerKind) -> EngineConfig {
        EngineConfig::new(WindowSpec::new(4, 3).unwrap()).with_maintainer(kind)
    }

    #[test]
    fn builder_requires_queries() {
        let err = EngineBuilder::new(EngineConfig::default()).build();
        assert!(err.is_err());
    }

    #[test]
    fn detects_joint_presence_of_a_car_and_a_person() {
        // person class = 0, car class = 1.
        for kind in MaintainerKind::PRODUCTION {
            let mut engine = TemporalVideoQueryEngine::builder(small_config(kind))
                .with_query_text("car >= 1 AND person >= 1")
                .unwrap()
                .build()
                .unwrap();
            // Object 1 is a car, objects 2-3 are people; they overlap in
            // frames 1..=3 (3 frames >= duration 3).
            let frames = [
                frame(0, &[(1, 1)]),
                frame(1, &[(1, 1), (2, 0)]),
                frame(2, &[(1, 1), (2, 0), (3, 0)]),
                frame(3, &[(1, 1), (2, 0)]),
            ];
            let mut last = None;
            for f in &frames {
                last = Some(engine.observe(f).unwrap());
            }
            let last = last.unwrap();
            assert!(
                last.any(),
                "{kind:?} should report a match at the final frame"
            );
            assert!(last
                .matches
                .iter()
                .any(|m| m.objects == ObjectSet::from_raw([1, 2]) && m.frames.len() == 3));
        }
    }

    #[test]
    fn irrelevant_classes_are_dropped_before_mcos_generation() {
        let mut engine = TemporalVideoQueryEngine::builder(small_config(MaintainerKind::Mfs))
            .with_query_text("person >= 2")
            .unwrap()
            .build()
            .unwrap();
        // Cars (class 1) are never requested: they must not create states.
        engine
            .observe(&frame(0, &[(1, 1), (2, 1), (3, 1)]))
            .unwrap();
        assert_eq!(engine.live_states(), 0);
        engine.observe(&frame(1, &[(4, 0), (5, 0)])).unwrap();
        assert!(engine.live_states() >= 1);
    }

    #[test]
    fn pruning_variant_is_selected_for_geq_only_workloads() {
        let engine = TemporalVideoQueryEngine::builder(small_config(MaintainerKind::Ssg))
            .with_query_text("car >= 2")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(engine.strategy(), "SSG_O");
        let engine = TemporalVideoQueryEngine::builder(small_config(MaintainerKind::Ssg))
            .with_query_text("car <= 2")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(engine.strategy(), "SSG");
        let engine = TemporalVideoQueryEngine::builder(
            small_config(MaintainerKind::Ssg).with_pruning(false),
        )
        .with_query_text("car >= 2")
        .unwrap()
        .build()
        .unwrap();
        assert_eq!(engine.strategy(), "SSG");
    }

    #[test]
    fn pruned_and_unpruned_engines_agree_on_matches() {
        let frames: Vec<FrameObjects> = (0..30)
            .map(|i| {
                let mut detections = vec![(i as u32 % 5, 1u16), ((i as u32 + 1) % 5, 1)];
                if i % 3 != 0 {
                    detections.push((10 + (i as u32 % 3), 0));
                }
                frame(i, &detections)
            })
            .collect();
        let build = |pruning: bool| {
            TemporalVideoQueryEngine::builder(
                EngineConfig::new(WindowSpec::new(6, 3).unwrap())
                    .with_maintainer(MaintainerKind::Ssg)
                    .with_pruning(pruning),
            )
            .with_query_text("car >= 2 AND person >= 1")
            .unwrap()
            .build()
            .unwrap()
        };
        let mut with_pruning = build(true);
        let mut without_pruning = build(false);
        for f in &frames {
            let a = with_pruning.observe(f).unwrap();
            let b = without_pruning.observe(f).unwrap();
            assert_eq!(a, b, "pruning changed the result at frame {}", f.fid);
        }
    }

    #[test]
    fn adaptive_selection_uses_feed_statistics() {
        let stats = DatasetStats {
            frames: 1000,
            objects: 300,
            objects_per_frame: 11.0,
            occlusions_per_object: 3.0,
            frames_per_object: 20.0,
        };
        let engine = TemporalVideoQueryEngine::builder(
            EngineConfig::default()
                .with_adaptive_maintainer()
                .with_pruning(false),
        )
        .with_query_text("person >= 3")
        .unwrap()
        .with_feed_stats(stats)
        .build()
        .unwrap();
        assert_eq!(engine.strategy(), "SSG");
    }

    #[test]
    fn live_pruner_survives_a_poisoned_class_map() {
        let mut registry = ClassRegistry::with_default_classes();
        let query = tvq_query::parse_query("car >= 1", QueryId(0), &mut registry).unwrap();
        let catalog = QueryCatalog::new(vec![query], 0).unwrap();
        let pruner = LivePruner {
            catalog: catalog.shared(),
            classes: Arc::new(RwLock::new(ClassStore::preloaded([(
                ObjectId(1),
                ClassId(1),
            )]))),
        };
        // Poison the lock: a thread panics while holding the write guard.
        let classes = Arc::clone(&pruner.classes);
        let _ = std::thread::spawn(move || {
            let _guard = classes.write().unwrap();
            panic!("poison the class map");
        })
        .join();
        assert!(pruner.classes.is_poisoned());
        // A poisoned map must not cascade the panic; the pruner still sees
        // object 1 as a car and keeps the state alive.
        assert!(!pruner.should_terminate(&ObjectSet::from_raw([1])));
        assert!(pruner.should_terminate(&ObjectSet::from_raw([7])));
    }

    /// ROADMAP PR-4 regression: a retired id that reappears with a
    /// different class must be **re-resolved and re-judged** — never
    /// evaluated (or match-reported) under its stale class. Before the
    /// object lifecycle, the first-writer-wins class map would keep calling
    /// object 1 a car forever.
    #[test]
    fn retired_id_reappearing_with_new_class_is_rejudged() {
        use tvq_core::CompactionPolicy;
        let mut engine = TemporalVideoQueryEngine::builder(
            EngineConfig::new(WindowSpec::new(3, 1).unwrap())
                .with_maintainer(MaintainerKind::Ssg)
                .with_compaction(Some(CompactionPolicy::every(1))),
        )
        // Both queries are >=-only, so the SSG_O pruning variant runs and
        // the verdict for {1} flows through the pruner path too.
        .with_query_text("car >= 1")
        .unwrap()
        .with_query_text("person >= 3")
        .unwrap()
        .build()
        .unwrap();
        assert_eq!(engine.strategy(), "SSG_O");

        // Object 1 is a car for three frames: it matches `car >= 1`.
        for fid in 0..3u64 {
            let result = engine.observe(&frame(fid, &[(1, 1)])).unwrap();
            assert!(result.any(), "the car generation matches at frame {fid}");
        }
        // Object 1 leaves; a decoy keeps the feed alive long enough for the
        // window to expire 1's frames and the forced policy to retire it.
        for fid in 3..9u64 {
            engine.observe(&frame(fid, &[(2, 1)])).unwrap();
        }
        assert!(
            engine.metrics().objects_retired > 0,
            "object 1 should have been retired at an epoch boundary"
        );
        // The tracker recycles id 1 for a *person*. A stale class map would
        // count it as a car and wrongly match `car >= 1`; the lifecycle
        // re-resolves the reappearing id, so nothing matches.
        let result = engine.observe(&frame(9, &[(1, 0)])).unwrap();
        assert!(
            result
                .matches
                .iter()
                .all(|m| !m.objects.contains(ObjectId(1))),
            "a recycled person must not match car >= 1: {:?}",
            result.matches
        );
        // The reappearance started a fresh generation (car, decoy, person);
        // being hopeless under every query, the person generation was then
        // itself retired at the very next epoch boundary — the store holds
        // no stale entry for id 1 in either direction.
        let metrics = engine.metrics();
        assert!(metrics.generations_started >= 3, "{metrics:?}");
        assert!(metrics.objects_retired >= 2, "{metrics:?}");
        assert_ne!(
            engine
                .lifecycle()
                .store()
                .read()
                .unwrap()
                .class_of(ObjectId(1)),
            Some(ClassId(1)),
            "the stale car class must be gone"
        );
    }

    /// The PR-5 blind spot: an id the tracker recycles at the **same**
    /// class within a compaction epoch is indistinguishable from a bridged
    /// occlusion and splices into the old generation's frame sets —
    /// manufacturing a duration the new object never had. Explicit
    /// track-end events close it.
    #[test]
    fn track_end_prevents_same_class_recycle_splice() {
        let build = || {
            TemporalVideoQueryEngine::builder(
                EngineConfig::new(WindowSpec::new(6, 3).unwrap())
                    .with_maintainer(MaintainerKind::Ssg),
            )
            .with_query_text("car >= 1")
            .unwrap()
            .build()
            .unwrap()
        };
        // Car 1 for two frames, its track ends, then id 1 returns as a
        // *different* car. Without the end event the newcomer's frame 3
        // splices onto frames {0, 1} — three frames fake a duration-3
        // match. With it, the newcomer has one frame and cannot match yet.
        let with_end = [
            frame(0, &[(1, 1)]),
            frame(1, &[(1, 1)]),
            frame(2, &[]).with_track_ends(vec![ObjectId(1)]),
            frame(3, &[(1, 1)]),
        ];
        let mut engine = build();
        for f in &with_end {
            let result = engine.observe(f).unwrap();
            assert!(
                !result.any(),
                "frame {}: a 1-frame newcomer must not satisfy duration 3: {:?}",
                f.fid,
                result.matches
            );
        }
        assert_eq!(engine.lifecycle().tracks_ended(), 1);
        assert_eq!(
            engine.lifecycle().generations_started(),
            2,
            "the recycled id starts a new generation"
        );
        // Control: the identical feed *without* the end event splices and
        // false-matches — proving the test bites.
        let without_end = [
            frame(0, &[(1, 1)]),
            frame(1, &[(1, 1)]),
            frame(2, &[]),
            frame(3, &[(1, 1)]),
        ];
        let mut engine = build();
        let mut matched = false;
        for f in &without_end {
            matched |= engine.observe(f).unwrap().any();
        }
        assert!(matched, "without end events the splice false-matches");
    }

    /// Ending a track and recycling its id in the *same* frame still
    /// separates the generations (ends apply before resolution).
    #[test]
    fn track_end_applies_before_same_frame_detections() {
        let mut engine = TemporalVideoQueryEngine::builder(
            EngineConfig::new(WindowSpec::new(6, 3).unwrap()).with_maintainer(MaintainerKind::Mfs),
        )
        .with_query_text("car >= 1")
        .unwrap()
        .build()
        .unwrap();
        engine.observe(&frame(0, &[(1, 1)])).unwrap();
        engine.observe(&frame(1, &[(1, 1)])).unwrap();
        let reuse = frame(2, &[(1, 1)]).with_track_ends(vec![ObjectId(1)]);
        let result = engine.observe(&reuse).unwrap();
        assert!(!result.any(), "the newcomer has one frame, not three");
        assert_eq!(engine.lifecycle().generations_started(), 2);
        // The match at frame 4 belongs to the *newcomer* (frames 2..=4) and
        // reports the tracker id the caller knows.
        engine.observe(&frame(3, &[(1, 1)])).unwrap();
        let result = engine.observe(&frame(4, &[(1, 1)])).unwrap();
        assert!(result
            .matches
            .iter()
            .any(|m| m.objects == ObjectSet::from_raw([1]) && m.frames.len() == 3));
    }

    #[test]
    fn queries_register_and_cancel_mid_stream() {
        let mut engine = TemporalVideoQueryEngine::builder(small_config(MaintainerKind::Ssg))
            .with_query_text("car >= 1")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(engine.catalog_version(), 0);
        engine.observe(&frame(0, &[(1, 1), (2, 0)])).unwrap();

        // A person query arrives mid-stream under the next free id.
        let person = engine.add_query_text("person >= 1").unwrap();
        assert_eq!(person, tvq_common::QueryId(1));
        assert_eq!(engine.catalog_version(), 1);
        assert_eq!(engine.queries().len(), 2);
        // Within the convergence window (duration 3) the newcomer builds up.
        for fid in 1..4u64 {
            engine.observe(&frame(fid, &[(1, 1), (2, 0)])).unwrap();
        }
        let result = engine.observe(&frame(4, &[(1, 1), (2, 0)])).unwrap();
        assert!(result
            .matches
            .iter()
            .any(|m| m.query == tvq_common::QueryId(0)));
        assert!(
            result.matches.iter().any(|m| m.query == person),
            "the added query matches once its window fills: {:?}",
            result.matches
        );

        // Cancelling is immediate: the removed id never appears again.
        engine.remove_query(tvq_common::QueryId(0)).unwrap();
        assert_eq!(engine.catalog_version(), 2);
        assert_eq!(engine.metrics().catalog_swaps, 2);
        let result = engine.observe(&frame(5, &[(1, 1), (2, 0)])).unwrap();
        assert!(result.matches.iter().all(|m| m.query == person));
        // Failed operations leave the catalog untouched.
        assert!(engine.remove_query(tvq_common::QueryId(0)).is_err());
        assert_eq!(engine.catalog_version(), 2);
    }

    #[test]
    fn strategy_suffix_follows_catalog_swaps() {
        let mut engine = TemporalVideoQueryEngine::builder(small_config(MaintainerKind::Ssg))
            .with_query_text("car >= 2")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(engine.strategy(), "SSG_O");
        // A <= query disables Proposition-1 pruning; removal re-enables it.
        let mixed = engine.add_query_text("person <= 1").unwrap();
        assert_eq!(engine.strategy(), "SSG");
        engine.remove_query(mixed).unwrap();
        assert_eq!(engine.strategy(), "SSG_O");
    }

    #[test]
    fn empty_catalog_engine_starts_idle_and_accepts_queries() {
        let mut engine = TemporalVideoQueryEngine::builder(small_config(MaintainerKind::Ssg))
            .allow_empty_catalog()
            .build()
            .unwrap();
        assert_eq!(engine.strategy(), "SSG", "nothing to prune for");
        // With no queries every class is irrelevant: no states, no matches.
        let result = engine.observe(&frame(0, &[(1, 1), (2, 0)])).unwrap();
        assert!(!result.any());
        assert_eq!(engine.live_states(), 0);
        engine.add_query_text("car >= 1").unwrap();
        for fid in 1..4u64 {
            engine.observe(&frame(fid, &[(1, 1)])).unwrap();
        }
        let result = engine.observe(&frame(4, &[(1, 1)])).unwrap();
        assert!(result.any(), "queries added to an idle engine take effect");
    }

    #[test]
    fn process_relation_runs_every_frame() {
        let mut relation = VideoRelation::with_default_classes();
        relation.push_detections(vec![(ObjectId(1), ClassId(1)), (ObjectId(2), ClassId(0))]);
        relation.push_detections(vec![(ObjectId(1), ClassId(1)), (ObjectId(2), ClassId(0))]);
        relation.push_detections(vec![(ObjectId(1), ClassId(1))]);
        let mut engine = TemporalVideoQueryEngine::builder(
            EngineConfig::new(WindowSpec::new(3, 2).unwrap())
                .with_maintainer(MaintainerKind::Naive),
        )
        .with_query_text("car >= 1 AND person >= 1")
        .unwrap()
        .build()
        .unwrap();
        let results = engine.process_relation(&relation).unwrap();
        assert_eq!(results.len(), 3);
        assert!(!results[0].any());
        assert!(results[1].any());
        assert!(results[2].any());
    }
}
