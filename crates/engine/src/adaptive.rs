//! Adaptive maintainer selection.
//!
//! Section 6.2 of the paper identifies the trade-off between MFS and SSG:
//! MFS wins on feeds with few objects per frame and long object presence
//! (few distinct states, most generated directly from principal states),
//! while SSG wins when frames are dense or objects are short-lived (moving
//! cameras), because its graph traversal skips unrelated states. This module
//! encodes that observation as a selection heuristic over the Table-6
//! statistics of a feed.

use tvq_common::DatasetStats;
use tvq_core::MaintainerKind;

/// Objects-per-frame threshold above which SSG is preferred.
pub const DENSE_OBJECTS_PER_FRAME: f64 = 7.5;
/// Frames-per-object threshold below which SSG is preferred (short presence,
/// e.g. moving cameras).
pub const SHORT_PRESENCE_FRAMES: f64 = 30.0;

/// Chooses between MFS and SSG for a feed with the given statistics.
pub fn choose_maintainer(stats: &DatasetStats) -> MaintainerKind {
    if stats.objects_per_frame >= DENSE_OBJECTS_PER_FRAME
        || stats.frames_per_object <= SHORT_PRESENCE_FRAMES
    {
        MaintainerKind::Ssg
    } else {
        MaintainerKind::Mfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(objects_per_frame: f64, frames_per_object: f64) -> DatasetStats {
        DatasetStats {
            frames: 1000,
            objects: 100,
            objects_per_frame,
            occlusions_per_object: 3.0,
            frames_per_object,
        }
    }

    #[test]
    fn sparse_long_lived_feeds_use_mfs() {
        // V1/V2-like: few objects per frame, long presence.
        assert_eq!(choose_maintainer(&stats(6.0, 77.0)), MaintainerKind::Mfs);
        assert_eq!(choose_maintainer(&stats(5.9, 80.0)), MaintainerKind::Mfs);
    }

    #[test]
    fn dense_feeds_use_ssg() {
        // D2/M2-like: many objects per frame.
        assert_eq!(choose_maintainer(&stats(9.0, 65.0)), MaintainerKind::Ssg);
        assert_eq!(choose_maintainer(&stats(11.6, 47.0)), MaintainerKind::Ssg);
    }

    #[test]
    fn short_presence_feeds_use_ssg() {
        // M1-like: moving camera, objects leave the view quickly.
        assert_eq!(choose_maintainer(&stats(6.7, 23.7)), MaintainerKind::Ssg);
    }
}
