//! Durability: WAL + epoch snapshots + restart recovery for the engine.
//!
//! An engine with a data directory attached survives crashes: every
//! state-changing operation (observed frame, query add/remove) is appended
//! to a write-ahead log and fsynced *before* the call returns, and at every
//! compaction epoch boundary a complete [`persist`]
//! snapshot is written atomically, after which the covered WAL prefix is
//! pruned. [`TemporalVideoQueryEngine::recover`] reverses the process:
//! newest valid snapshot, then WAL tail replay through the same code paths
//! the live engine ran.
//!
//! # Write discipline
//!
//! Per durable operation the order is **apply → append → fsync → ack**: a
//! record reaches the log only for operations that succeeded, so replay
//! never re-executes a rejected operation, and the fsync-before-ack means
//! an acknowledged operation is always recovered. A crash *between* apply
//! and fsync loses the in-memory effect with the acknowledgement — the
//! caller never saw an `Ok`, so the recovered engine legitimately resumes
//! from the previous acknowledged state. (A crash after the fsync but
//! before the ack is the usual WAL ambiguity: the operation survives even
//! though the caller saw an error.)
//!
//! # Snapshot cadence
//!
//! A compaction epoch marks a snapshot *due*; the snapshot is written
//! lazily at the next durable operation (or an explicit
//! [`sync_store`](TemporalVideoQueryEngine::sync_store)), covering
//! everything logged so far. Deferring the write keeps the caller's
//! sidecar — updated after `observe` returns — consistent with the state
//! the snapshot captures. The WAL is pruned through the *previous*
//! retained snapshot's sequence, never the newest: the store keeps
//! [`KEEP_SNAPSHOTS`](tvq_store::snap::KEEP_SNAPSHOTS) generations as
//! corruption fallbacks, and a fallback is only usable while the records
//! after *its* sequence still exist.

use std::path::Path;

use tvq_common::{Error, FrameObjects, Result};
use tvq_store::{DirLock, RealIo, SharedIo, SnapshotStore, Wal};

use crate::engine::{FrameResult, TemporalVideoQueryEngine};
use crate::persist::{self, WalRecord};

/// The engine's durability attachment: directory lock, WAL, snapshot store
/// and the bookkeeping between them.
pub(crate) struct Durability {
    _lock: DirLock,
    pub(crate) wal: Wal,
    pub(crate) snaps: SnapshotStore,
    /// Set at compaction epochs; cleared when the deferred snapshot is
    /// written.
    snapshot_due: bool,
    /// Sequence of the previous retained snapshot — the WAL prune cursor.
    prev_snapshot_seq: Option<u64>,
    /// Caller-owned opaque blob persisted inside each snapshot.
    sidecar: Vec<u8>,
    /// Recoveries this engine went through (1 after `recover`).
    pub(crate) recoveries: u64,
}

/// What [`TemporalVideoQueryEngine::recover`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence of the snapshot the engine was rebuilt from.
    pub snapshot_seq: u64,
    /// Newer snapshots that failed validation, as `(seq, reason)`.
    pub snapshots_skipped: Vec<(u64, String)>,
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Results of the replayed frames, in sequence order. The tail of this
    /// list covers operations that were durable but possibly never
    /// acknowledged before the crash.
    pub replayed_frames: Vec<FrameResult>,
    /// Why the WAL's torn tail was truncated, when it was.
    pub wal_truncation: Option<String>,
    /// Bytes discarded from the WAL's torn tail.
    pub wal_truncated_bytes: u64,
    /// The sidecar blob persisted with the snapshot (empty when unused).
    pub sidecar: Vec<u8>,
}

impl TemporalVideoQueryEngine {
    /// Attaches durability to a *freshly built* engine: locks `dir`,
    /// creates the WAL, and writes the bootstrap snapshot so
    /// [`recover`](Self::recover) always finds the configuration and
    /// catalog even before the first compaction epoch. Fails if the
    /// directory already holds engine data (restart with `recover`) or is
    /// locked by a live process.
    pub fn attach_durability(&mut self, io: SharedIo, dir: &Path) -> Result<()> {
        if self.durability.is_some() {
            return Err(Error::Store("durability is already attached".into()));
        }
        let lock = DirLock::acquire(io.clone(), dir)?;
        let mut snaps = SnapshotStore::open(io.clone(), dir)?;
        if snaps.load_latest()?.is_some() {
            return Err(Error::Store(format!(
                "{} already holds engine data; restart with recover()",
                dir.display()
            )));
        }
        let (wal, report) = Wal::open(io, dir)?;
        if report.last_seq != 0 {
            return Err(Error::Store(format!(
                "{} holds {} wal records but no snapshot; refusing to overwrite",
                dir.display(),
                report.records
            )));
        }
        let seq = wal.next_seq() - 1;
        let payload = persist::encode_engine(self, &[])?;
        snaps.save(seq, &payload)?;
        self.durability = Some(Durability {
            _lock: lock,
            wal,
            snaps,
            snapshot_due: false,
            prev_snapshot_seq: Some(seq),
            sidecar: Vec::new(),
            recoveries: 0,
        });
        Ok(())
    }

    /// [`attach_durability`](Self::attach_durability) against the real
    /// filesystem.
    pub fn attach_durability_at(&mut self, dir: &Path) -> Result<()> {
        self.attach_durability(RealIo::shared(), dir)
    }

    /// Whether a durability attachment is active.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Whether `dir` holds recoverable engine data (any snapshot file).
    /// Servers use this to decide between a fresh
    /// [`attach_durability`](Self::attach_durability) and
    /// [`recover`](Self::recover).
    pub fn has_data(io: &SharedIo, dir: &Path) -> bool {
        io.list(dir)
            .map(|names| {
                names
                    .iter()
                    .any(|n| n.starts_with("snap-") && n.ends_with(".snap"))
            })
            .unwrap_or(false)
    }

    /// Rebuilds an engine from `dir`: newest valid snapshot plus WAL tail
    /// replay. The recovered engine resumes exactly where the acknowledged
    /// history ended — continuation results are identical to a run that
    /// never crashed. Corruption beyond the WAL's torn tail (or with no
    /// surviving snapshot) is reported as an error, never replayed around.
    pub fn recover(io: SharedIo, dir: &Path) -> Result<(Self, RecoveryReport)> {
        let lock = DirLock::acquire(io.clone(), dir)?;
        let snaps = SnapshotStore::open(io.clone(), dir)?;
        let loaded = snaps.load_latest()?.ok_or_else(|| {
            Error::Store(format!(
                "{} holds no snapshot; build a fresh engine with attach_durability()",
                dir.display()
            ))
        })?;
        let (mut engine, sidecar) = persist::restore_engine(&loaded.payload)?;
        let (wal, wal_report) = Wal::open(io, dir)?;
        match wal.first_seq() {
            Some(first) if first > loaded.seq + 1 => {
                return Err(Error::Corrupt(format!(
                    "wal starts at seq {first}, leaving a gap after snapshot seq {}",
                    loaded.seq
                )));
            }
            Some(_) if wal.next_seq() <= loaded.seq => {
                return Err(Error::Corrupt(format!(
                    "wal ends at seq {} before snapshot seq {}",
                    wal_report.last_seq, loaded.seq
                )));
            }
            None if loaded.seq > 0 => {
                return Err(Error::Corrupt(format!(
                    "wal is empty but the snapshot covers seq {}",
                    loaded.seq
                )));
            }
            _ => {}
        }

        let mut report = RecoveryReport {
            snapshot_seq: loaded.seq,
            snapshots_skipped: loaded.skipped,
            wal_truncation: wal_report.truncation,
            wal_truncated_bytes: wal_report.truncated_bytes,
            sidecar: sidecar.clone(),
            ..RecoveryReport::default()
        };
        for (seq, body) in wal.read_from(loaded.seq)? {
            let record = persist::decode_record(&body)
                .map_err(|e| Error::Corrupt(format!("wal record {seq}: {e}")))?;
            match record {
                WalRecord::Frame(frame) => {
                    let result = engine.observe_applied(&frame).map_err(|e| {
                        Error::Corrupt(format!("wal frame {} does not replay: {e}", frame.fid))
                    })?;
                    report.replayed_frames.push(result);
                }
                WalRecord::AddQuery(query) => {
                    engine.apply_add_query(query).map_err(|e| {
                        Error::Corrupt(format!("wal add-query {seq} does not replay: {e}"))
                    })?;
                }
                WalRecord::RemoveQuery(id) => {
                    engine.apply_remove_query(id).map_err(|e| {
                        Error::Corrupt(format!("wal remove-query {seq} does not replay: {e}"))
                    })?;
                }
            }
            report.records_replayed += 1;
        }

        engine.durability = Some(Durability {
            _lock: lock,
            wal,
            snaps,
            // Checkpoint the replayed state at the next opportunity so a
            // crash loop cannot grow the unpruned tail without bound.
            snapshot_due: true,
            prev_snapshot_seq: Some(loaded.seq),
            sidecar,
            recoveries: 1,
        });
        Ok((engine, report))
    }

    /// [`recover`](Self::recover) against the real filesystem.
    pub fn recover_at(dir: &Path) -> Result<(Self, RecoveryReport)> {
        Self::recover(RealIo::shared(), dir)
    }

    /// Replaces the opaque sidecar blob persisted inside the next snapshot.
    /// No-op without a durability attachment. The multi-feed worker stores
    /// its per-feed tally here; embedders can persist any small piece of
    /// engine-adjacent state the same way.
    pub fn set_durable_sidecar(&mut self, sidecar: Vec<u8>) {
        if let Some(d) = &mut self.durability {
            d.sidecar = sidecar;
        }
    }

    /// Flushes pending durability work: writes a due snapshot and fsyncs
    /// the WAL. The graceful-shutdown hook — after it returns, dropping the
    /// engine (or the process) loses nothing.
    pub fn sync_store(&mut self) -> Result<()> {
        self.flush_due_snapshot()?;
        if let Some(d) = &mut self.durability {
            d.wal.sync()?;
        }
        Ok(())
    }

    /// Forces a snapshot now (marks one due and flushes it), regardless of
    /// compaction epochs. Errs without a durability attachment.
    pub fn snapshot_now(&mut self) -> Result<()> {
        match &mut self.durability {
            Some(d) => {
                d.snapshot_due = true;
                self.flush_due_snapshot()
            }
            None => Err(Error::Store("no durability attachment".into())),
        }
    }

    /// Overrides the WAL's segment-rotation threshold. No-op without a
    /// durability attachment. Production keeps the default; the crash suite
    /// shrinks it so rotation crash points exist within a short script.
    pub fn set_wal_rotate_bytes(&mut self, bytes: usize) {
        if let Some(d) = &mut self.durability {
            d.wal.set_rotate_bytes(bytes);
        }
    }

    /// Marks a snapshot due (called at compaction epoch boundaries).
    pub(crate) fn mark_snapshot_due(&mut self) {
        if let Some(d) = &mut self.durability {
            d.snapshot_due = true;
        }
    }

    /// Writes the deferred snapshot, if one is due, covering every record
    /// logged so far; then prunes the WAL through the *previous* retained
    /// snapshot's sequence.
    pub(crate) fn flush_due_snapshot(&mut self) -> Result<()> {
        let due = self.durability.as_ref().is_some_and(|d| d.snapshot_due);
        if !due {
            return Ok(());
        }
        let sidecar = std::mem::take(&mut self.durability.as_mut().expect("checked above").sidecar);
        let payload = persist::encode_engine(self, &sidecar);
        let d = self.durability.as_mut().expect("checked above");
        d.sidecar = sidecar;
        let payload = payload?;
        let seq = d.wal.next_seq() - 1;
        d.snaps.save(seq, &payload)?;
        if let Some(prev) = d.prev_snapshot_seq {
            d.wal.prune_through(prev)?;
        }
        d.prev_snapshot_seq = Some(seq);
        d.snapshot_due = false;
        Ok(())
    }

    /// Logs and fsyncs an applied operation's record. Called after the
    /// in-memory apply succeeded; the `Ok` it gates is the caller's
    /// durability acknowledgement.
    pub(crate) fn log_durable(&mut self, body: &[u8]) -> Result<()> {
        if let Some(d) = &mut self.durability {
            d.wal.append(body)?;
            d.wal.sync()?;
        }
        Ok(())
    }

    /// Encodes `frame`'s WAL record if durability is attached (before the
    /// apply, so the apply can consume the frame).
    pub(crate) fn pending_frame_record(&self, frame: &FrameObjects) -> Option<Vec<u8>> {
        self.durability
            .is_some()
            .then(|| persist::encode_frame_record(frame))
    }
}
