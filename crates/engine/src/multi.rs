//! Sharded multi-feed engine.
//!
//! The single-feed [`TemporalVideoQueryEngine`] answers CNF co-occurrence
//! queries over *one* camera feed. A production deployment watches many
//! cameras at once; [`MultiFeedEngine`] scales the same query semantics to N
//! concurrent feeds by sharding feeds across a fixed pool of worker threads
//! (plain `std::thread` + `std::sync::mpsc` channels — no extra
//! dependencies):
//!
//! * every feed is pinned to the worker `feed mod workers`, so each feed's
//!   frames are always processed in order by exactly one thread;
//! * each worker lazily materialises one single-feed engine per feed it
//!   owns, built from a shared immutable query registry (configuration,
//!   class registry and registered queries are fixed at build time);
//! * [`MultiFeedEngine::push_batch`] ingests a batch of feed-tagged frames,
//!   fans them out to the shards, and returns the per-frame results in the
//!   batch's input order — independent of thread scheduling;
//! * [`MultiFeedEngine::report`] merges per-feed results and
//!   [`MaintenanceMetrics`] into a global report ordered by [`FeedId`], so
//!   cross-feed output is deterministic.
//!
//! Because each per-feed engine is exactly a single-feed engine fed the same
//! frames in the same order, a sharded run is frame-for-frame identical to N
//! independent single-feed runs; the differential suite pins this down.
//!
//! # Example
//!
//! ```
//! use tvq_common::{ClassId, FeedId, FrameId, FrameObjects, ObjectId, WindowSpec};
//! use tvq_engine::{EngineConfig, FeedFrame, MultiFeedConfig, MultiFeedEngine};
//!
//! let config = MultiFeedConfig::new(EngineConfig::new(WindowSpec::new(3, 2).unwrap()))
//!     .with_workers(2);
//! let mut engine = MultiFeedEngine::builder(config)
//!     .with_query_text("car >= 1 AND person >= 1")
//!     .unwrap()
//!     .build()
//!     .unwrap();
//!
//! // Three frames from each of two cameras, tagged with their feed.
//! let mut batch = Vec::new();
//! for feed in 0..2u32 {
//!     for fid in 0..3u64 {
//!         batch.push(FeedFrame::new(
//!             FeedId(feed),
//!             FrameObjects::new(
//!                 FrameId(fid),
//!                 vec![(ObjectId(1), ClassId(1)), (ObjectId(2), ClassId(0))],
//!             ),
//!         ));
//!     }
//! }
//! let results = engine.push_batch(&batch).unwrap();
//! assert_eq!(results.len(), 6);
//! // Both feeds see the car+person pair co-occur long enough by frame 1.
//! assert!(results.iter().filter(|r| r.result.any()).count() >= 2);
//!
//! let report = engine.report().unwrap();
//! assert_eq!(report.feeds.len(), 2);
//! assert_eq!(report.metrics.frames_processed, 6);
//! ```

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tvq_common::{
    ClassRegistry, DatasetStats, Error, FeedId, FrameObjects, QueryId, Result, SharedClassMap,
};
use tvq_core::MaintenanceMetrics;
use tvq_query::CnfQuery;

use crate::config::{EngineConfig, MultiFeedConfig};
use crate::engine::{FrameResult, TemporalVideoQueryEngine};

/// How long a batch waits for a missing shard result before concluding the
/// worker is gone. Generous: a healthy worker answers in microseconds.
const SHARD_TIMEOUT: Duration = Duration::from_secs(60);

/// One frame of detections tagged with the feed (camera) it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedFrame {
    /// The feed the frame belongs to.
    pub feed: FeedId,
    /// The frame's detections.
    pub frame: FrameObjects,
}

impl FeedFrame {
    /// Tags a frame with its feed.
    pub fn new(feed: FeedId, frame: FrameObjects) -> Self {
        FeedFrame { feed, frame }
    }
}

impl From<(FeedId, FrameObjects)> for FeedFrame {
    fn from((feed, frame): (FeedId, FrameObjects)) -> Self {
        FeedFrame::new(feed, frame)
    }
}

/// The result of processing one feed-tagged frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedFrameResult {
    /// The feed the frame belonged to.
    pub feed: FeedId,
    /// The per-frame query matches, identical to what a dedicated
    /// single-feed engine would report for the same feed.
    pub result: FrameResult,
}

/// Summary of one feed's engine at report time.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedReport {
    /// The feed this report describes.
    pub feed: FeedId,
    /// The MCOS-generation strategy serving the feed (e.g. `"SSG_O"`).
    pub strategy: String,
    /// Frames the feed has contributed so far.
    pub frames: u64,
    /// Total query matches across the feed's frames.
    pub total_matches: u64,
    /// Frames with at least one match.
    pub matching_frames: u64,
    /// States currently materialised by the feed's maintainer.
    pub live_states: usize,
    /// The query-catalog version the feed's engine answered under when the
    /// report was taken. Every feed of a healthy fleet reports the same
    /// version: catalog ops broadcast through the same FIFO channels as
    /// frames, so by collection time every shard has applied every swap.
    pub catalog_version: u64,
    /// The feed's maintenance work counters.
    pub metrics: MaintenanceMetrics,
}

/// A deterministic global view over every feed the engine has seen: one
/// [`FeedReport`] per feed in ascending [`FeedId`] order, plus the merged
/// work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFeedReport {
    /// Per-feed summaries, sorted by feed identifier.
    pub feeds: Vec<FeedReport>,
    /// All per-feed metrics folded with [`MaintenanceMetrics::merge`].
    pub metrics: MaintenanceMetrics,
    /// The fleet's query-catalog version at collection time. Per-feed
    /// engines seeded after swaps report this same version (not zero), so
    /// the merge is version-coherent — see
    /// [`FeedReport::catalog_version`].
    pub catalog_version: u64,
}

impl MultiFeedReport {
    /// Number of feeds observed so far.
    pub fn num_feeds(&self) -> usize {
        self.feeds.len()
    }

    /// Total frames processed across all feeds.
    pub fn total_frames(&self) -> u64 {
        self.feeds.iter().map(|f| f.frames).sum()
    }

    /// Total query matches across all feeds.
    pub fn total_matches(&self) -> u64 {
        self.feeds.iter().map(|f| f.total_matches).sum()
    }

    /// Total frames with at least one match, across all feeds.
    pub fn matching_frames(&self) -> u64 {
        self.feeds.iter().map(|f| f.matching_frames).sum()
    }
}

/// The shared immutable query registry: everything a worker needs to build
/// the single-feed engine of a feed it sees for the first time.
struct EngineSpec {
    config: EngineConfig,
    registry: ClassRegistry,
    queries: Vec<CnfQuery>,
    stats: Option<DatasetStats>,
    /// One class store for every per-feed engine, when the deployment
    /// opted into [`MultiFeedConfig::shared_class_store`]. Reference
    /// counting in the store keeps one shard's epoch retirement from
    /// evicting entries another shard still tracks.
    class_store: Option<SharedClassMap>,
}

impl EngineSpec {
    /// Builds a per-feed engine for the *current* catalog state: a feed
    /// first seen after swaps must answer under the swapped query set and
    /// report the fleet's version, not the build-time spec — per-feed
    /// engines built lazily from a stale spec were exactly the
    /// stale-report bug the version plumbing exists to prevent.
    fn build_engine(&self, queries: &[CnfQuery], version: u64) -> Result<TemporalVideoQueryEngine> {
        let mut builder = TemporalVideoQueryEngine::builder(self.config)
            .with_registry(self.registry.clone())
            .allow_empty_catalog()
            .with_catalog_seed(version);
        for query in queries {
            builder = builder.with_query(query.clone());
        }
        if let Some(stats) = self.stats.clone() {
            builder = builder.with_feed_stats(stats);
        }
        if let Some(store) = &self.class_store {
            builder = builder.with_class_store(Arc::clone(store));
        }
        builder.build()
    }
}

/// Builder for [`MultiFeedEngine`]. Mirrors the single-feed
/// [`EngineBuilder`](crate::EngineBuilder): queries registered here form the
/// shared immutable registry every per-feed engine is built from.
pub struct MultiFeedBuilder {
    config: MultiFeedConfig,
    registry: ClassRegistry,
    queries: Vec<CnfQuery>,
    stats: Option<DatasetStats>,
    allow_empty: bool,
}

impl MultiFeedBuilder {
    /// Starts a builder with the given configuration and the default class
    /// registry.
    pub fn new(config: MultiFeedConfig) -> Self {
        MultiFeedBuilder {
            config,
            registry: ClassRegistry::with_default_classes(),
            queries: Vec::new(),
            stats: None,
            allow_empty: false,
        }
    }

    /// Permits building with zero registered queries (the server starts
    /// idle and receives its workload over the wire via
    /// [`MultiFeedEngine::add_query`]).
    pub fn allow_empty_catalog(mut self) -> Self {
        self.allow_empty = true;
        self
    }

    /// Uses a custom class registry.
    pub fn with_registry(mut self, registry: ClassRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers a structured query (applied to every feed).
    pub fn with_query(mut self, query: CnfQuery) -> Self {
        self.queries.push(query);
        self
    }

    /// Registers a query written in the textual language, e.g.
    /// `"car >= 2 AND person >= 1"`. New class labels are registered.
    pub fn with_query_text(mut self, text: &str) -> Result<Self> {
        let id = QueryId(self.queries.len() as u32);
        let query = tvq_query::parse_query(text, id, &mut self.registry)?;
        self.queries.push(query);
        Ok(self)
    }

    /// Supplies feed statistics for adaptive maintainer selection (applied
    /// uniformly to every per-feed engine).
    pub fn with_feed_stats(mut self, stats: DatasetStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Builds the engine, spawning the worker pool.
    pub fn build(self) -> Result<MultiFeedEngine> {
        if self.config.workers == 0 {
            return Err(Error::InvalidConfig(
                "multi-feed engine needs at least one worker".to_owned(),
            ));
        }
        if self.queries.is_empty() && !self.allow_empty {
            return Err(Error::InvalidConfig(
                "at least one query must be registered".to_owned(),
            ));
        }
        let queries = self.queries.clone();
        let registry = self.registry.clone();
        let spec = Arc::new(EngineSpec {
            config: self.config.engine,
            registry: self.registry,
            queries: self.queries,
            stats: self.stats,
            class_store: self
                .config
                .shared_class_store
                .then(tvq_common::shared_class_store),
        });
        // Validate the shared spec once, up front, so that per-feed engine
        // construction inside the workers cannot fail later.
        spec.build_engine(&spec.queries, 0)?;
        let (results_tx, results_rx) = mpsc::channel();
        let workers = (0..self.config.workers)
            .map(|index| {
                let (inbox_tx, inbox_rx) = mpsc::channel();
                let spec = Arc::clone(&spec);
                let results = results_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("tvq-shard-{index}"))
                    .spawn(move || worker_loop(spec, inbox_rx, results))
                    .map_err(Error::Io)?;
                Ok(Worker {
                    inbox: Some(inbox_tx),
                    handle: Some(handle),
                })
            })
            .collect::<Result<Vec<Worker>>>()?;
        Ok(MultiFeedEngine {
            config: self.config,
            workers,
            results: results_rx,
            epoch: 0,
            queries,
            registry,
            catalog_version: 0,
        })
    }
}

/// One catalog mutation, broadcast to every worker.
#[derive(Clone)]
enum CatalogOp {
    Add(CnfQuery),
    Remove(QueryId),
}

enum WorkerMsg {
    /// One batch's worth of frames for this worker, in batch order. Shipping
    /// a worker's whole share in one message (instead of one message per
    /// frame) keeps the channel and thread-wakeup cost at O(workers) per
    /// batch rather than O(frames).
    Frames {
        /// The batch these frames belong to. Results carry it back so an
        /// aborted batch (e.g. a lost shard mid-send) cannot leave stale
        /// results that a later batch would mistake for its own.
        epoch: u64,
        frames: Vec<(usize, FeedId, FrameObjects)>,
    },
    /// A catalog swap. Queues behind any frames already sent on the same
    /// channel and ahead of any sent later, so every worker applies it at
    /// the same point of the frame stream — epoch-aligned, deterministic,
    /// and invisible to `(seq, feed)` result ordering. Fire-and-forget:
    /// the engine validated the op centrally, so workers cannot reject it.
    Catalog {
        version: u64,
        op: CatalogOp,
    },
    Collect {
        reply: Sender<Vec<FeedReport>>,
    },
}

type ShardResult = (u64, Vec<(usize, FeedId, Result<FrameResult>)>);

/// Running per-feed tallies a worker keeps alongside each engine.
#[derive(Default)]
struct FeedTally {
    frames: u64,
    total_matches: u64,
    matching_frames: u64,
}

impl FeedTally {
    fn record(&mut self, result: &FrameResult) {
        self.frames += 1;
        self.total_matches += result.matches.len() as u64;
        if result.any() {
            self.matching_frames += 1;
        }
    }
}

fn worker_loop(spec: Arc<EngineSpec>, inbox: Receiver<WorkerMsg>, results: Sender<ShardResult>) {
    // BTreeMap so collection iterates feeds in ascending id order.
    let mut engines: BTreeMap<FeedId, (TemporalVideoQueryEngine, FeedTally)> = BTreeMap::new();
    // The worker-local view of the current catalog: engines for feeds first
    // seen *after* a swap must be built from this, not the build-time spec,
    // or a late-arriving feed would answer (and report metrics) under a
    // stale query set.
    let mut current_queries: Vec<CnfQuery> = spec.queries.clone();
    let mut current_version: u64 = 0;
    for message in inbox {
        match message {
            WorkerMsg::Catalog { version, op } => {
                match &op {
                    CatalogOp::Add(query) => current_queries.push(query.clone()),
                    CatalogOp::Remove(id) => current_queries.retain(|q| q.id != *id),
                }
                current_version = version;
                for (engine, _) in engines.values_mut() {
                    // Centrally validated; per-engine application cannot
                    // fail (ids are fleet-unique and present everywhere).
                    let applied = match &op {
                        CatalogOp::Add(query) => engine.add_query(query.clone()),
                        CatalogOp::Remove(id) => engine.remove_query(*id),
                    };
                    debug_assert!(applied.is_ok(), "validated catalog op rejected");
                }
            }
            WorkerMsg::Frames { epoch, frames } => {
                let mut outcomes: Vec<(usize, FeedId, Result<FrameResult>)> =
                    Vec::with_capacity(frames.len());
                for (seq, feed, frame) in frames {
                    let entry = match engines.entry(feed) {
                        Entry::Occupied(entry) => entry.into_mut(),
                        Entry::Vacant(vacant) => {
                            match spec.build_engine(&current_queries, current_version) {
                                Ok(engine) => vacant.insert((engine, FeedTally::default())),
                                Err(error) => {
                                    // Unreachable in practice: the builder
                                    // validated the spec. Report instead of
                                    // panicking.
                                    outcomes.push((seq, feed, Err(error)));
                                    continue;
                                }
                            }
                        }
                    };
                    let outcome = entry.0.observe(&frame);
                    if let Ok(result) = &outcome {
                        entry.1.record(result);
                    }
                    outcomes.push((seq, feed, outcome));
                }
                if results.send((epoch, outcomes)).is_err() {
                    return; // Engine dropped; shut down.
                }
            }
            WorkerMsg::Collect { reply } => {
                let reports = engines
                    .iter()
                    .map(|(&feed, (engine, tally))| FeedReport {
                        feed,
                        strategy: engine.strategy().to_owned(),
                        frames: tally.frames,
                        total_matches: tally.total_matches,
                        matching_frames: tally.matching_frames,
                        live_states: engine.live_states(),
                        catalog_version: engine.catalog_version(),
                        metrics: engine.metrics(),
                    })
                    .collect();
                let _ = reply.send(reports);
            }
        }
    }
}

struct Worker {
    /// `None` only during shutdown (see `Drop for MultiFeedEngine`).
    inbox: Option<Sender<WorkerMsg>>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of single-feed engines sharded across worker threads, answering
/// the same CNF queries over N camera feeds concurrently.
///
/// See the [module documentation](self) for the sharding model and a usage
/// example. Constructed via [`MultiFeedEngine::builder`].
pub struct MultiFeedEngine {
    config: MultiFeedConfig,
    workers: Vec<Worker>,
    results: Receiver<ShardResult>,
    /// Monotonic batch counter; see `WorkerMsg::Frame::epoch`.
    epoch: u64,
    /// The master query list: the engine validates catalog ops against it
    /// before broadcasting, so workers can apply them infallibly.
    queries: Vec<CnfQuery>,
    /// The master class registry, used to parse textual queries added over
    /// [`add_query_text`](Self::add_query_text).
    registry: ClassRegistry,
    /// The fleet-wide catalog version (one increment per broadcast op).
    catalog_version: u64,
}

impl std::fmt::Debug for MultiFeedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiFeedEngine")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl MultiFeedEngine {
    /// Starts a builder.
    pub fn builder(config: MultiFeedConfig) -> MultiFeedBuilder {
        MultiFeedBuilder::new(config)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MultiFeedConfig {
        &self.config
    }

    /// Number of worker threads in the pool.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The worker index feed `feed` is pinned to.
    pub fn shard_of(&self, feed: FeedId) -> usize {
        feed.raw() as usize % self.workers.len()
    }

    /// The fleet-wide query-catalog version.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// The currently registered queries (the master copy every per-feed
    /// engine mirrors).
    pub fn queries(&self) -> &[CnfQuery] {
        &self.queries
    }

    /// Registers a query across the whole fleet. The swap is epoch-aligned:
    /// it queues behind every frame already pushed and ahead of every frame
    /// pushed later, identically on every shard, so result ordering by
    /// `(seq, feed)` is unchanged and reruns are deterministic.
    pub fn add_query(&mut self, query: CnfQuery) -> Result<()> {
        query.validate().map_err(Error::InvalidConfig)?;
        if self.queries.iter().any(|q| q.id == query.id) {
            return Err(Error::InvalidConfig(format!(
                "query id {:?} is already registered",
                query.id
            )));
        }
        self.broadcast(CatalogOp::Add(query.clone()))?;
        self.queries.push(query);
        Ok(())
    }

    /// Parses and registers a textual query (e.g. `"car >= 2"`) across the
    /// fleet, minting the next free query id.
    pub fn add_query_text(&mut self, text: &str) -> Result<QueryId> {
        let id = QueryId(self.queries.iter().map(|q| q.id.0 + 1).max().unwrap_or(0));
        let query = tvq_query::parse_query(text, id, &mut self.registry)?;
        self.add_query(query)?;
        Ok(id)
    }

    /// Cancels a query across the whole fleet (same alignment guarantees
    /// as [`add_query`](Self::add_query)).
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        if !self.queries.iter().any(|q| q.id == id) {
            return Err(Error::InvalidConfig(format!("unknown query id {id:?}")));
        }
        self.broadcast(CatalogOp::Remove(id))?;
        self.queries.retain(|q| q.id != id);
        Ok(())
    }

    fn broadcast(&mut self, op: CatalogOp) -> Result<()> {
        let version = self.catalog_version + 1;
        for (index, worker) in self.workers.iter().enumerate() {
            let inbox = worker
                .inbox
                .as_ref()
                .ok_or(Error::ShardLost { worker: index })?;
            inbox
                .send(WorkerMsg::Catalog {
                    version,
                    op: op.clone(),
                })
                .map_err(|_| Error::ShardLost { worker: index })?;
        }
        self.catalog_version = version;
        Ok(())
    }

    /// Processes a single feed-tagged frame. Equivalent to a one-element
    /// [`push_batch`](Self::push_batch).
    pub fn push(&mut self, feed: FeedId, frame: FrameObjects) -> Result<FeedFrameResult> {
        let mut results = self.push_batch(std::slice::from_ref(&FeedFrame::new(feed, frame)))?;
        Ok(results.pop().expect("one result per pushed frame"))
    }

    /// Ingests a batch of feed-tagged frames and returns one result per
    /// frame, **in the batch's input order** regardless of how the shards
    /// interleave.
    ///
    /// Within a batch, a feed's frames must appear in increasing frame-id
    /// order (the usual streaming contract); frames of different feeds may
    /// be interleaved arbitrarily. Each feed's frames are processed by its
    /// pinned worker in batch order, so results are deterministic: the same
    /// batches produce the same results for any worker-pool size.
    pub fn push_batch(&mut self, batch: &[FeedFrame]) -> Result<Vec<FeedFrameResult>> {
        self.epoch += 1;
        let epoch = self.epoch;
        // Group the batch per shard (preserving batch order within each
        // shard, which preserves per-feed frame order) so each worker
        // receives one message per batch.
        let mut shares: Vec<Vec<(usize, FeedId, FrameObjects)>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for (seq, tagged) in batch.iter().enumerate() {
            shares[self.shard_of(tagged.feed)].push((seq, tagged.feed, tagged.frame.clone()));
        }
        let mut outstanding = 0usize;
        for (worker, frames) in shares.into_iter().enumerate() {
            if frames.is_empty() {
                continue;
            }
            let inbox = self.workers[worker]
                .inbox
                .as_ref()
                .ok_or(Error::ShardLost { worker })?;
            inbox
                .send(WorkerMsg::Frames { epoch, frames })
                .map_err(|_| Error::ShardLost { worker })?;
            outstanding += 1;
        }
        let mut slots: Vec<Option<(FeedId, Result<FrameResult>)>> =
            (0..batch.len()).map(|_| None).collect();
        // A worker replies once per share, so the wait must cover a whole
        // share of frames, not one: scale the timeout with the batch size
        // (generous — a healthy maintainer processes a frame in well under
        // 100ms) on top of the fixed allowance.
        let timeout = SHARD_TIMEOUT + Duration::from_millis(100) * batch.len() as u32;
        while outstanding > 0 {
            let (result_epoch, outcomes) = match self.results.recv_timeout(timeout) {
                Ok(result) => result,
                Err(_) => {
                    // Name the shard that owes the first outstanding result.
                    let worker = slots
                        .iter()
                        .position(|slot| slot.is_none())
                        .map(|seq| self.shard_of(batch[seq].feed))
                        .unwrap_or(0);
                    return Err(Error::ShardLost { worker });
                }
            };
            if result_epoch != epoch {
                // Leftover from a batch that aborted mid-send: discard.
                continue;
            }
            for (seq, feed, outcome) in outcomes {
                slots[seq] = Some((feed, outcome));
            }
            outstanding -= 1;
        }
        // Surface the earliest (by batch position) per-frame error so the
        // failure report is deterministic too.
        let mut out = Vec::with_capacity(batch.len());
        for slot in slots {
            let (feed, outcome) = slot.expect("every sequence number is reported exactly once");
            out.push(FeedFrameResult {
                feed,
                result: outcome?,
            });
        }
        Ok(out)
    }

    /// Collects a deterministic global report: one [`FeedReport`] per feed
    /// in ascending feed-id order plus the merged metrics.
    ///
    /// The collection message queues behind any frames already sent to each
    /// worker, so a report taken after [`push_batch`](Self::push_batch)
    /// returns reflects every frame of that batch.
    pub fn report(&self) -> Result<MultiFeedReport> {
        let mut feeds: Vec<FeedReport> = Vec::new();
        for (index, worker) in self.workers.iter().enumerate() {
            let inbox = worker
                .inbox
                .as_ref()
                .ok_or(Error::ShardLost { worker: index })?;
            let (reply_tx, reply_rx) = mpsc::channel();
            inbox
                .send(WorkerMsg::Collect { reply: reply_tx })
                .map_err(|_| Error::ShardLost { worker: index })?;
            let part = reply_rx
                .recv_timeout(SHARD_TIMEOUT)
                .map_err(|_| Error::ShardLost { worker: index })?;
            feeds.extend(part);
        }
        feeds.sort_by_key(|report| report.feed);
        // Version-aware merge: the collect message queued behind every
        // catalog op on every shard, so each feed must report the fleet's
        // current version — a mismatch would mean some shard merged
        // metrics computed under a different query set.
        debug_assert!(
            feeds
                .iter()
                .all(|report| report.catalog_version == self.catalog_version),
            "a shard reported under a stale catalog version"
        );
        let metrics = MaintenanceMetrics::merged(feeds.iter().map(|report| &report.metrics));
        Ok(MultiFeedReport {
            feeds,
            metrics,
            catalog_version: self.catalog_version,
        })
    }
}

impl Drop for MultiFeedEngine {
    fn drop(&mut self) {
        // Closing every inbox ends the worker loops; then join so no thread
        // outlives the engine.
        for worker in &mut self.workers {
            worker.inbox.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::{ClassId, FrameId, ObjectId, WindowSpec};
    use tvq_core::MaintainerKind;

    fn frame(fid: u64, detections: &[(u32, u16)]) -> FrameObjects {
        FrameObjects::new(
            FrameId(fid),
            detections
                .iter()
                .map(|&(id, class)| (ObjectId(id), ClassId(class)))
                .collect(),
        )
    }

    fn config(workers: usize) -> MultiFeedConfig {
        MultiFeedConfig::new(
            EngineConfig::new(WindowSpec::new(4, 3).unwrap()).with_maintainer(MaintainerKind::Ssg),
        )
        .with_workers(workers)
    }

    fn engine(workers: usize) -> MultiFeedEngine {
        MultiFeedEngine::builder(config(workers))
            .with_query_text("car >= 1 AND person >= 1")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_queries_and_workers() {
        assert!(MultiFeedEngine::builder(config(2)).build().is_err());
        let err = MultiFeedEngine::builder(config(0))
            .with_query_text("car >= 1")
            .unwrap()
            .build();
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn feeds_are_pinned_deterministically() {
        let engine = engine(3);
        assert_eq!(engine.num_workers(), 3);
        for raw in 0..9u32 {
            assert_eq!(engine.shard_of(FeedId(raw)), raw as usize % 3);
        }
    }

    #[test]
    fn batch_results_preserve_input_order() {
        let mut engine = engine(2);
        let batch: Vec<FeedFrame> = (0..4u32)
            .flat_map(|feed| {
                (0..3u64)
                    .map(move |fid| FeedFrame::new(FeedId(feed), frame(fid, &[(1, 1), (2, 0)])))
            })
            .collect();
        let results = engine.push_batch(&batch).unwrap();
        assert_eq!(results.len(), batch.len());
        for (tagged, result) in batch.iter().zip(&results) {
            assert_eq!(result.feed, tagged.feed);
            assert_eq!(result.result.frame, tagged.frame.fid);
        }
    }

    #[test]
    fn per_feed_streams_are_isolated() {
        let mut engine = engine(2);
        // Feed 0 sees the car+person pair for 3 frames; feed 1 only a car.
        let mut batch = Vec::new();
        for fid in 0..3u64 {
            batch.push(FeedFrame::new(FeedId(0), frame(fid, &[(1, 1), (2, 0)])));
            batch.push(FeedFrame::new(FeedId(1), frame(fid, &[(1, 1)])));
        }
        let results = engine.push_batch(&batch).unwrap();
        let matched: Vec<FeedId> = results
            .iter()
            .filter(|r| r.result.any())
            .map(|r| r.feed)
            .collect();
        assert_eq!(matched, vec![FeedId(0)]);
        let report = engine.report().unwrap();
        assert_eq!(report.num_feeds(), 2);
        assert_eq!(report.feeds[0].feed, FeedId(0));
        assert_eq!(report.feeds[0].matching_frames, 1);
        assert_eq!(report.feeds[1].matching_frames, 0);
        assert_eq!(report.total_frames(), 6);
        assert_eq!(report.metrics.frames_processed, 6);
    }

    #[test]
    fn out_of_order_frames_error_without_killing_the_pool() {
        let mut engine = engine(1);
        engine.push(FeedId(0), frame(5, &[(1, 1)])).unwrap();
        let err = engine.push(FeedId(0), frame(2, &[(1, 1)]));
        assert!(matches!(err, Err(Error::OutOfOrderFrame { .. })));
        // The pool survives and other feeds still work.
        let ok = engine.push(FeedId(1), frame(0, &[(1, 1), (2, 0)]));
        assert!(ok.is_ok());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let batch: Vec<FeedFrame> = (0..6u32)
            .flat_map(|feed| {
                (0..8u64).map(move |fid| {
                    let mut detections = vec![((feed + fid as u32) % 4, 1u16)];
                    if (fid + u64::from(feed)) % 2 == 0 {
                        detections.push((10 + feed, 0));
                    }
                    FeedFrame::new(FeedId(feed), frame(fid, &detections))
                })
            })
            .collect();
        let mut baseline = None;
        for workers in [1usize, 2, 5] {
            let mut engine = engine(workers);
            let results = engine.push_batch(&batch).unwrap();
            let report = engine.report().unwrap();
            match &baseline {
                None => baseline = Some((results, report)),
                Some((expected_results, expected_report)) => {
                    assert_eq!(&results, expected_results, "workers={workers}");
                    assert_eq!(&report, expected_report, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn catalog_swaps_reach_every_shard_in_stream_order() {
        let mut engine = engine(3);
        // Warm two feeds under the original car+person query.
        for fid in 0..2u64 {
            for feed in 0..2u32 {
                engine
                    .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                    .unwrap();
            }
        }
        let person = engine.add_query_text("person >= 1").unwrap();
        assert_eq!(engine.catalog_version(), 1);
        // Enough frames for the new query's window (duration 3) to fill.
        let mut results = Vec::new();
        for fid in 2..6u64 {
            for feed in 0..2u32 {
                results.push(
                    engine
                        .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                        .unwrap(),
                );
            }
        }
        assert!(
            results
                .iter()
                .any(|r| r.result.matches.iter().any(|m| m.query == person)),
            "the added query matches on every feed"
        );
        engine.remove_query(person).unwrap();
        let last = engine.push(FeedId(0), frame(6, &[(1, 1), (2, 0)])).unwrap();
        assert!(
            last.result.matches.iter().all(|m| m.query != person),
            "removal is immediate"
        );
        let report = engine.report().unwrap();
        assert_eq!(report.catalog_version, 2);
        assert!(report.feeds.iter().all(|feed| feed.catalog_version == 2));
    }

    /// The stale-spec regression: a feed first seen *after* catalog swaps
    /// must answer under the swapped query set (and report the fleet's
    /// version), not the query set the pool was built with.
    #[test]
    fn feeds_arriving_after_a_swap_use_the_current_catalog() {
        let mut engine = engine(2);
        engine.push(FeedId(0), frame(0, &[(1, 1)])).unwrap();
        let person = engine.add_query_text("person >= 1").unwrap();
        // Feed 7 has never been seen; its engine is built lazily *now*.
        for fid in 0..3u64 {
            let result = engine.push(FeedId(7), frame(fid, &[(9, 0)])).unwrap();
            if fid == 2 {
                assert!(
                    result.result.matches.iter().any(|m| m.query == person),
                    "a lazily built engine must know the added query: {:?}",
                    result.result.matches
                );
            }
        }
        let report = engine.report().unwrap();
        assert_eq!(report.catalog_version, 1);
        for feed in &report.feeds {
            assert_eq!(feed.catalog_version, 1, "feed {} is stale", feed.feed);
        }
    }

    #[test]
    fn catalog_ops_validate_centrally() {
        let mut engine = engine(2);
        // Duplicate id: the builder registered QueryId(0).
        let dup = CnfQuery::conjunction(
            QueryId(0),
            vec![tvq_query::Condition::at_least(ClassId(1), 1)],
        );
        assert!(engine.add_query(dup).is_err());
        assert!(engine.remove_query(QueryId(9)).is_err());
        assert_eq!(engine.catalog_version(), 0, "failed ops don't bump");
        assert_eq!(engine.queries().len(), 1);
    }

    #[test]
    fn empty_fleet_starts_idle_and_accepts_queries() {
        assert!(MultiFeedEngine::builder(config(2)).build().is_err());
        let mut engine = MultiFeedEngine::builder(config(2))
            .allow_empty_catalog()
            .build()
            .unwrap();
        let result = engine.push(FeedId(0), frame(0, &[(1, 1)])).unwrap();
        assert!(!result.result.any());
        let car = engine.add_query_text("car >= 1").unwrap();
        for fid in 1..4u64 {
            let result = engine.push(FeedId(0), frame(fid, &[(1, 1)])).unwrap();
            if fid == 3 {
                assert!(result.result.matches.iter().any(|m| m.query == car));
            }
        }
    }

    #[test]
    fn report_merges_metrics_across_feeds() {
        let mut engine = engine(2);
        for fid in 0..4u64 {
            for feed in 0..3u32 {
                engine
                    .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                    .unwrap();
            }
        }
        let report = engine.report().unwrap();
        assert_eq!(report.num_feeds(), 3);
        let summed = MaintenanceMetrics::merged(report.feeds.iter().map(|f| &f.metrics));
        assert_eq!(report.metrics, summed);
        assert_eq!(report.metrics.frames_processed, 12);
        assert!(report.feeds.windows(2).all(|w| w[0].feed < w[1].feed));
    }
}
