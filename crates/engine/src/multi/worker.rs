//! Worker side of the sharded multi-feed engine.
//!
//! Each worker owns the single-feed engines of the feeds currently assigned
//! to it and drains one FIFO inbox. The FIFO is the whole correctness story:
//! frames, catalog swaps, migrations and collection requests all arrive on
//! the same channel, so every worker applies them in the exact order the
//! scheduler sent them — a catalog op broadcast before a migration is applied
//! to the feed's engine *before* it ships to its new worker, and the new
//! worker's copy of the same op (queued before the adoption) can never touch
//! the engine twice.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use tvq_common::{FeedId, FrameObjects, QueryId, Result};
use tvq_query::CnfQuery;

use super::{EngineSpec, FeedReport};
use crate::engine::{FrameResult, TemporalVideoQueryEngine};

/// One catalog mutation, broadcast to every worker.
#[derive(Clone)]
pub(super) enum CatalogOp {
    Add(CnfQuery),
    Remove(QueryId),
}

/// A feed's complete worker-side state. Boxed wherever it travels, so a
/// migration ships one pointer through a channel instead of deep-copying the
/// engine (whose footprint PR 5 bounded, making this move cheap *and*
/// small).
pub(super) struct FeedState {
    pub(super) engine: TemporalVideoQueryEngine,
    pub(super) tally: FeedTally,
}

pub(super) enum WorkerMsg {
    /// One batch's worth of frames for this worker, in batch order. Shipping
    /// a worker's whole share in one message (instead of one message per
    /// frame) keeps the channel and thread-wakeup cost at O(workers) per
    /// batch rather than O(frames).
    Frames {
        /// The batch these frames belong to. Results carry it back so an
        /// aborted batch (e.g. a lost shard mid-send) cannot leave stale
        /// results that a later batch would mistake for its own.
        epoch: u64,
        frames: Vec<(usize, FeedId, FrameObjects)>,
    },
    /// A catalog swap. Queues behind any frames already sent on the same
    /// channel and ahead of any sent later, so every worker applies it at
    /// the same point of the frame stream — epoch-aligned, deterministic,
    /// and invisible to `(seq, feed)` result ordering. Fire-and-forget:
    /// the engine validated the op centrally, so workers cannot reject it.
    Catalog {
        version: u64,
        op: CatalogOp,
    },
    /// Hand the named feed's state back to the scheduler (the first half of
    /// a migration). Replies `None` when this worker never built the feed —
    /// the scheduler then just re-pins and the new worker builds lazily.
    Migrate {
        feed: FeedId,
        reply: Sender<Option<Box<FeedState>>>,
    },
    /// Install a migrated feed's state (the second half of a migration,
    /// sent to the feed's new worker after the old one handed it over).
    Adopt {
        feed: FeedId,
        state: Box<FeedState>,
    },
    Collect {
        reply: Sender<Vec<FeedReport>>,
    },
}

/// One share of a batch answered by one worker: the batch epoch, the
/// worker's index, the per-frame outcomes, and the nanoseconds the worker
/// spent processing the share (scheduling telemetry — see
/// [`SchedulingStats`](super::SchedulingStats)).
pub(super) type ShardResult = (u64, usize, Vec<(usize, FeedId, Result<FrameResult>)>, u64);

/// Running per-feed tallies a worker keeps alongside each engine. They
/// travel with the engine on migration, so reports stay whole-lifetime
/// accurate no matter how many workers served the feed.
#[derive(Default)]
pub(super) struct FeedTally {
    pub(super) frames: u64,
    pub(super) total_matches: u64,
    pub(super) matching_frames: u64,
}

impl FeedTally {
    fn record(&mut self, result: &FrameResult) {
        self.frames += 1;
        self.total_matches += result.matches.len() as u64;
        if result.any() {
            self.matching_frames += 1;
        }
    }
}

pub(super) fn worker_loop(
    index: usize,
    spec: Arc<EngineSpec>,
    inbox: Receiver<WorkerMsg>,
    results: Sender<ShardResult>,
) {
    // BTreeMap so collection iterates feeds in ascending id order.
    let mut engines: BTreeMap<FeedId, Box<FeedState>> = BTreeMap::new();
    // The worker-local view of the current catalog: engines for feeds first
    // seen *after* a swap must be built from this, not the build-time spec,
    // or a late-arriving feed would answer (and report metrics) under a
    // stale query set.
    let mut current_queries: Vec<CnfQuery> = spec.queries.clone();
    let mut current_version: u64 = 0;
    for message in inbox {
        match message {
            WorkerMsg::Catalog { version, op } => {
                match &op {
                    CatalogOp::Add(query) => current_queries.push(query.clone()),
                    CatalogOp::Remove(id) => current_queries.retain(|q| q.id != *id),
                }
                current_version = version;
                for state in engines.values_mut() {
                    // Centrally validated; per-engine application cannot
                    // fail (ids are fleet-unique and present everywhere).
                    let applied = match &op {
                        CatalogOp::Add(query) => state.engine.add_query(query.clone()),
                        CatalogOp::Remove(id) => state.engine.remove_query(*id),
                    };
                    debug_assert!(applied.is_ok(), "validated catalog op rejected");
                }
            }
            WorkerMsg::Frames { epoch, frames } => {
                let started = Instant::now();
                let mut outcomes: Vec<(usize, FeedId, Result<FrameResult>)> =
                    Vec::with_capacity(frames.len());
                for (seq, feed, frame) in frames {
                    let state = match engines.entry(feed) {
                        Entry::Occupied(entry) => entry.into_mut(),
                        Entry::Vacant(vacant) => {
                            match spec.build_engine(&current_queries, current_version) {
                                Ok(engine) => vacant.insert(Box::new(FeedState {
                                    engine,
                                    tally: FeedTally::default(),
                                })),
                                Err(error) => {
                                    // Unreachable in practice: the builder
                                    // validated the spec. Report instead of
                                    // panicking.
                                    outcomes.push((seq, feed, Err(error)));
                                    continue;
                                }
                            }
                        }
                    };
                    let outcome = state.engine.observe(&frame);
                    if let Ok(result) = &outcome {
                        state.tally.record(result);
                    }
                    outcomes.push((seq, feed, outcome));
                }
                let busy = started.elapsed().as_nanos() as u64;
                if results.send((epoch, index, outcomes, busy)).is_err() {
                    return; // Engine dropped; shut down.
                }
            }
            WorkerMsg::Migrate { feed, reply } => {
                // Handing the state over (or reporting we never had it) is
                // all there is to it: the scheduler only migrates between
                // batches, so no frames of this feed can be queued behind
                // this message.
                let _ = reply.send(engines.remove(&feed));
            }
            WorkerMsg::Adopt { feed, state } => {
                let previous = engines.insert(feed, state);
                debug_assert!(
                    previous.is_none(),
                    "adopted a feed this worker already serves"
                );
            }
            WorkerMsg::Collect { reply } => {
                let reports = engines
                    .iter()
                    .map(|(&feed, state)| FeedReport {
                        feed,
                        strategy: state.engine.strategy().to_owned(),
                        frames: state.tally.frames,
                        total_matches: state.tally.total_matches,
                        matching_frames: state.tally.matching_frames,
                        live_states: state.engine.live_states(),
                        catalog_version: state.engine.catalog_version(),
                        metrics: state.engine.metrics(),
                    })
                    .collect();
                let _ = reply.send(reports);
            }
        }
    }
}
