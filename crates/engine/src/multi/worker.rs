//! Worker side of the sharded multi-feed engine.
//!
//! Each worker owns the single-feed engines of the feeds currently assigned
//! to it and drains one FIFO inbox. The FIFO is the whole correctness story:
//! frames, catalog swaps, migrations and collection requests all arrive on
//! the same channel, so every worker applies them in the exact order the
//! scheduler sent them — a catalog op broadcast before a migration is applied
//! to the feed's engine *before* it ships to its new worker, and the new
//! worker's copy of the same op (queued before the adoption) can never touch
//! the engine twice.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use tvq_common::codec::{Decoder, Encoder};
use tvq_common::{FeedId, FrameObjects, QueryId, Result};
use tvq_query::CnfQuery;

use super::{EngineSpec, FeedReport};
use crate::engine::{FrameResult, TemporalVideoQueryEngine};

/// One catalog mutation, broadcast to every worker.
#[derive(Clone)]
pub(super) enum CatalogOp {
    Add(CnfQuery),
    Remove(QueryId),
}

/// A feed's complete worker-side state. Boxed wherever it travels, so a
/// migration ships one pointer through a channel instead of deep-copying the
/// engine (whose footprint PR 5 bounded, making this move cheap *and*
/// small).
pub(super) struct FeedState {
    pub(super) engine: TemporalVideoQueryEngine,
    pub(super) tally: FeedTally,
}

pub(super) enum WorkerMsg {
    /// One batch's worth of frames for this worker, in batch order. Shipping
    /// a worker's whole share in one message (instead of one message per
    /// frame) keeps the channel and thread-wakeup cost at O(workers) per
    /// batch rather than O(frames).
    Frames {
        /// The batch these frames belong to. Results carry it back so an
        /// aborted batch (e.g. a lost shard mid-send) cannot leave stale
        /// results that a later batch would mistake for its own.
        epoch: u64,
        frames: Vec<(usize, FeedId, FrameObjects)>,
    },
    /// A catalog swap. Queues behind any frames already sent on the same
    /// channel and ahead of any sent later, so every worker applies it at
    /// the same point of the frame stream — epoch-aligned, deterministic,
    /// and invisible to `(seq, feed)` result ordering. Fire-and-forget:
    /// the engine validated the op centrally, so workers cannot reject it.
    Catalog {
        version: u64,
        op: CatalogOp,
    },
    /// Hand the named feed's state back to the scheduler (the first half of
    /// a migration). Replies `None` when this worker never built the feed —
    /// the scheduler then just re-pins and the new worker builds lazily.
    Migrate {
        feed: FeedId,
        reply: Sender<Option<Box<FeedState>>>,
    },
    /// Install a migrated feed's state (the second half of a migration,
    /// sent to the feed's new worker after the old one handed it over).
    Adopt {
        feed: FeedId,
        state: Box<FeedState>,
    },
    Collect {
        reply: Sender<Vec<FeedReport>>,
    },
    /// Flush every engine's durable state (due snapshots, WAL fsync) and
    /// reply with the first failure, if any. The graceful-shutdown path.
    Sync {
        reply: Sender<Result<()>>,
    },
}

/// One share of a batch answered by one worker: the batch epoch, the
/// worker's index, the per-frame outcomes, and the nanoseconds the worker
/// spent processing the share (scheduling telemetry — see
/// [`SchedulingStats`](super::SchedulingStats)).
pub(super) type ShardResult = (u64, usize, Vec<(usize, FeedId, Result<FrameResult>)>, u64);

/// Running per-feed tallies a worker keeps alongside each engine. They
/// travel with the engine on migration, so reports stay whole-lifetime
/// accurate no matter how many workers served the feed.
#[derive(Default)]
pub(super) struct FeedTally {
    pub(super) frames: u64,
    pub(super) total_matches: u64,
    pub(super) matching_frames: u64,
}

impl FeedTally {
    fn record(&mut self, result: &FrameResult) {
        self.frames += 1;
        self.total_matches += result.matches.len() as u64;
        if result.any() {
            self.matching_frames += 1;
        }
    }
}

/// Serializes a feed's running tallies for the engine snapshot's sidecar,
/// so a recovered feed reports whole-lifetime counts — not counts since
/// the last restart.
fn encode_tally(tally: &FeedTally) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(tally.frames);
    enc.put_u64(tally.total_matches);
    enc.put_u64(tally.matching_frames);
    enc.into_bytes()
}

/// Rebuilds the tally persisted by [`encode_tally`]. An empty sidecar
/// (a bootstrap snapshot taken before the feed's first frame) is a fresh
/// tally.
fn decode_tally(bytes: &[u8]) -> Result<FeedTally> {
    if bytes.is_empty() {
        return Ok(FeedTally::default());
    }
    let mut dec = Decoder::new(bytes);
    let tally = FeedTally {
        frames: dec.take_u64()?,
        total_matches: dec.take_u64()?,
        matching_frames: dec.take_u64()?,
    };
    dec.finish()?;
    Ok(tally)
}

/// Builds (or, on a durable fleet, recovers) the state of a feed this
/// worker serves for the first time. Recovery rolls the persisted tally
/// forward over the replayed WAL tail and fast-forwards the engine's
/// catalog to the fleet's current version — the swaps it missed while the
/// feed's previous worker was down land at the same stream position the
/// broadcast originally had (ops only ever broadcast between batches).
fn materialise_feed(
    spec: &EngineSpec,
    feed: FeedId,
    queries: &[CnfQuery],
    version: u64,
) -> Result<Box<FeedState>> {
    let Some((io, root)) = &spec.store else {
        return Ok(Box::new(FeedState {
            engine: spec.build_engine(queries, version)?,
            tally: FeedTally::default(),
        }));
    };
    let dir = root.join(format!("feed-{}", feed.0));
    if TemporalVideoQueryEngine::has_data(io, &dir) {
        let (mut engine, report) = TemporalVideoQueryEngine::recover(io.clone(), &dir)?;
        let mut tally = decode_tally(&report.sidecar)?;
        for result in &report.replayed_frames {
            tally.record(result);
        }
        engine.reconcile_catalog(queries, version)?;
        engine.set_durable_sidecar(encode_tally(&tally));
        Ok(Box::new(FeedState { engine, tally }))
    } else {
        let mut engine = spec.build_engine(queries, version)?;
        engine.attach_durability(io.clone(), &dir)?;
        Ok(Box::new(FeedState {
            engine,
            tally: FeedTally::default(),
        }))
    }
}

pub(super) fn worker_loop(
    index: usize,
    spec: Arc<EngineSpec>,
    initial_queries: Vec<CnfQuery>,
    initial_version: u64,
    inbox: Receiver<WorkerMsg>,
    results: Sender<ShardResult>,
) {
    // BTreeMap so collection iterates feeds in ascending id order.
    let mut engines: BTreeMap<FeedId, Box<FeedState>> = BTreeMap::new();
    // The worker-local view of the current catalog: engines for feeds first
    // seen *after* a swap must be built from this, not the build-time spec,
    // or a late-arriving feed would answer (and report metrics) under a
    // stale query set. Respawned workers start from the scheduler's master
    // copy, which already includes every broadcast swap.
    let mut current_queries: Vec<CnfQuery> = initial_queries;
    let mut current_version: u64 = initial_version;
    for message in inbox {
        match message {
            WorkerMsg::Catalog { version, op } => {
                match &op {
                    CatalogOp::Add(query) => current_queries.push(query.clone()),
                    CatalogOp::Remove(id) => current_queries.retain(|q| q.id != *id),
                }
                current_version = version;
                for state in engines.values_mut() {
                    // Centrally validated; per-engine application cannot
                    // fail (ids are fleet-unique and present everywhere).
                    let applied = match &op {
                        CatalogOp::Add(query) => state.engine.add_query(query.clone()),
                        CatalogOp::Remove(id) => state.engine.remove_query(*id),
                    };
                    debug_assert!(applied.is_ok(), "validated catalog op rejected");
                }
            }
            WorkerMsg::Frames { epoch, frames } => {
                let started = Instant::now();
                let mut outcomes: Vec<(usize, FeedId, Result<FrameResult>)> =
                    Vec::with_capacity(frames.len());
                for (seq, feed, frame) in frames {
                    let state = match engines.entry(feed) {
                        Entry::Occupied(entry) => entry.into_mut(),
                        Entry::Vacant(vacant) => {
                            match materialise_feed(&spec, feed, &current_queries, current_version) {
                                Ok(state) => vacant.insert(state),
                                Err(error) => {
                                    // Without a store, unreachable in
                                    // practice (the builder validated the
                                    // spec); with one, a store error.
                                    // Report instead of panicking.
                                    outcomes.push((seq, feed, Err(error)));
                                    continue;
                                }
                            }
                        }
                    };
                    let outcome = state.engine.observe(&frame);
                    if let Ok(result) = &outcome {
                        state.tally.record(result);
                        // Keep the sidecar one op behind the WAL: the next
                        // flushed snapshot covers this frame, so its tally
                        // must too.
                        if state.engine.is_durable() {
                            state.engine.set_durable_sidecar(encode_tally(&state.tally));
                        }
                    }
                    outcomes.push((seq, feed, outcome));
                }
                let busy = started.elapsed().as_nanos() as u64;
                if results.send((epoch, index, outcomes, busy)).is_err() {
                    return; // Engine dropped; shut down.
                }
            }
            WorkerMsg::Migrate { feed, reply } => {
                // Handing the state over (or reporting we never had it) is
                // all there is to it: the scheduler only migrates between
                // batches, so no frames of this feed can be queued behind
                // this message.
                let _ = reply.send(engines.remove(&feed));
            }
            WorkerMsg::Adopt { feed, state } => {
                let previous = engines.insert(feed, state);
                debug_assert!(
                    previous.is_none(),
                    "adopted a feed this worker already serves"
                );
            }
            WorkerMsg::Collect { reply } => {
                let reports = engines
                    .iter()
                    .map(|(&feed, state)| FeedReport {
                        feed,
                        strategy: state.engine.strategy().to_owned(),
                        frames: state.tally.frames,
                        total_matches: state.tally.total_matches,
                        matching_frames: state.tally.matching_frames,
                        live_states: state.engine.live_states(),
                        catalog_version: state.engine.catalog_version(),
                        metrics: state.engine.metrics(),
                    })
                    .collect();
                let _ = reply.send(reports);
            }
            WorkerMsg::Sync { reply } => {
                let mut outcome: Result<()> = Ok(());
                for state in engines.values_mut() {
                    let flushed = state.engine.sync_store();
                    if outcome.is_ok() {
                        outcome = flushed;
                    }
                }
                let _ = reply.send(outcome);
            }
        }
    }
    // Inbox closed (shutdown or a scheduler-side kill): flush so nothing
    // acknowledged — or checkpointable — is left behind, then drop the
    // engines, releasing their per-feed directory locks for a respawn.
    for state in engines.values_mut() {
        let _ = state.engine.sync_store();
    }
}
