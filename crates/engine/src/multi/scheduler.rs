//! Scheduling side of the sharded multi-feed engine: the epoch-versioned,
//! rebalanceable shard map and the deterministic load model that drives
//! work stealing.
//!
//! Determinism is the design constraint everything here answers to. The
//! scheduler's decisions must be a pure function of the ingested batches —
//! never of wall-clock timings or thread interleavings — so that a skewed
//! run with rebalancing enabled stays frame-for-frame identical to the
//! static-shard run and to the single-engine oracle:
//!
//! * the load signal is a fixed-point EWMA of per-feed *batch cost units*
//!   (detections plus a per-frame constant — a monotone proxy for the
//!   superlinear maintenance cost of a busy camera), folded batch-by-batch
//!   in `LoadTracker::observe_batch`;
//! * `plan_migrations` is a greedy argmax→argmin pass over those loads
//!   with total tie-breaking (lowest worker index, then lowest feed id), so
//!   the same batches always produce the same migration history;
//! * every migration bumps the [`ShardMap`] version, giving tests and
//!   operators a cheap "same scheduling history" fingerprint.

use std::collections::BTreeMap;

use tvq_common::FeedId;

/// Fixed-point scale of the load EWMA (integer arithmetic keeps the
/// scheduler bit-deterministic across platforms; floats only appear in the
/// final threshold comparison, which is itself deterministic for fixed
/// inputs).
const LOAD_SCALE: u64 = 256;

/// An epoch-versioned, rebalanceable `feed → worker` assignment.
///
/// Feeds that were never migrated keep the static default `feed mod
/// workers`; migrations record explicit pins. The `version` increments on
/// every pin, so two engines reporting the same version have processed the
/// same migration history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    version: u64,
    workers: usize,
    pins: BTreeMap<FeedId, usize>,
}

impl ShardMap {
    pub(super) fn new(workers: usize) -> Self {
        assert!(workers > 0, "a shard map needs at least one worker");
        ShardMap {
            version: 0,
            workers,
            pins: BTreeMap::new(),
        }
    }

    /// The assignment version: zero at build, bumped by every migration
    /// (automatic or manual).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The worker count the map shards over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker currently serving `feed`.
    pub fn worker_of(&self, feed: FeedId) -> usize {
        self.pins
            .get(&feed)
            .copied()
            .unwrap_or(feed.raw() as usize % self.workers)
    }

    /// The explicitly pinned (migrated-away-from-default) feeds, in
    /// ascending feed order.
    pub fn pins(&self) -> impl Iterator<Item = (FeedId, usize)> + '_ {
        self.pins.iter().map(|(&feed, &worker)| (feed, worker))
    }

    /// Re-pins `feed` to `worker`, bumping the version. A pin back to the
    /// static default drops the explicit entry (the map stays minimal) but
    /// still counts as a migration version-wise.
    pub(super) fn pin(&mut self, feed: FeedId, worker: usize) {
        debug_assert!(worker < self.workers, "pin target out of range");
        self.version += 1;
        if feed.raw() as usize % self.workers == worker {
            self.pins.remove(&feed);
        } else {
            self.pins.insert(feed, worker);
        }
    }
}

/// Per-feed load EWMA over deterministic batch cost units.
#[derive(Debug, Default)]
pub(super) struct LoadTracker {
    ewma: BTreeMap<FeedId, u64>,
}

impl LoadTracker {
    pub(super) fn new() -> Self {
        LoadTracker::default()
    }

    /// Folds one batch's per-feed costs into the running EWMA with α = ½:
    /// `load' = load/2 + cost·SCALE/2`. Feeds absent from the batch decay
    /// toward zero and are dropped once they get there, so a camera that
    /// went dark stops influencing placement after a few batches.
    pub(super) fn observe_batch(&mut self, costs: &BTreeMap<FeedId, u64>) {
        for load in self.ewma.values_mut() {
            *load /= 2;
        }
        for (&feed, &cost) in costs {
            *self.ewma.entry(feed).or_insert(0) += cost * LOAD_SCALE / 2;
        }
        self.ewma.retain(|_, load| *load > 0);
    }

    /// The current per-feed loads (fixed-point units).
    pub(super) fn loads(&self) -> &BTreeMap<FeedId, u64> {
        &self.ewma
    }
}

/// Plans one greedy rebalance pass: while the busiest worker carries more
/// than `steal_threshold` times the idlest worker's load, move the
/// heaviest feed whose relocation strictly improves the pair's maximum.
///
/// Wholly deterministic: extremes tie-break on the lowest worker index and
/// candidates on (highest load, lowest feed id). Termination is guaranteed
/// because every accepted move strictly decreases the sum of squared
/// per-worker loads; the iteration cap is sheer paranoia. A worker
/// bottlenecked by one giant feed is left alone — relocating the feed would
/// only move the bottleneck, and no candidate passes the strict-improvement
/// test.
pub(super) fn plan_migrations(
    loads: &BTreeMap<FeedId, u64>,
    map: &ShardMap,
    steal_threshold: f64,
) -> Vec<(FeedId, usize)> {
    let workers = map.workers();
    let mut moves = Vec::new();
    if workers < 2 || loads.is_empty() {
        return moves;
    }
    let mut per_worker: Vec<Vec<(FeedId, u64)>> = vec![Vec::new(); workers];
    for (&feed, &load) in loads {
        per_worker[map.worker_of(feed)].push((feed, load));
    }
    let mut totals: Vec<u64> = per_worker
        .iter()
        .map(|feeds| feeds.iter().map(|&(_, load)| load).sum())
        .collect();
    for _ in 0..loads.len() * 2 + 4 {
        let busiest = argmax(&totals);
        let idlest = argmin(&totals);
        // `max(1)` so an idle worker (load 0) still triggers stealing
        // whenever the busiest worker has anything divisible to give.
        if (totals[busiest] as f64) <= steal_threshold * (totals[idlest].max(1) as f64) {
            break;
        }
        let candidate = per_worker[busiest]
            .iter()
            .enumerate()
            .filter(|&(_, &(_, load))| load > 0 && totals[idlest] + load < totals[busiest])
            .max_by(|a, b| {
                // Highest load first; equal loads prefer the lowest feed id
                // (feed ids are unique, so the order is total).
                (a.1 .1).cmp(&b.1 .1).then((b.1 .0).cmp(&a.1 .0))
            })
            .map(|(index, _)| index);
        let Some(index) = candidate else { break };
        let (feed, load) = per_worker[busiest].remove(index);
        totals[busiest] -= load;
        totals[idlest] += load;
        per_worker[idlest].push((feed, load));
        moves.push((feed, idlest));
    }
    moves
}

fn argmax(totals: &[u64]) -> usize {
    let mut best = 0;
    for (index, &total) in totals.iter().enumerate() {
        if total > totals[best] {
            best = index;
        }
    }
    best
}

fn argmin(totals: &[u64]) -> usize {
    let mut best = 0;
    for (index, &total) in totals.iter().enumerate() {
        if total < totals[best] {
            best = index;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(entries: &[(u32, u64)]) -> BTreeMap<FeedId, u64> {
        entries
            .iter()
            .map(|&(feed, load)| (FeedId(feed), load))
            .collect()
    }

    #[test]
    fn shard_map_defaults_to_static_modulo() {
        let map = ShardMap::new(3);
        assert_eq!(map.version(), 0);
        for raw in 0..9u32 {
            assert_eq!(map.worker_of(FeedId(raw)), raw as usize % 3);
        }
        assert_eq!(map.pins().count(), 0);
    }

    #[test]
    fn pinning_bumps_version_and_reroutes() {
        let mut map = ShardMap::new(4);
        map.pin(FeedId(1), 3);
        assert_eq!(map.version(), 1);
        assert_eq!(map.worker_of(FeedId(1)), 3);
        assert_eq!(map.pins().collect::<Vec<_>>(), vec![(FeedId(1), 3)]);
        // Pinning back to the default keeps the map minimal but still
        // counts as a migration.
        map.pin(FeedId(1), 1);
        assert_eq!(map.version(), 2);
        assert_eq!(map.worker_of(FeedId(1)), 1);
        assert_eq!(map.pins().count(), 0);
    }

    #[test]
    fn load_tracker_converges_and_decays() {
        let mut tracker = LoadTracker::new();
        let batch = loads(&[(0, 100), (1, 4)]);
        for _ in 0..12 {
            tracker.observe_batch(&batch);
        }
        let hot = tracker.loads()[&FeedId(0)];
        let cold = tracker.loads()[&FeedId(1)];
        // EWMA converges to cost * SCALE (within fixed-point truncation).
        assert!(hot > 90 * LOAD_SCALE && hot <= 100 * LOAD_SCALE, "{hot}");
        assert!(cold > 0 && cold <= 4 * LOAD_SCALE, "{cold}");
        // A feed that goes dark decays out of the model entirely.
        let only_cold = loads(&[(1, 4)]);
        for _ in 0..20 {
            tracker.observe_batch(&only_cold);
        }
        assert!(!tracker.loads().contains_key(&FeedId(0)));
    }

    #[test]
    fn planner_separates_colliding_hot_feeds() {
        // Feeds 1 and 5 are hot and collide on worker 1 under mod-4
        // sharding; the plan must end with them on different workers.
        let map = ShardMap::new(4);
        let loads = loads(&[
            (0, 10),
            (1, 1000),
            (2, 10),
            (3, 10),
            (4, 10),
            (5, 1000),
            (6, 10),
            (7, 10),
        ]);
        let moves = plan_migrations(&loads, &map, 1.25);
        assert!(!moves.is_empty());
        let mut map = map;
        for &(feed, worker) in &moves {
            map.pin(feed, worker);
        }
        assert_ne!(
            map.worker_of(FeedId(1)),
            map.worker_of(FeedId(5)),
            "hot feeds still collide after {moves:?}"
        );
    }

    #[test]
    fn planner_leaves_single_feed_bottlenecks_alone() {
        // One giant feed dominates its worker: the plan must end with it
        // isolated (the cold co-tenant on the other worker) and then reach
        // a fixed point — endlessly bouncing the bottleneck between
        // workers would churn migrations without improving anything.
        let map = ShardMap::new(2);
        let loads = loads(&[(0, 1000), (2, 10)]);
        let moves = plan_migrations(&loads, &map, 1.25);
        let mut pinned = map.clone();
        for &(feed, worker) in &moves {
            pinned.pin(feed, worker);
        }
        assert_ne!(
            pinned.worker_of(FeedId(0)),
            pinned.worker_of(FeedId(2)),
            "the giant feed is not isolated after {moves:?}"
        );
        assert_eq!(
            plan_migrations(&loads, &pinned, 1.25),
            vec![],
            "re-planning after the pass is a fixed point"
        );
    }

    #[test]
    fn planner_is_deterministic_and_balanced_on_uniform_loads() {
        let map = ShardMap::new(3);
        let uniform = loads(&[(0, 50), (1, 50), (2, 50), (3, 50), (4, 50), (5, 50)]);
        // Two feeds per worker already: nothing to do.
        assert_eq!(plan_migrations(&uniform, &map, 1.25), vec![]);
        let skewed = loads(&[(0, 50), (3, 50), (6, 50), (1, 5)]);
        let a = plan_migrations(&skewed, &map, 1.25);
        let b = plan_migrations(&skewed, &map, 1.25);
        assert_eq!(a, b, "planning is deterministic");
    }

    #[test]
    fn single_worker_plans_nothing() {
        let map = ShardMap::new(1);
        assert_eq!(
            plan_migrations(&loads(&[(0, 100), (1, 1)]), &map, 1.0),
            vec![]
        );
    }
}
