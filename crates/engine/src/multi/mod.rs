//! Sharded multi-feed engine with deterministic work stealing.
//!
//! The single-feed [`TemporalVideoQueryEngine`] answers CNF co-occurrence
//! queries over *one* camera feed. A production deployment watches many
//! cameras at once; [`MultiFeedEngine`] scales the same query semantics to N
//! concurrent feeds by sharding feeds across a fixed pool of worker threads
//! (plain `std::thread` + `std::sync::mpsc` channels — no extra
//! dependencies):
//!
//! * feed placement is an epoch-versioned, rebalanceable [`ShardMap`]: every
//!   feed starts on the static default `feed mod workers`, and the scheduler
//!   migrates hot feeds to idle workers at batch boundaries (work stealing,
//!   driven by a deterministic per-feed load EWMA — see [`scheduler`]);
//!   within any assignment, each feed's frames are always processed in
//!   order by exactly one thread;
//! * each worker lazily materialises one single-feed engine per feed it
//!   currently serves, built from a shared immutable query registry;
//!   migrations move the whole per-feed engine (bounded since the object
//!   lifecycle work, so the move is one boxed pointer through a channel);
//! * [`MultiFeedEngine::push_batch`] ingests a batch of feed-tagged frames,
//!   fans them out to the shards, and returns the per-frame results in the
//!   batch's input order — independent of thread scheduling *and* of feed
//!   placement;
//! * [`MultiFeedEngine::report`] merges per-feed results and
//!   [`MaintenanceMetrics`] into a global report ordered by [`FeedId`], so
//!   cross-feed output is deterministic.
//!
//! Because each per-feed engine is exactly a single-feed engine fed the same
//! frames in the same order — no matter which worker holds it, or how many
//! times it migrated — a sharded run is frame-for-frame identical to N
//! independent single-feed runs, with rebalancing on or off; the
//! differential suite pins this down across worker counts, rebalance
//! settings, and forced per-batch migrations.
//!
//! # Example
//!
//! ```
//! use tvq_common::{ClassId, FeedId, FrameId, FrameObjects, ObjectId, WindowSpec};
//! use tvq_engine::{EngineConfig, FeedFrame, MultiFeedConfig, MultiFeedEngine};
//!
//! let config = MultiFeedConfig::new(EngineConfig::new(WindowSpec::new(3, 2).unwrap()))
//!     .with_workers(2);
//! let mut engine = MultiFeedEngine::builder(config)
//!     .with_query_text("car >= 1 AND person >= 1")
//!     .unwrap()
//!     .build()
//!     .unwrap();
//!
//! // Three frames from each of two cameras, tagged with their feed.
//! let mut batch = Vec::new();
//! for feed in 0..2u32 {
//!     for fid in 0..3u64 {
//!         batch.push(FeedFrame::new(
//!             FeedId(feed),
//!             FrameObjects::new(
//!                 FrameId(fid),
//!                 vec![(ObjectId(1), ClassId(1)), (ObjectId(2), ClassId(0))],
//!             ),
//!         ));
//!     }
//! }
//! let results = engine.push_batch(&batch).unwrap();
//! assert_eq!(results.len(), 6);
//! // Both feeds see the car+person pair co-occur long enough by frame 1.
//! assert!(results.iter().filter(|r| r.result.any()).count() >= 2);
//!
//! let report = engine.report().unwrap();
//! assert_eq!(report.feeds.len(), 2);
//! assert_eq!(report.metrics.frames_processed, 6);
//! ```

pub mod scheduler;
mod worker;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tvq_common::{
    ClassRegistry, DatasetStats, Error, FeedId, FrameObjects, QueryId, Result, SharedClassMap,
};
use tvq_core::MaintenanceMetrics;
use tvq_query::CnfQuery;
use tvq_store::{RealIo, SharedIo};

use crate::config::{EngineConfig, MultiFeedConfig};
use crate::engine::{FrameResult, TemporalVideoQueryEngine};
use crate::persist;

use scheduler::LoadTracker;
pub use scheduler::ShardMap;
use worker::{worker_loop, CatalogOp, ShardResult, WorkerMsg};

/// How long a batch waits for a missing shard result before concluding the
/// worker is gone. Generous: a healthy worker answers in microseconds.
const SHARD_TIMEOUT: Duration = Duration::from_secs(60);

/// File under a durable fleet's data directory holding the scheduler's
/// master catalog (registry, query set, version). Always written *ahead*
/// of broadcasting an op, so the master version is never behind a feed's.
const FLEET_CATALOG: &str = "fleet-catalog.tvqf";
/// Scratch name the fleet catalog is staged under before the atomic
/// rename into [`FLEET_CATALOG`].
const FLEET_CATALOG_TMP: &str = "fleet-catalog.tmp";

/// One frame of detections tagged with the feed (camera) it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedFrame {
    /// The feed the frame belongs to.
    pub feed: FeedId,
    /// The frame's detections.
    pub frame: FrameObjects,
}

impl FeedFrame {
    /// Tags a frame with its feed.
    pub fn new(feed: FeedId, frame: FrameObjects) -> Self {
        FeedFrame { feed, frame }
    }
}

impl From<(FeedId, FrameObjects)> for FeedFrame {
    fn from((feed, frame): (FeedId, FrameObjects)) -> Self {
        FeedFrame::new(feed, frame)
    }
}

/// The result of processing one feed-tagged frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedFrameResult {
    /// The feed the frame belonged to.
    pub feed: FeedId,
    /// The per-frame query matches, identical to what a dedicated
    /// single-feed engine would report for the same feed.
    pub result: FrameResult,
}

/// Summary of one feed's engine at report time.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedReport {
    /// The feed this report describes.
    pub feed: FeedId,
    /// The MCOS-generation strategy serving the feed (e.g. `"SSG_O"`).
    pub strategy: String,
    /// Frames the feed has contributed so far.
    pub frames: u64,
    /// Total query matches across the feed's frames.
    pub total_matches: u64,
    /// Frames with at least one match.
    pub matching_frames: u64,
    /// States currently materialised by the feed's maintainer.
    pub live_states: usize,
    /// The query-catalog version the feed's engine answered under when the
    /// report was taken. Every feed of a healthy fleet reports the same
    /// version: catalog ops broadcast through the same FIFO channels as
    /// frames, so by collection time every shard has applied every swap.
    pub catalog_version: u64,
    /// The feed's maintenance work counters. The scheduler-owned fields
    /// (`per_shard_queue_depth`, `feeds_migrated`, `rebalances`) are always
    /// zero here — they only exist fleet-wide, on
    /// [`MultiFeedReport::metrics`].
    pub metrics: MaintenanceMetrics,
}

/// A deterministic global view over every feed the engine has seen: one
/// [`FeedReport`] per feed in ascending [`FeedId`] order, plus the merged
/// work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFeedReport {
    /// Per-feed summaries, sorted by feed identifier.
    pub feeds: Vec<FeedReport>,
    /// All per-feed metrics folded with [`MaintenanceMetrics::merge`], plus
    /// the scheduler-owned counters only the fleet-level engine can know:
    /// `per_shard_queue_depth` (peak frames one batch queued to a single
    /// shard), `feeds_migrated` and `rebalances`.
    pub metrics: MaintenanceMetrics,
    /// The fleet's query-catalog version at collection time. Per-feed
    /// engines seeded after swaps report this same version (not zero), so
    /// the merge is version-coherent — see
    /// [`FeedReport::catalog_version`].
    pub catalog_version: u64,
}

impl MultiFeedReport {
    /// Number of feeds observed so far.
    pub fn num_feeds(&self) -> usize {
        self.feeds.len()
    }

    /// Total frames processed across all feeds.
    pub fn total_frames(&self) -> u64 {
        self.feeds.iter().map(|f| f.frames).sum()
    }

    /// Total query matches across all feeds.
    pub fn total_matches(&self) -> u64 {
        self.feeds.iter().map(|f| f.total_matches).sum()
    }

    /// Total frames with at least one match, across all feeds.
    pub fn matching_frames(&self) -> u64 {
        self.feeds.iter().map(|f| f.matching_frames).sum()
    }
}

/// Cumulative worker-time telemetry of a [`MultiFeedEngine`].
///
/// Workers time each share they process; the engine folds those
/// measurements into two totals whose ratio is the parallel speedup the
/// *schedule itself* admits (what the deployment would gain over one worker
/// given at least `workers` cores — independent of how many cores the
/// machine running the measurement happens to have):
///
/// * `busy_nanos` — total worker time across all shares: what a one-worker
///   deployment would take;
/// * `critical_path_nanos` — per batch, only the busiest worker's share
///   counts (the batch cannot complete before its slowest shard): what the
///   sharded deployment takes with enough cores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulingStats {
    /// Total nanoseconds workers spent processing frames.
    pub busy_nanos: u64,
    /// Sum over batches of the busiest worker's share time.
    pub critical_path_nanos: u64,
    /// Batches ingested.
    pub batches: u64,
}

impl SchedulingStats {
    /// The parallel speedup the schedule admits: `busy / critical_path`.
    /// 1.0 means every batch serialised on one worker; the worker count is
    /// the upper bound.
    pub fn schedule_parallelism(&self) -> f64 {
        if self.critical_path_nanos == 0 {
            1.0
        } else {
            self.busy_nanos as f64 / self.critical_path_nanos as f64
        }
    }
}

/// The shared immutable query registry: everything a worker needs to build
/// the single-feed engine of a feed it sees for the first time.
struct EngineSpec {
    config: EngineConfig,
    registry: ClassRegistry,
    stats: Option<DatasetStats>,
    /// One class store for every per-feed engine, when the deployment
    /// opted into [`MultiFeedConfig::shared_class_store`]. Reference
    /// counting in the store keeps one shard's epoch retirement from
    /// evicting entries another shard still tracks.
    class_store: Option<SharedClassMap>,
    /// The fleet's store and data directory, when durability is on: each
    /// per-feed engine persists under `<dir>/feed-<id>`, and the master
    /// catalog under `<dir>/fleet-catalog.tvqf`.
    store: Option<(SharedIo, PathBuf)>,
}

/// Atomically publishes the master catalog: staged to a scratch file,
/// fsynced, renamed into place, directory fsynced — the same recipe the
/// snapshot store uses, so a crash leaves either the old file or the new.
fn write_fleet_catalog(
    io: &SharedIo,
    root: &Path,
    registry: &ClassRegistry,
    queries: &[CnfQuery],
    version: u64,
) -> Result<()> {
    io.create_dir_all(root)?;
    let payload = persist::encode_fleet_catalog(registry, queries, version);
    let tmp = root.join(FLEET_CATALOG_TMP);
    let path = root.join(FLEET_CATALOG);
    io.write_file(&tmp, &payload)?;
    io.fsync(&tmp)?;
    io.rename(&tmp, &path)?;
    io.fsync_dir(root)?;
    Ok(())
}

/// Loads the master catalog a previous fleet persisted under `root`, or
/// `None` when the directory has never held one.
fn read_fleet_catalog(
    io: &SharedIo,
    root: &Path,
) -> Result<Option<(ClassRegistry, Vec<CnfQuery>, u64)>> {
    let path = root.join(FLEET_CATALOG);
    if !io.exists(&path) {
        return Ok(None);
    }
    let payload = io.read(&path)?;
    persist::decode_fleet_catalog(&payload).map(Some)
}

impl EngineSpec {
    /// Builds a per-feed engine for the *current* catalog state: a feed
    /// first seen after swaps must answer under the swapped query set and
    /// report the fleet's version, not the build-time spec — per-feed
    /// engines built lazily from a stale spec were exactly the
    /// stale-report bug the version plumbing exists to prevent.
    fn build_engine(&self, queries: &[CnfQuery], version: u64) -> Result<TemporalVideoQueryEngine> {
        let mut builder = TemporalVideoQueryEngine::builder(self.config)
            .with_registry(self.registry.clone())
            .allow_empty_catalog()
            .with_catalog_seed(version);
        for query in queries {
            builder = builder.with_query(query.clone());
        }
        if let Some(stats) = self.stats.clone() {
            builder = builder.with_feed_stats(stats);
        }
        if let Some(store) = &self.class_store {
            builder = builder.with_class_store(Arc::clone(store));
        }
        builder.build()
    }
}

/// Builder for [`MultiFeedEngine`]. Mirrors the single-feed
/// [`EngineBuilder`](crate::EngineBuilder): queries registered here form the
/// shared immutable registry every per-feed engine is built from.
pub struct MultiFeedBuilder {
    config: MultiFeedConfig,
    registry: ClassRegistry,
    queries: Vec<CnfQuery>,
    stats: Option<DatasetStats>,
    allow_empty: bool,
    store: Option<(SharedIo, PathBuf)>,
}

impl MultiFeedBuilder {
    /// Starts a builder with the given configuration and the default class
    /// registry.
    pub fn new(config: MultiFeedConfig) -> Self {
        MultiFeedBuilder {
            config,
            registry: ClassRegistry::with_default_classes(),
            queries: Vec::new(),
            stats: None,
            allow_empty: false,
            store: None,
        }
    }

    /// Permits building with zero registered queries (the server starts
    /// idle and receives its workload over the wire via
    /// [`MultiFeedEngine::add_query`]).
    pub fn allow_empty_catalog(mut self) -> Self {
        self.allow_empty = true;
        self
    }

    /// Uses a custom class registry.
    pub fn with_registry(mut self, registry: ClassRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers a structured query (applied to every feed).
    pub fn with_query(mut self, query: CnfQuery) -> Self {
        self.queries.push(query);
        self
    }

    /// Registers a query written in the textual language, e.g.
    /// `"car >= 2 AND person >= 1"`. New class labels are registered.
    pub fn with_query_text(mut self, text: &str) -> Result<Self> {
        let id = QueryId(self.queries.len() as u32);
        let query = tvq_query::parse_query(text, id, &mut self.registry)?;
        self.queries.push(query);
        Ok(self)
    }

    /// Supplies feed statistics for adaptive maintainer selection (applied
    /// uniformly to every per-feed engine).
    pub fn with_feed_stats(mut self, stats: DatasetStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Makes the fleet durable under `dir` through the given store: every
    /// per-feed engine gets a WAL and epoch snapshots in `<dir>/feed-<id>`,
    /// the master catalog persists in `<dir>/fleet-catalog.tvqf`, dead
    /// workers are respawned transparently (their feeds recovered from the
    /// store), and building over a directory that already holds fleet data
    /// *restarts* it — the persisted catalog supersedes the builder's
    /// queries and registry.
    pub fn with_store(mut self, io: SharedIo, dir: &Path) -> Self {
        self.store = Some((io, dir.to_path_buf()));
        self
    }

    /// [`with_store`](Self::with_store) against the real filesystem.
    pub fn with_data_dir(self, dir: &Path) -> Self {
        self.with_store(RealIo::shared(), dir)
    }

    /// Builds the engine, spawning the worker pool.
    pub fn build(self) -> Result<MultiFeedEngine> {
        if self.config.workers == 0 {
            return Err(Error::InvalidConfig(
                "multi-feed engine needs at least one worker".to_owned(),
            ));
        }
        // NaN has no ordering against 1.0, so it is rejected alongside
        // sub-unity thresholds.
        let at_least_unity = matches!(
            self.config.steal_threshold.partial_cmp(&1.0),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        );
        if !at_least_unity {
            return Err(Error::InvalidConfig(format!(
                "steal_threshold must be at least 1.0, got {}",
                self.config.steal_threshold
            )));
        }
        // A durable fleet building over a directory that already holds a
        // master catalog is a *restart*: the persisted registry, query set
        // and version supersede the builder's (exactly as single-engine
        // `recover` ignores the builder). A fresh durable fleet persists
        // its build-time catalog as version 0 before any worker runs.
        let mut registry = self.registry;
        let mut queries = self.queries;
        let mut catalog_version = 0u64;
        let mut restarted = false;
        if let Some((io, root)) = &self.store {
            match read_fleet_catalog(io, root)? {
                Some((persisted_registry, persisted_queries, version)) => {
                    registry = persisted_registry;
                    queries = persisted_queries;
                    catalog_version = version;
                    restarted = true;
                }
                None => write_fleet_catalog(io, root, &registry, &queries, 0)?,
            }
        }
        // A restarted fleet may legitimately resume with zero queries (all
        // removed before the shutdown); only fresh builds require some.
        if queries.is_empty() && !self.allow_empty && !restarted {
            return Err(Error::InvalidConfig(
                "at least one query must be registered".to_owned(),
            ));
        }
        let spec = Arc::new(EngineSpec {
            config: self.config.engine,
            registry: registry.clone(),
            stats: self.stats,
            class_store: self
                .config
                .shared_class_store
                .then(tvq_common::shared_class_store),
            store: self.store,
        });
        // Validate the shared spec once, up front, so that per-feed engine
        // construction inside the workers cannot fail later.
        spec.build_engine(&queries, catalog_version)?;
        let (results_tx, results_rx) = mpsc::channel();
        let workers = (0..self.config.workers)
            .map(|index| spawn_worker(index, &spec, queries.clone(), catalog_version, &results_tx))
            .collect::<Result<Vec<Worker>>>()?;
        Ok(MultiFeedEngine {
            shards: ShardMap::new(self.config.workers),
            config: self.config,
            spec,
            workers,
            results: results_rx,
            results_tx,
            epoch: 0,
            queries,
            registry,
            catalog_version,
            loads: LoadTracker::new(),
            batches_since_rebalance: 0,
            feeds_migrated: 0,
            rebalances: 0,
            peak_shard_depth: 0,
            sched: SchedulingStats::default(),
        })
    }
}

/// Spawns one worker thread, seeded with the scheduler's current master
/// catalog — fresh pools pass the build-time set; respawns pass whatever
/// the fleet has swapped to since.
fn spawn_worker(
    index: usize,
    spec: &Arc<EngineSpec>,
    queries: Vec<CnfQuery>,
    version: u64,
    results: &Sender<ShardResult>,
) -> Result<Worker> {
    let (inbox_tx, inbox_rx) = mpsc::channel();
    let spec = Arc::clone(spec);
    let results = results.clone();
    let handle = std::thread::Builder::new()
        .name(format!("tvq-shard-{index}"))
        .spawn(move || worker_loop(index, spec, queries, version, inbox_rx, results))
        .map_err(Error::Io)?;
    Ok(Worker {
        inbox: Some(inbox_tx),
        handle: Some(handle),
    })
}

struct Worker {
    /// `None` only during shutdown (see `Drop for MultiFeedEngine`).
    inbox: Option<Sender<WorkerMsg>>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of single-feed engines sharded across worker threads, answering
/// the same CNF queries over N camera feeds concurrently.
///
/// See the [module documentation](self) for the sharding model and a usage
/// example. Constructed via [`MultiFeedEngine::builder`].
pub struct MultiFeedEngine {
    config: MultiFeedConfig,
    /// The shared immutable build recipe, kept so dead workers can be
    /// respawned (durable fleets only — see `respawn_worker`).
    spec: Arc<EngineSpec>,
    workers: Vec<Worker>,
    results: Receiver<ShardResult>,
    /// A live clone of the results sender, handed to respawned workers.
    results_tx: Sender<ShardResult>,
    /// Monotonic batch counter; see `WorkerMsg::Frames::epoch`.
    epoch: u64,
    /// The master query list: the engine validates catalog ops against it
    /// before broadcasting, so workers can apply them infallibly.
    queries: Vec<CnfQuery>,
    /// The master class registry, used to parse textual queries added over
    /// [`add_query_text`](Self::add_query_text).
    registry: ClassRegistry,
    /// The fleet-wide catalog version (one increment per broadcast op).
    catalog_version: u64,
    /// The rebalanceable feed placement (see [`ShardMap`]).
    shards: ShardMap,
    /// The deterministic per-feed load model driving rebalancing.
    loads: LoadTracker,
    /// Batches ingested since the last automatic rebalance pass.
    batches_since_rebalance: u64,
    /// Migrations executed (automatic plus manual re-pins).
    feeds_migrated: u64,
    /// Rebalance passes that moved at least one feed.
    rebalances: u64,
    /// Peak frames one batch queued to a single shard.
    peak_shard_depth: u64,
    /// Worker-time telemetry (see [`SchedulingStats`]).
    sched: SchedulingStats,
}

impl std::fmt::Debug for MultiFeedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiFeedEngine")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .field("shard_map_version", &self.shards.version())
            .finish()
    }
}

impl MultiFeedEngine {
    /// Starts a builder.
    pub fn builder(config: MultiFeedConfig) -> MultiFeedBuilder {
        MultiFeedBuilder::new(config)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MultiFeedConfig {
        &self.config
    }

    /// Number of worker threads in the pool.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The current feed placement.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    /// The worker index currently serving `feed` (the static default
    /// `feed mod workers` until a migration re-pins it).
    pub fn shard_of(&self, feed: FeedId) -> usize {
        self.shards.worker_of(feed)
    }

    /// Cumulative worker-time telemetry (busy vs critical-path time).
    pub fn scheduling_stats(&self) -> SchedulingStats {
        self.sched
    }

    /// The fleet-wide query-catalog version.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// Whether the fleet persists its feeds (built with
    /// [`with_store`](MultiFeedBuilder::with_store) /
    /// [`with_data_dir`](MultiFeedBuilder::with_data_dir)).
    pub fn is_durable(&self) -> bool {
        self.spec.store.is_some()
    }

    /// The currently registered queries (the master copy every per-feed
    /// engine mirrors).
    pub fn queries(&self) -> &[CnfQuery] {
        &self.queries
    }

    /// Registers a query across the whole fleet. The swap is epoch-aligned:
    /// it queues behind every frame already pushed and ahead of every frame
    /// pushed later, identically on every shard, so result ordering by
    /// `(seq, feed)` is unchanged and reruns are deterministic.
    pub fn add_query(&mut self, query: CnfQuery) -> Result<()> {
        query.validate().map_err(Error::InvalidConfig)?;
        if self.queries.iter().any(|q| q.id == query.id) {
            return Err(Error::InvalidConfig(format!(
                "query id {:?} is already registered",
                query.id
            )));
        }
        let mut next = self.queries.clone();
        next.push(query.clone());
        self.persist_catalog(&next, self.catalog_version + 1)?;
        self.broadcast(CatalogOp::Add(query))?;
        self.queries = next;
        Ok(())
    }

    /// Parses and registers a textual query (e.g. `"car >= 2"`) across the
    /// fleet, minting the next free query id.
    pub fn add_query_text(&mut self, text: &str) -> Result<QueryId> {
        let id = QueryId(self.queries.iter().map(|q| q.id.0 + 1).max().unwrap_or(0));
        let query = tvq_query::parse_query(text, id, &mut self.registry)?;
        self.add_query(query)?;
        Ok(id)
    }

    /// Cancels a query across the whole fleet (same alignment guarantees
    /// as [`add_query`](Self::add_query)).
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        if !self.queries.iter().any(|q| q.id == id) {
            return Err(Error::InvalidConfig(format!("unknown query id {id:?}")));
        }
        let next: Vec<CnfQuery> = self
            .queries
            .iter()
            .filter(|q| q.id != id)
            .cloned()
            .collect();
        self.persist_catalog(&next, self.catalog_version + 1)?;
        self.broadcast(CatalogOp::Remove(id))?;
        self.queries = next;
        Ok(())
    }

    /// Durable fleets publish the post-op master catalog *before* the op
    /// broadcasts: after any crash the persisted master version is at
    /// least every feed's, so a restart only ever fast-forwards recovered
    /// feeds — never the reverse.
    fn persist_catalog(&self, queries: &[CnfQuery], version: u64) -> Result<()> {
        match &self.spec.store {
            Some((io, root)) => write_fleet_catalog(io, root, &self.registry, queries, version),
            None => Ok(()),
        }
    }

    fn broadcast(&mut self, op: CatalogOp) -> Result<()> {
        let version = self.catalog_version + 1;
        for index in 0..self.workers.len() {
            self.send_to_worker(
                index,
                WorkerMsg::Catalog {
                    version,
                    op: op.clone(),
                },
                0,
            )?;
        }
        self.catalog_version = version;
        Ok(())
    }

    /// Sends `message` to `worker`, transparently respawning a dead worker
    /// once when the fleet is durable — the replacement recovers its feeds
    /// from the store, so nothing acknowledged is lost. A non-durable
    /// fleet, or a second failure, surfaces [`Error::ShardLost`].
    fn send_to_worker(
        &mut self,
        worker: usize,
        message: WorkerMsg,
        queue_depth: usize,
    ) -> Result<()> {
        let mut message = Some(message);
        let mut respawned = false;
        while let Some(msg) = message.take() {
            let outcome = match self.workers[worker].inbox.as_ref() {
                Some(inbox) => inbox.send(msg).map_err(|e| e.0),
                None => Err(msg),
            };
            if let Err(returned) = outcome {
                if !self.is_durable() || respawned {
                    return Err(Error::ShardLost {
                        worker,
                        queue_depth,
                    });
                }
                self.respawn_worker(worker)?;
                respawned = true;
                message = Some(returned);
            }
        }
        Ok(())
    }

    /// Replaces a dead worker's thread. Joining the old thread *first*
    /// matters: its engines must drop — flushing their stores and
    /// releasing the per-feed directory locks — before the replacement
    /// re-opens them. The new thread starts from the scheduler's master
    /// catalog and recovers each of its feeds lazily from the store.
    fn respawn_worker(&mut self, index: usize) -> Result<()> {
        self.workers[index].inbox.take();
        if let Some(handle) = self.workers[index].handle.take() {
            let _ = handle.join();
        }
        self.workers[index] = spawn_worker(
            index,
            &self.spec,
            self.queries.clone(),
            self.catalog_version,
            &self.results_tx,
        )?;
        Ok(())
    }

    /// Processes a single feed-tagged frame. Equivalent to a one-element
    /// [`push_batch`](Self::push_batch).
    pub fn push(&mut self, feed: FeedId, frame: FrameObjects) -> Result<FeedFrameResult> {
        let mut results = self.push_batch(std::slice::from_ref(&FeedFrame::new(feed, frame)))?;
        Ok(results.pop().expect("one result per pushed frame"))
    }

    /// Ingests a batch of feed-tagged frames and returns one result per
    /// frame, **in the batch's input order** regardless of how the shards
    /// interleave.
    ///
    /// Within a batch, a feed's frames must appear in increasing frame-id
    /// order (the usual streaming contract); frames of different feeds may
    /// be interleaved arbitrarily. Each feed's frames are processed by its
    /// current worker in batch order, so results are deterministic: the
    /// same batches produce the same results for any worker-pool size and
    /// any rebalance settings.
    ///
    /// Batch boundaries are also where the scheduler acts: after the
    /// results are in, the batch's per-feed costs update the load model,
    /// and every [`rebalance_interval`](MultiFeedConfig::rebalance_interval)
    /// batches a rebalance pass may migrate feeds (see
    /// [`rebalance_now`](Self::rebalance_now)).
    pub fn push_batch(&mut self, batch: &[FeedFrame]) -> Result<Vec<FeedFrameResult>> {
        self.epoch += 1;
        let epoch = self.epoch;
        // Group the batch per shard (preserving batch order within each
        // shard, which preserves per-feed frame order) so each worker
        // receives one message per batch. Batch cost units (one per frame
        // plus one per detection) feed the deterministic load model.
        let mut shares: Vec<Vec<(usize, FeedId, FrameObjects)>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        let mut costs: BTreeMap<FeedId, u64> = BTreeMap::new();
        for (seq, tagged) in batch.iter().enumerate() {
            *costs.entry(tagged.feed).or_insert(0) += 1 + tagged.frame.classes.len() as u64;
            shares[self.shards.worker_of(tagged.feed)].push((
                seq,
                tagged.feed,
                tagged.frame.clone(),
            ));
        }
        // Queue depths per shard: the skew gauge, and what a ShardLost
        // error reports as the lost worker's backlog.
        let mut pending: Vec<usize> = shares.iter().map(Vec::len).collect();
        for &depth in &pending {
            self.peak_shard_depth = self.peak_shard_depth.max(depth as u64);
        }
        let mut outstanding = 0usize;
        for (worker, frames) in shares.into_iter().enumerate() {
            if frames.is_empty() {
                continue;
            }
            let queue_depth = frames.len();
            self.send_to_worker(worker, WorkerMsg::Frames { epoch, frames }, queue_depth)?;
            outstanding += 1;
        }
        let mut slots: Vec<Option<(FeedId, Result<FrameResult>)>> =
            (0..batch.len()).map(|_| None).collect();
        let mut busy = vec![0u64; self.workers.len()];
        // A worker replies once per share, so the wait must cover a whole
        // share of frames, not one: scale the timeout with the batch size
        // (generous — a healthy maintainer processes a frame in well under
        // 100ms) on top of the fixed allowance.
        let timeout = SHARD_TIMEOUT + Duration::from_millis(100) * batch.len() as u32;
        while outstanding > 0 {
            let (result_epoch, worker, outcomes, nanos) = match self.results.recv_timeout(timeout) {
                Ok(result) => result,
                Err(_) => {
                    // Name the shard that owes the first outstanding
                    // result, and how many frames it still owes.
                    let worker = slots
                        .iter()
                        .position(|slot| slot.is_none())
                        .map(|seq| self.shards.worker_of(batch[seq].feed))
                        .unwrap_or(0);
                    return Err(Error::ShardLost {
                        worker,
                        queue_depth: pending.get(worker).copied().unwrap_or(0),
                    });
                }
            };
            if result_epoch != epoch {
                // Leftover from a batch that aborted mid-send: discard.
                continue;
            }
            busy[worker] += nanos;
            pending[worker] = 0;
            for (seq, feed, outcome) in outcomes {
                slots[seq] = Some((feed, outcome));
            }
            outstanding -= 1;
        }
        // Worker-time telemetry: the batch cannot finish before its
        // busiest shard, so only that share counts toward the critical
        // path.
        self.sched.busy_nanos += busy.iter().sum::<u64>();
        self.sched.critical_path_nanos += busy.iter().copied().max().unwrap_or(0);
        self.sched.batches += 1;
        // Fold the batch's deterministic costs into the load model, then
        // rebalance if the interval came up.
        self.loads.observe_batch(&costs);
        if self.config.rebalance_interval > 0 {
            self.batches_since_rebalance += 1;
            if self.batches_since_rebalance >= self.config.rebalance_interval {
                self.batches_since_rebalance = 0;
                self.rebalance_now()?;
            }
        }
        // Surface the earliest (by batch position) per-frame error so the
        // failure report is deterministic too.
        let mut out = Vec::with_capacity(batch.len());
        for slot in slots {
            let (feed, outcome) = slot.expect("every sequence number is reported exactly once");
            out.push(FeedFrameResult {
                feed,
                result: outcome?,
            });
        }
        Ok(out)
    }

    /// Runs one rebalance pass immediately (regardless of
    /// [`rebalance_interval`](MultiFeedConfig::rebalance_interval)):
    /// plans greedy migrations from the current load model (see
    /// [`scheduler`]) and executes them. Returns the number of feeds
    /// migrated (zero when the load is already balanced).
    ///
    /// Rebalancing never changes results — only which worker computes
    /// them; see the [module documentation](self).
    pub fn rebalance_now(&mut self) -> Result<usize> {
        let plan = scheduler::plan_migrations(
            self.loads.loads(),
            &self.shards,
            self.config.steal_threshold,
        );
        if plan.is_empty() {
            return Ok(0);
        }
        for &(feed, worker) in &plan {
            self.execute_migration(feed, worker)?;
        }
        self.rebalances += 1;
        self.feeds_migrated += plan.len() as u64;
        Ok(plan.len())
    }

    /// Manually re-pins `feed` to `worker`, migrating its engine state if
    /// the feed has one. A no-op when the feed is already there. Like
    /// automatic rebalancing, a manual migration is invisible to results.
    pub fn migrate_feed(&mut self, feed: FeedId, worker: usize) -> Result<()> {
        if worker >= self.workers.len() {
            return Err(Error::InvalidConfig(format!(
                "cannot migrate {feed} to worker {worker}: the pool has {} workers",
                self.workers.len()
            )));
        }
        if self.shards.worker_of(feed) == worker {
            return Ok(());
        }
        self.execute_migration(feed, worker)?;
        self.feeds_migrated += 1;
        Ok(())
    }

    /// The migration protocol: ask the old worker to hand the feed's
    /// engine over (drained by construction — migrations only run between
    /// batches, when no frames are in flight), give it to the new worker,
    /// re-pin. FIFO inbox ordering makes this safe against in-flight
    /// catalog ops: an op queued before `Migrate` is applied by the old
    /// worker before hand-over, and the new worker sees its own copy of
    /// that op before `Adopt`, so the moved engine gets every op exactly
    /// once.
    fn execute_migration(&mut self, feed: FeedId, to: usize) -> Result<()> {
        let from = self.shards.worker_of(feed);
        if from == to {
            return Ok(());
        }
        let lost = |worker: usize| Error::ShardLost {
            worker,
            queue_depth: 0,
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let from_inbox = self.workers[from]
            .inbox
            .as_ref()
            .ok_or_else(|| lost(from))?;
        from_inbox
            .send(WorkerMsg::Migrate {
                feed,
                reply: reply_tx,
            })
            .map_err(|_| lost(from))?;
        let state = reply_rx
            .recv_timeout(SHARD_TIMEOUT)
            .map_err(|_| lost(from))?;
        if let Some(state) = state {
            let to_inbox = self.workers[to].inbox.as_ref().ok_or_else(|| lost(to))?;
            to_inbox
                .send(WorkerMsg::Adopt { feed, state })
                .map_err(|_| lost(to))?;
        }
        self.shards.pin(feed, to);
        Ok(())
    }

    /// Collects a deterministic global report: one [`FeedReport`] per feed
    /// in ascending feed-id order plus the merged metrics.
    ///
    /// The collection message queues behind any frames already sent to each
    /// worker, so a report taken after [`push_batch`](Self::push_batch)
    /// returns reflects every frame of that batch.
    pub fn report(&self) -> Result<MultiFeedReport> {
        let mut feeds: Vec<FeedReport> = Vec::new();
        for (index, worker) in self.workers.iter().enumerate() {
            let lost = || Error::ShardLost {
                worker: index,
                queue_depth: 0,
            };
            let inbox = worker.inbox.as_ref().ok_or_else(lost)?;
            let (reply_tx, reply_rx) = mpsc::channel();
            inbox
                .send(WorkerMsg::Collect { reply: reply_tx })
                .map_err(|_| lost())?;
            let part = reply_rx.recv_timeout(SHARD_TIMEOUT).map_err(|_| lost())?;
            feeds.extend(part);
        }
        feeds.sort_by_key(|report| report.feed);
        // Version-aware merge: the collect message queued behind every
        // catalog op on every shard, so each feed must report the fleet's
        // current version — a mismatch would mean some shard merged
        // metrics computed under a different query set.
        debug_assert!(
            feeds
                .iter()
                .all(|report| report.catalog_version == self.catalog_version),
            "a shard reported under a stale catalog version"
        );
        let mut metrics = MaintenanceMetrics::merged(feeds.iter().map(|report| &report.metrics));
        // The scheduler-owned counters exist fleet-wide only: per-feed
        // engines can't know them, so they are injected here rather than
        // merged.
        metrics.per_shard_queue_depth = self.peak_shard_depth;
        metrics.feeds_migrated = self.feeds_migrated;
        metrics.rebalances = self.rebalances;
        Ok(MultiFeedReport {
            feeds,
            metrics,
            catalog_version: self.catalog_version,
        })
    }

    /// Flushes every per-feed engine's durable state: due snapshots are
    /// written and the WALs fsynced. No-op on a non-durable fleet; dead
    /// workers are skipped (the per-operation fsync discipline already
    /// made all their acknowledged work durable). Dropping the engine
    /// flushes too — this is the explicit, fallible graceful-shutdown
    /// path.
    pub fn sync_store(&mut self) -> Result<()> {
        if !self.is_durable() {
            return Ok(());
        }
        let mut waits = Vec::new();
        for (index, worker) in self.workers.iter().enumerate() {
            let Some(inbox) = worker.inbox.as_ref() else {
                continue;
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            if inbox.send(WorkerMsg::Sync { reply: reply_tx }).is_ok() {
                waits.push((index, reply_rx));
            }
        }
        for (index, reply) in waits {
            reply
                .recv_timeout(SHARD_TIMEOUT)
                .map_err(|_| Error::ShardLost {
                    worker: index,
                    queue_depth: 0,
                })??;
        }
        Ok(())
    }

    /// Simulates a worker crash by dropping its inbox (the worker loop
    /// then exits as if the thread had died). Test-only: exercises the
    /// ShardLost diagnostics and the aborted-batch cleanup path.
    #[cfg(test)]
    fn kill_worker(&mut self, index: usize) {
        self.workers[index].inbox.take();
    }
}

impl Drop for MultiFeedEngine {
    fn drop(&mut self) {
        // Closing every inbox ends the worker loops; then join so no thread
        // outlives the engine.
        for worker in &mut self.workers {
            worker.inbox.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::{ClassId, FrameId, ObjectId, WindowSpec};
    use tvq_core::MaintainerKind;

    fn frame(fid: u64, detections: &[(u32, u16)]) -> FrameObjects {
        FrameObjects::new(
            FrameId(fid),
            detections
                .iter()
                .map(|&(id, class)| (ObjectId(id), ClassId(class)))
                .collect(),
        )
    }

    fn config(workers: usize) -> MultiFeedConfig {
        MultiFeedConfig::new(
            EngineConfig::new(WindowSpec::new(4, 3).unwrap()).with_maintainer(MaintainerKind::Ssg),
        )
        .with_workers(workers)
    }

    fn engine(workers: usize) -> MultiFeedEngine {
        MultiFeedEngine::builder(config(workers))
            .with_query_text("car >= 1 AND person >= 1")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_queries_and_workers() {
        assert!(MultiFeedEngine::builder(config(2)).build().is_err());
        let err = MultiFeedEngine::builder(config(0))
            .with_query_text("car >= 1")
            .unwrap()
            .build();
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn builder_rejects_sub_unity_steal_threshold() {
        for bad in [0.5, 0.0, -1.0, f64::NAN] {
            let err = MultiFeedEngine::builder(config(2).with_steal_threshold(bad))
                .with_query_text("car >= 1")
                .unwrap()
                .build();
            assert!(
                matches!(err, Err(Error::InvalidConfig(_))),
                "threshold {bad} must be rejected"
            );
        }
    }

    #[test]
    fn feeds_start_on_the_static_default_shards() {
        let engine = engine(3);
        assert_eq!(engine.num_workers(), 3);
        assert_eq!(engine.shard_map().version(), 0);
        for raw in 0..9u32 {
            assert_eq!(engine.shard_of(FeedId(raw)), raw as usize % 3);
        }
    }

    #[test]
    fn batch_results_preserve_input_order() {
        let mut engine = engine(2);
        let batch: Vec<FeedFrame> = (0..4u32)
            .flat_map(|feed| {
                (0..3u64)
                    .map(move |fid| FeedFrame::new(FeedId(feed), frame(fid, &[(1, 1), (2, 0)])))
            })
            .collect();
        let results = engine.push_batch(&batch).unwrap();
        assert_eq!(results.len(), batch.len());
        for (tagged, result) in batch.iter().zip(&results) {
            assert_eq!(result.feed, tagged.feed);
            assert_eq!(result.result.frame, tagged.frame.fid);
        }
    }

    #[test]
    fn per_feed_streams_are_isolated() {
        let mut engine = engine(2);
        // Feed 0 sees the car+person pair for 3 frames; feed 1 only a car.
        let mut batch = Vec::new();
        for fid in 0..3u64 {
            batch.push(FeedFrame::new(FeedId(0), frame(fid, &[(1, 1), (2, 0)])));
            batch.push(FeedFrame::new(FeedId(1), frame(fid, &[(1, 1)])));
        }
        let results = engine.push_batch(&batch).unwrap();
        let matched: Vec<FeedId> = results
            .iter()
            .filter(|r| r.result.any())
            .map(|r| r.feed)
            .collect();
        assert_eq!(matched, vec![FeedId(0)]);
        let report = engine.report().unwrap();
        assert_eq!(report.num_feeds(), 2);
        assert_eq!(report.feeds[0].feed, FeedId(0));
        assert_eq!(report.feeds[0].matching_frames, 1);
        assert_eq!(report.feeds[1].matching_frames, 0);
        assert_eq!(report.total_frames(), 6);
        assert_eq!(report.metrics.frames_processed, 6);
    }

    #[test]
    fn out_of_order_frames_error_without_killing_the_pool() {
        let mut engine = engine(1);
        engine.push(FeedId(0), frame(5, &[(1, 1)])).unwrap();
        let err = engine.push(FeedId(0), frame(2, &[(1, 1)]));
        assert!(matches!(err, Err(Error::OutOfOrderFrame { .. })));
        // The pool survives and other feeds still work.
        let ok = engine.push(FeedId(1), frame(0, &[(1, 1), (2, 0)]));
        assert!(ok.is_ok());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let batch: Vec<FeedFrame> = (0..6u32)
            .flat_map(|feed| {
                (0..8u64).map(move |fid| {
                    let mut detections = vec![((feed + fid as u32) % 4, 1u16)];
                    if (fid + u64::from(feed)) % 2 == 0 {
                        detections.push((10 + feed, 0));
                    }
                    FeedFrame::new(FeedId(feed), frame(fid, &detections))
                })
            })
            .collect();
        let mut baseline = None;
        for workers in [1usize, 2, 5] {
            let mut engine = engine(workers);
            let results = engine.push_batch(&batch).unwrap();
            let report = engine.report().unwrap();
            match &baseline {
                None => baseline = Some((results, report)),
                Some((expected_results, expected_report)) => {
                    assert_eq!(&results, expected_results, "workers={workers}");
                    // Scheduler-owned metrics legitimately depend on the
                    // worker count (queue depths differ); everything else
                    // must not.
                    let mut report = report;
                    report.metrics.per_shard_queue_depth =
                        expected_report.metrics.per_shard_queue_depth;
                    assert_eq!(&report, expected_report, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn manual_migration_is_invisible_to_results() {
        // Oracle: one engine per feed, never migrated.
        let mut oracle = engine(1);
        let mut subject = engine(3);
        for fid in 0..12u64 {
            let batch: Vec<FeedFrame> = (0..4u32)
                .map(|feed| {
                    FeedFrame::new(
                        FeedId(feed),
                        frame(fid, &[(feed + 1, 1), (feed + 10, 0), (1, 1)]),
                    )
                })
                .collect();
            let expected = oracle.push_batch(&batch).unwrap();
            let got = subject.push_batch(&batch).unwrap();
            assert_eq!(got, expected, "diverged at frame {fid}");
            // Bounce every feed to a new worker between batches.
            for feed in 0..4u32 {
                let target = (fid as usize + feed as usize) % subject.num_workers();
                subject.migrate_feed(FeedId(feed), target).unwrap();
            }
        }
        let subject_report = subject.report().unwrap();
        let oracle_report = oracle.report().unwrap();
        assert_eq!(subject_report.feeds.len(), oracle_report.feeds.len());
        for (a, b) in subject_report.feeds.iter().zip(&oracle_report.feeds) {
            assert_eq!(a, b, "per-feed reports must survive migration intact");
        }
        assert!(subject_report.metrics.feeds_migrated > 0);
        assert!(subject.shard_map().version() > 0);
    }

    #[test]
    fn migrating_an_unseen_feed_just_repins() {
        let mut engine = engine(2);
        engine.migrate_feed(FeedId(9), 0).unwrap();
        assert_eq!(engine.shard_of(FeedId(9)), 0);
        assert_eq!(engine.shard_map().version(), 1);
        // The feed then materialises on its pinned worker and works.
        let result = engine.push(FeedId(9), frame(0, &[(1, 1), (2, 0)])).unwrap();
        assert_eq!(result.feed, FeedId(9));
        let err = engine.migrate_feed(FeedId(9), 7);
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn automatic_rebalancing_separates_colliding_hot_feeds() {
        // Feeds 1 and 5 collide on worker 1 under mod-4 sharding; feed 1
        // and 5 carry ~10x the detections of the cold feeds, so after a
        // few batches the scheduler must split them.
        let mut engine = MultiFeedEngine::builder(
            config(4)
                .with_rebalance_interval(2)
                .with_steal_threshold(1.25),
        )
        .with_query_text("car >= 1 AND person >= 1")
        .unwrap()
        .build()
        .unwrap();
        for fid in 0..10u64 {
            let mut batch = Vec::new();
            for feed in 0..8u32 {
                let hot = feed == 1 || feed == 5;
                let detections: Vec<(u32, u16)> = if hot {
                    (0..20u32).map(|k| (k + 1, (k % 2) as u16)).collect()
                } else {
                    vec![(1, 1), (2, 0)]
                };
                batch.push(FeedFrame::new(FeedId(feed), frame(fid, &detections)));
            }
            engine.push_batch(&batch).unwrap();
        }
        assert_ne!(
            engine.shard_of(FeedId(1)),
            engine.shard_of(FeedId(5)),
            "hot feeds still collide: {:?}",
            engine.shard_map().pins().collect::<Vec<_>>()
        );
        let report = engine.report().unwrap();
        assert!(report.metrics.rebalances > 0);
        assert!(report.metrics.feeds_migrated > 0);
        assert!(report.metrics.per_shard_queue_depth >= 2);
        assert_eq!(report.total_frames(), 80);
    }

    #[test]
    fn rebalancing_disabled_never_migrates() {
        let mut engine = MultiFeedEngine::builder(config(2).with_rebalance_interval(0))
            .with_query_text("car >= 1")
            .unwrap()
            .build()
            .unwrap();
        for fid in 0..8u64 {
            let batch: Vec<FeedFrame> = (0..4u32)
                .map(|feed| {
                    let n = if feed == 0 { 16 } else { 1 };
                    let detections: Vec<(u32, u16)> = (0..n).map(|k| (k + 1, 1)).collect();
                    FeedFrame::new(FeedId(feed), frame(fid, &detections))
                })
                .collect();
            engine.push_batch(&batch).unwrap();
        }
        assert_eq!(engine.shard_map().version(), 0);
        let report = engine.report().unwrap();
        assert_eq!(report.metrics.rebalances, 0);
        assert_eq!(report.metrics.feeds_migrated, 0);
    }

    #[test]
    fn shard_lost_names_the_worker_and_its_queue_depth() {
        let mut engine = engine(2);
        // Warm both feeds so both workers hold engines.
        for fid in 0..2u64 {
            let batch = vec![
                FeedFrame::new(FeedId(0), frame(fid, &[(1, 1), (2, 0)])),
                FeedFrame::new(FeedId(1), frame(fid, &[(1, 1), (2, 0)])),
            ];
            engine.push_batch(&batch).unwrap();
        }
        engine.kill_worker(1);
        // Feed 1 (worker 1) gets three frames in this batch; the error
        // must name worker 1 and its 3-frame share.
        let batch = vec![
            FeedFrame::new(FeedId(0), frame(2, &[(1, 1), (2, 0)])),
            FeedFrame::new(FeedId(1), frame(2, &[(1, 1)])),
            FeedFrame::new(FeedId(1), frame(3, &[(1, 1)])),
            FeedFrame::new(FeedId(1), frame(4, &[(1, 1)])),
        ];
        let err = engine.push_batch(&batch).unwrap_err();
        match err {
            Error::ShardLost {
                worker,
                queue_depth,
            } => {
                assert_eq!(worker, 1);
                assert_eq!(queue_depth, 3, "the error reports the lost shard's backlog");
            }
            other => panic!("expected ShardLost, got {other:?}"),
        }
    }

    /// The aborted-batch cleanup path: when a batch dies on a lost shard
    /// *after* a healthy worker already received (and answers) its share,
    /// the stale results of the aborted epoch must be discarded — not
    /// spliced into the next batch.
    #[test]
    fn aborted_batches_do_not_leak_stale_results() {
        let mut oracle = engine(1);
        let mut engine = engine(2);
        for fid in 0..2u64 {
            let batch = vec![
                FeedFrame::new(FeedId(0), frame(fid, &[(1, 1), (2, 0)])),
                FeedFrame::new(FeedId(1), frame(fid, &[(1, 1), (2, 0)])),
            ];
            engine.push_batch(&batch).unwrap();
            oracle.push_batch(&batch).unwrap();
        }
        engine.kill_worker(1);
        // Worker 0 (healthy, listed first) gets its share and processes
        // frame 2 of feed 0; the batch then aborts on worker 1's closed
        // inbox. Feed 0's frame 2 result is now sitting in the results
        // channel, stamped with the aborted epoch.
        let aborted = vec![
            FeedFrame::new(FeedId(0), frame(2, &[(1, 1), (2, 0)])),
            FeedFrame::new(FeedId(1), frame(2, &[(1, 1)])),
        ];
        assert!(matches!(
            engine.push_batch(&aborted),
            Err(Error::ShardLost { worker: 1, .. })
        ));
        // The next batch only touches feed 0 (worker 0). Its results must
        // be frame 3's — the stale frame-2 result from the aborted epoch
        // is discarded by the epoch check, and the oracle (which never
        // aborted but processed the same accepted frames) must agree on
        // everything the engine *returns*.
        oracle.push(FeedId(0), frame(2, &[(1, 1), (2, 0)])).unwrap();
        let expected = oracle.push(FeedId(0), frame(3, &[(1, 1), (2, 0)])).unwrap();
        let got = engine.push(FeedId(0), frame(3, &[(1, 1), (2, 0)])).unwrap();
        assert_eq!(got.result.frame, FrameId(3));
        assert_eq!(got, expected, "stale epoch results leaked into the batch");
    }

    #[test]
    fn catalog_swaps_reach_every_shard_in_stream_order() {
        let mut engine = engine(3);
        // Warm two feeds under the original car+person query.
        for fid in 0..2u64 {
            for feed in 0..2u32 {
                engine
                    .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                    .unwrap();
            }
        }
        let person = engine.add_query_text("person >= 1").unwrap();
        assert_eq!(engine.catalog_version(), 1);
        // Enough frames for the new query's window (duration 3) to fill.
        let mut results = Vec::new();
        for fid in 2..6u64 {
            for feed in 0..2u32 {
                results.push(
                    engine
                        .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                        .unwrap(),
                );
            }
        }
        assert!(
            results
                .iter()
                .any(|r| r.result.matches.iter().any(|m| m.query == person)),
            "the added query matches on every feed"
        );
        engine.remove_query(person).unwrap();
        let last = engine.push(FeedId(0), frame(6, &[(1, 1), (2, 0)])).unwrap();
        assert!(
            last.result.matches.iter().all(|m| m.query != person),
            "removal is immediate"
        );
        let report = engine.report().unwrap();
        assert_eq!(report.catalog_version, 2);
        assert!(report.feeds.iter().all(|feed| feed.catalog_version == 2));
    }

    /// A catalog swap broadcast *before* a migration must reach the
    /// migrated engine exactly once: the old worker applies it before
    /// handing the engine over, and the new worker's own copy of the op
    /// (queued ahead of the adoption) must not touch the engine again.
    #[test]
    fn migration_and_catalog_swaps_interleave_exactly_once() {
        let mut subject = engine(2);
        let mut oracle = engine(1);
        for fid in 0..2u64 {
            for feed in 0..2u32 {
                subject
                    .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                    .unwrap();
                oracle
                    .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                    .unwrap();
            }
        }
        // Swap, then immediately migrate feed 1 onto worker 0 (the swap is
        // still in both workers' inboxes when the migration executes).
        let person_s = subject.add_query_text("person >= 1").unwrap();
        let person_o = oracle.add_query_text("person >= 1").unwrap();
        assert_eq!(person_s, person_o);
        subject.migrate_feed(FeedId(1), 0).unwrap();
        for fid in 2..6u64 {
            for feed in 0..2u32 {
                let got = subject
                    .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                    .unwrap();
                let expected = oracle
                    .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                    .unwrap();
                assert_eq!(got, expected, "feed {feed} frame {fid}");
            }
        }
        let report = subject.report().unwrap();
        assert_eq!(report.catalog_version, 1);
        assert!(report.feeds.iter().all(|f| f.catalog_version == 1));
        assert_eq!(
            report.feeds[1].metrics.catalog_swaps, 1,
            "the migrated engine saw the swap exactly once"
        );
    }

    /// The stale-spec regression: a feed first seen *after* catalog swaps
    /// must answer under the swapped query set (and report the fleet's
    /// version), not the query set the pool was built with.
    #[test]
    fn feeds_arriving_after_a_swap_use_the_current_catalog() {
        let mut engine = engine(2);
        engine.push(FeedId(0), frame(0, &[(1, 1)])).unwrap();
        let person = engine.add_query_text("person >= 1").unwrap();
        // Feed 7 has never been seen; its engine is built lazily *now*.
        for fid in 0..3u64 {
            let result = engine.push(FeedId(7), frame(fid, &[(9, 0)])).unwrap();
            if fid == 2 {
                assert!(
                    result.result.matches.iter().any(|m| m.query == person),
                    "a lazily built engine must know the added query: {:?}",
                    result.result.matches
                );
            }
        }
        let report = engine.report().unwrap();
        assert_eq!(report.catalog_version, 1);
        for feed in &report.feeds {
            assert_eq!(feed.catalog_version, 1, "feed {} is stale", feed.feed);
        }
    }

    #[test]
    fn catalog_ops_validate_centrally() {
        let mut engine = engine(2);
        // Duplicate id: the builder registered QueryId(0).
        let dup = CnfQuery::conjunction(
            QueryId(0),
            vec![tvq_query::Condition::at_least(ClassId(1), 1)],
        );
        assert!(engine.add_query(dup).is_err());
        assert!(engine.remove_query(QueryId(9)).is_err());
        assert_eq!(engine.catalog_version(), 0, "failed ops don't bump");
        assert_eq!(engine.queries().len(), 1);
    }

    #[test]
    fn empty_fleet_starts_idle_and_accepts_queries() {
        assert!(MultiFeedEngine::builder(config(2)).build().is_err());
        let mut engine = MultiFeedEngine::builder(config(2))
            .allow_empty_catalog()
            .build()
            .unwrap();
        let result = engine.push(FeedId(0), frame(0, &[(1, 1)])).unwrap();
        assert!(!result.result.any());
        let car = engine.add_query_text("car >= 1").unwrap();
        for fid in 1..4u64 {
            let result = engine.push(FeedId(0), frame(fid, &[(1, 1)])).unwrap();
            if fid == 3 {
                assert!(result.result.matches.iter().any(|m| m.query == car));
            }
        }
    }

    #[test]
    fn report_merges_metrics_across_feeds() {
        let mut engine = engine(2);
        for fid in 0..4u64 {
            for feed in 0..3u32 {
                engine
                    .push(FeedId(feed), frame(fid, &[(1, 1), (2, 0)]))
                    .unwrap();
            }
        }
        let report = engine.report().unwrap();
        assert_eq!(report.num_feeds(), 3);
        let mut summed = MaintenanceMetrics::merged(report.feeds.iter().map(|f| &f.metrics));
        // The scheduler-owned counters are injected fleet-wide, not merged
        // from the per-feed metrics (which must report them as zero).
        assert!(report
            .feeds
            .iter()
            .all(|f| f.metrics.per_shard_queue_depth == 0
                && f.metrics.feeds_migrated == 0
                && f.metrics.rebalances == 0));
        summed.per_shard_queue_depth = report.metrics.per_shard_queue_depth;
        summed.feeds_migrated = report.metrics.feeds_migrated;
        summed.rebalances = report.metrics.rebalances;
        assert_eq!(report.metrics, summed);
        assert_eq!(report.metrics.frames_processed, 12);
        assert_eq!(report.metrics.per_shard_queue_depth, 1, "single pushes");
        assert!(report.feeds.windows(2).all(|w| w[0].feed < w[1].feed));
    }

    fn durable_fleet(disk: &tvq_store::MemDisk, workers: usize) -> MultiFeedEngine {
        MultiFeedEngine::builder(config(workers))
            .with_query_text("car >= 1 AND person >= 1")
            .unwrap()
            .with_store(disk.io(), Path::new("/fleet"))
            .build()
            .unwrap()
    }

    fn mixed_batch(fid: u64) -> Vec<FeedFrame> {
        (0..4u32)
            .map(|feed| {
                FeedFrame::new(
                    FeedId(feed),
                    frame(fid, &[(feed + 1, 1), (9, 0), (feed, (fid % 2) as u16)]),
                )
            })
            .collect()
    }

    /// The respawn path: killing a worker of a durable fleet must be
    /// invisible — the next frame push (and the next catalog broadcast)
    /// respawns it, the replacement recovers its feeds from the store, and
    /// every result and per-feed tally matches a fleet that never lost a
    /// worker.
    #[test]
    fn durable_fleet_survives_worker_loss_transparently() {
        let disk = tvq_store::MemDisk::new();
        let mut oracle = engine(2);
        let mut subject = durable_fleet(&disk, 2);
        assert!(subject.is_durable() && !oracle.is_durable());
        for fid in 0..3u64 {
            let batch = mixed_batch(fid);
            let expected = oracle.push_batch(&batch).unwrap();
            let got = subject.push_batch(&batch).unwrap();
            assert_eq!(got, expected, "pre-crash frame {fid}");
        }
        // Crash worker 1, then swap the catalog: the broadcast must heal
        // the pool rather than error.
        subject.kill_worker(1);
        let person_s = subject.add_query_text("person >= 1").unwrap();
        let person_o = oracle.add_query_text("person >= 1").unwrap();
        assert_eq!(person_s, person_o);
        for fid in 3..7u64 {
            let batch = mixed_batch(fid);
            let expected = oracle.push_batch(&batch).unwrap();
            let got = subject.push_batch(&batch).unwrap();
            assert_eq!(got, expected, "post-respawn frame {fid}");
        }
        // Crash the other worker; the frames path heals this one.
        subject.kill_worker(0);
        for fid in 7..9u64 {
            let batch = mixed_batch(fid);
            let expected = oracle.push_batch(&batch).unwrap();
            let got = subject.push_batch(&batch).unwrap();
            assert_eq!(got, expected, "second-respawn frame {fid}");
        }
        let subject_report = subject.report().unwrap();
        let oracle_report = oracle.report().unwrap();
        assert_eq!(
            subject_report.catalog_version,
            oracle_report.catalog_version
        );
        assert_eq!(subject_report.feeds.len(), oracle_report.feeds.len());
        for (a, b) in subject_report.feeds.iter().zip(&oracle_report.feeds) {
            assert_eq!(a.feed, b.feed);
            assert_eq!(a.frames, b.frames, "feed {} frames", a.feed);
            assert_eq!(a.total_matches, b.total_matches);
            assert_eq!(a.matching_frames, b.matching_frames);
            assert_eq!(a.catalog_version, b.catalog_version);
        }
        assert_eq!(
            subject_report.metrics.frames_processed,
            oracle_report.metrics.frames_processed
        );
        assert!(
            subject_report.metrics.recoveries > 0,
            "the respawned workers recovered their feeds from the store"
        );
    }

    /// The restart path: dropping a durable fleet and rebuilding over the
    /// same directory resumes it — persisted master catalog (superseding
    /// the builder's queries), recovered per-feed engines, whole-lifetime
    /// tallies — and continues frame-for-frame like a fleet that never
    /// stopped.
    #[test]
    fn durable_fleet_restarts_from_the_store() {
        let disk = tvq_store::MemDisk::new();
        let mut oracle = engine(2);
        let person_o = {
            let mut fleet = durable_fleet(&disk, 2);
            for fid in 0..4u64 {
                let batch = mixed_batch(fid);
                assert_eq!(
                    fleet.push_batch(&batch).unwrap(),
                    oracle.push_batch(&batch).unwrap()
                );
            }
            let person_f = fleet.add_query_text("person >= 1").unwrap();
            let person_o = oracle.add_query_text("person >= 1").unwrap();
            assert_eq!(person_f, person_o);
            for fid in 4..6u64 {
                let batch = mixed_batch(fid);
                assert_eq!(
                    fleet.push_batch(&batch).unwrap(),
                    oracle.push_batch(&batch).unwrap()
                );
            }
            fleet.sync_store().unwrap();
            person_o
            // Dropping the fleet joins the workers, which flush and
            // release every per-feed directory lock.
        };
        let mut fleet = durable_fleet(&disk, 2);
        assert_eq!(
            fleet.catalog_version(),
            1,
            "the persisted master catalog supersedes the builder's"
        );
        assert_eq!(fleet.queries().len(), 2);
        for fid in 6..9u64 {
            let batch = mixed_batch(fid);
            assert_eq!(
                fleet.push_batch(&batch).unwrap(),
                oracle.push_batch(&batch).unwrap(),
                "post-restart frame {fid}"
            );
        }
        // Removing the recovered query proves the restarted master list is
        // live, not just displayed.
        fleet.remove_query(person_o).unwrap();
        oracle.remove_query(person_o).unwrap();
        let batch = mixed_batch(9);
        assert_eq!(
            fleet.push_batch(&batch).unwrap(),
            oracle.push_batch(&batch).unwrap()
        );
        let fleet_report = fleet.report().unwrap();
        let oracle_report = oracle.report().unwrap();
        for (a, b) in fleet_report.feeds.iter().zip(&oracle_report.feeds) {
            assert_eq!(
                a.frames, b.frames,
                "whole-lifetime tally of feed {}",
                a.feed
            );
            assert_eq!(a.total_matches, b.total_matches);
            assert_eq!(a.matching_frames, b.matching_frames);
        }
        assert_eq!(
            fleet_report.metrics.frames_processed,
            oracle_report.metrics.frames_processed
        );
        assert_eq!(fleet_report.metrics.recoveries, 4, "one per recovered feed");
        assert_eq!(fleet_report.catalog_version, 2);
    }

    /// Non-durable fleets keep the fail-fast contract: a lost worker is an
    /// error, never a silent partial answer (`shard_lost_names_the_worker`
    /// pins the diagnostics; this pins that durability is what opts into
    /// healing).
    #[test]
    fn non_durable_fleets_do_not_respawn() {
        let mut engine = engine(2);
        engine.push(FeedId(1), frame(0, &[(1, 1), (2, 0)])).unwrap();
        engine.kill_worker(1);
        assert!(matches!(
            engine.push(FeedId(1), frame(1, &[(1, 1), (2, 0)])),
            Err(Error::ShardLost { worker: 1, .. })
        ));
        assert!(!engine.is_durable());
        engine.sync_store().unwrap();
    }

    #[test]
    fn scheduling_stats_accumulate() {
        let mut engine = engine(2);
        let batch: Vec<FeedFrame> = (0..4u32)
            .map(|feed| FeedFrame::new(FeedId(feed), frame(0, &[(1, 1), (2, 0)])))
            .collect();
        engine.push_batch(&batch).unwrap();
        let stats = engine.scheduling_stats();
        assert_eq!(stats.batches, 1);
        assert!(stats.busy_nanos >= stats.critical_path_nanos);
        assert!(stats.critical_path_nanos > 0);
        assert!(stats.schedule_parallelism() >= 1.0);
    }
}
