//! Subscription dispatch: fan query matches out to bounded per-subscriber
//! queues.
//!
//! The engine produces [`QueryMatch`]es synchronously, frame by frame. A
//! serving deployment has many *subscribers* — connections, dashboards,
//! downstream pipelines — each interested in some subset of the registered
//! queries and each consuming at its own pace. [`SubscriptionHub`] decouples
//! the two sides:
//!
//! * [`publish`](SubscriptionHub::publish) stamps each match with a global,
//!   monotonically increasing sequence number and fans it out to every
//!   subscriber whose query filter accepts it. Events are shared (`Arc`),
//!   so fan-out to N subscribers clones pointers, not payloads;
//! * every subscriber owns a **bounded** FIFO queue. A slow consumer never
//!   stalls the engine or other subscribers: when its queue is full the
//!   oldest event is dropped and its `dropped` counter incremented —
//!   the sequence numbers let the consumer detect the gap;
//! * [`poll`](SubscriptionHub::poll) drains up to `max` events in order and
//!   advances the subscriber's cursor (total events delivered).
//!
//! The hub is synchronous and single-threaded by design — the server wraps
//! it in its own lock next to the engine, mirroring the embedded-vs-server
//! split described in ARCHITECTURE.md.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use tvq_common::{Error, FeedId, FrameId, FxHashSet, QueryId, Result};
use tvq_query::QueryMatch;

/// Identifies one subscriber registered with a [`SubscriptionHub`].
/// Never reused within a hub's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriberId(pub u64);

impl std::fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One dispatched match: the match itself plus its provenance and the
/// hub-global sequence number subscribers use to detect drop gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchEvent {
    /// Hub-global sequence number: assigned in publish order, starting at
    /// 0, never reused. Consecutive events a subscriber receives differ by
    /// more than the filter skips only when its queue overflowed.
    pub seq: u64,
    /// The feed the match came from (single-feed deployments pass a fixed
    /// id).
    pub feed: FeedId,
    /// The frame whose window produced the match.
    pub frame: FrameId,
    /// The match.
    pub matched: QueryMatch,
}

/// Live state of one subscriber.
#[derive(Debug)]
pub struct Subscription {
    queue: VecDeque<Arc<MatchEvent>>,
    capacity: usize,
    /// `None` subscribes to every query.
    filter: Option<FxHashSet<QueryId>>,
    dropped: u64,
    delivered: u64,
}

impl Subscription {
    /// Events currently waiting to be polled.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events discarded because the queue was full (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The subscriber's cursor: events handed out via
    /// [`poll`](SubscriptionHub::poll) so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The query filter, or `None` for all queries.
    pub fn filter(&self) -> Option<&FxHashSet<QueryId>> {
        self.filter.as_ref()
    }

    fn accepts(&self, query: QueryId) -> bool {
        match &self.filter {
            Some(filter) => filter.contains(&query),
            None => true,
        }
    }

    fn push(&mut self, event: &Arc<MatchEvent>) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.dropped += 1;
        }
        self.queue.push_back(Arc::clone(event));
    }
}

/// Fans query matches out to bounded per-subscriber queues. See the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct SubscriptionHub {
    subscribers: BTreeMap<SubscriberId, Subscription>,
    next_subscriber: u64,
    next_seq: u64,
}

impl SubscriptionHub {
    /// Creates a hub with no subscribers.
    pub fn new() -> Self {
        SubscriptionHub::default()
    }

    /// Registers a subscriber with the given queue bound (clamped to at
    /// least 1) and query filter (`None` = every query).
    pub fn subscribe(
        &mut self,
        capacity: usize,
        filter: Option<FxHashSet<QueryId>>,
    ) -> SubscriberId {
        let id = SubscriberId(self.next_subscriber);
        self.next_subscriber += 1;
        self.subscribers.insert(
            id,
            Subscription {
                queue: VecDeque::new(),
                capacity: capacity.max(1),
                filter,
                dropped: 0,
                delivered: 0,
            },
        );
        id
    }

    /// Removes a subscriber, discarding its queue.
    pub fn unsubscribe(&mut self, id: SubscriberId) -> Result<()> {
        self.subscribers
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| Error::InvalidConfig(format!("unknown subscriber {id}")))
    }

    /// Narrows every subscriber's filter after a query was cancelled:
    /// drops the id from explicit filters and purges queued events for it.
    /// Subscribers filtering on *only* that query keep their (now empty)
    /// filter and simply receive nothing further.
    pub fn retract_query(&mut self, query: QueryId) {
        for sub in self.subscribers.values_mut() {
            if let Some(filter) = &mut sub.filter {
                filter.remove(&query);
            }
            sub.queue.retain(|event| event.matched.query != query);
        }
    }

    /// Stamps each match with the next sequence numbers and fans it out to
    /// every subscriber whose filter accepts its query. Returns how many
    /// events were enqueued (sum over subscribers, counting an event once
    /// per recipient).
    pub fn publish(&mut self, feed: FeedId, frame: FrameId, matches: &[QueryMatch]) -> usize {
        let mut enqueued = 0;
        for matched in matches {
            let event = Arc::new(MatchEvent {
                seq: self.next_seq,
                feed,
                frame,
                matched: matched.clone(),
            });
            self.next_seq += 1;
            for sub in self.subscribers.values_mut() {
                if sub.accepts(matched.query) {
                    sub.push(&event);
                    enqueued += 1;
                }
            }
        }
        enqueued
    }

    /// Drains up to `max` queued events for a subscriber, oldest first,
    /// advancing its cursor.
    pub fn poll(&mut self, id: SubscriberId, max: usize) -> Result<Vec<Arc<MatchEvent>>> {
        let sub = self
            .subscribers
            .get_mut(&id)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown subscriber {id}")))?;
        let take = max.min(sub.queue.len());
        let events: Vec<Arc<MatchEvent>> = sub.queue.drain(..take).collect();
        sub.delivered += events.len() as u64;
        Ok(events)
    }

    /// The live state of a subscriber.
    pub fn subscription(&self, id: SubscriberId) -> Option<&Subscription> {
        self.subscribers.get(&id)
    }

    /// Iterates subscribers in id order.
    pub fn subscriptions(&self) -> impl Iterator<Item = (SubscriberId, &Subscription)> {
        self.subscribers.iter().map(|(&id, sub)| (id, sub))
    }

    /// Number of live subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// Whether no subscribers are registered.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Events published through the hub so far (across all subscribers).
    pub fn published(&self) -> u64 {
        self.next_seq
    }

    /// Total events dropped to backpressure, across all subscribers.
    pub fn total_dropped(&self) -> u64 {
        self.subscribers.values().map(Subscription::dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::ObjectSet;

    fn matched(query: u32) -> QueryMatch {
        QueryMatch {
            query: QueryId(query),
            objects: ObjectSet::from_raw([1, 2]),
            frames: Arc::from([FrameId(0), FrameId(1)]),
        }
    }

    fn filter(ids: &[u32]) -> Option<FxHashSet<QueryId>> {
        Some(ids.iter().map(|&q| QueryId(q)).collect())
    }

    #[test]
    fn events_are_sequenced_and_fanned_out() {
        let mut hub = SubscriptionHub::new();
        let all = hub.subscribe(8, None);
        let only_q1 = hub.subscribe(8, filter(&[1]));
        let enqueued = hub.publish(FeedId(0), FrameId(5), &[matched(0), matched(1)]);
        assert_eq!(enqueued, 3, "2 to the unfiltered, 1 to the filtered");
        assert_eq!(hub.published(), 2);

        let events = hub.poll(all, 10).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].frame, FrameId(5));
        assert_eq!(events[0].matched.query, QueryId(0));

        let events = hub.poll(only_q1, 10).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].matched.query, QueryId(1));
        assert_eq!(events[0].seq, 1, "global seq, independent of the filter");
        assert_eq!(hub.subscription(only_q1).unwrap().delivered(), 1);
    }

    #[test]
    fn full_queue_drops_oldest_and_counts() {
        let mut hub = SubscriptionHub::new();
        let slow = hub.subscribe(2, None);
        for i in 0..5 {
            hub.publish(FeedId(0), FrameId(i), &[matched(0)]);
        }
        let sub = hub.subscription(slow).unwrap();
        assert_eq!(sub.queued(), 2);
        assert_eq!(sub.dropped(), 3);
        assert_eq!(hub.total_dropped(), 3);
        // The survivors are the newest events; the seq gap exposes the loss.
        let events = hub.poll(slow, 10).unwrap();
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
    }

    #[test]
    fn poll_respects_max_and_preserves_order() {
        let mut hub = SubscriptionHub::new();
        let id = hub.subscribe(10, None);
        hub.publish(FeedId(2), FrameId(0), &[matched(0), matched(1), matched(2)]);
        let first = hub.poll(id, 2).unwrap();
        assert_eq!(first.len(), 2);
        let rest = hub.poll(id, 2).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].seq, 2);
        assert!(hub.poll(id, 2).unwrap().is_empty());
        assert_eq!(hub.subscription(id).unwrap().delivered(), 3);
    }

    #[test]
    fn unsubscribe_and_unknown_ids() {
        let mut hub = SubscriptionHub::new();
        let id = hub.subscribe(4, None);
        assert_eq!(hub.len(), 1);
        hub.unsubscribe(id).unwrap();
        assert!(hub.is_empty());
        assert!(hub.unsubscribe(id).is_err());
        assert!(hub.poll(id, 1).is_err());
        // Ids are never reused.
        let next = hub.subscribe(4, None);
        assert_ne!(next, id);
    }

    #[test]
    fn retract_query_purges_queues_and_filters() {
        let mut hub = SubscriptionHub::new();
        let mixed = hub.subscribe(8, filter(&[0, 1]));
        hub.publish(FeedId(0), FrameId(0), &[matched(0), matched(1)]);
        hub.retract_query(QueryId(0));
        let events = hub.poll(mixed, 10).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].matched.query, QueryId(1));
        let sub = hub.subscription(mixed).unwrap();
        assert_eq!(sub.filter().unwrap().len(), 1);
        // Republishing the retracted query reaches no one.
        assert_eq!(hub.publish(FeedId(0), FrameId(1), &[matched(0)]), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut hub = SubscriptionHub::new();
        let id = hub.subscribe(0, None);
        assert_eq!(hub.subscription(id).unwrap().capacity(), 1);
        hub.publish(FeedId(0), FrameId(0), &[matched(0), matched(1)]);
        let sub = hub.subscription(id).unwrap();
        assert_eq!(sub.queued(), 1);
        assert_eq!(sub.dropped(), 1);
    }
}
