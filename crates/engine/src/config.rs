//! Engine configuration.

use tvq_common::WindowSpec;
use tvq_core::{CompactionPolicy, MaintainerKind};

/// How the engine picks its MCOS-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainerSelection {
    /// Always use the given strategy.
    Fixed(MaintainerKind),
    /// Pick MFS or SSG from the feed's statistics (see
    /// [`choose_maintainer`](crate::adaptive::choose_maintainer)); falls back
    /// to SSG when no statistics are available.
    Auto,
}

/// Configuration of the end-to-end engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Sliding-window specification (window length and duration threshold).
    pub window: WindowSpec,
    /// Strategy selection.
    pub maintainer: MaintainerSelection,
    /// Whether to enable the Section 5.3 pruning strategy when the query
    /// workload permits it (all conditions `>=`).
    pub pruning: bool,
    /// Interner-arena compaction between frames: `Some(policy)` lets the
    /// engine consult the policy every `policy.check_interval` frames and
    /// compact the maintainer's arena when live-set occupancy has fallen
    /// below the policy's ratio; `None` keeps the arena append-only (the
    /// pre-compaction behaviour — memory then grows with the number of
    /// distinct object sets ever seen by the feed).
    pub compaction: Option<CompactionPolicy>,
}

impl EngineConfig {
    /// Creates a configuration with the given window, SSG maintenance,
    /// pruning enabled and the default compaction policy.
    pub fn new(window: WindowSpec) -> Self {
        EngineConfig {
            window,
            maintainer: MaintainerSelection::Fixed(MaintainerKind::Ssg),
            pruning: true,
            compaction: Some(CompactionPolicy::default_policy()),
        }
    }

    /// The paper's default setting: w=300 frames, d=240 frames, SSG, pruning.
    pub fn paper_default() -> Self {
        EngineConfig::new(WindowSpec::paper_default())
    }

    /// Selects a fixed maintenance strategy.
    pub fn with_maintainer(mut self, kind: MaintainerKind) -> Self {
        self.maintainer = MaintainerSelection::Fixed(kind);
        self
    }

    /// Lets the engine pick the strategy from feed statistics.
    pub fn with_adaptive_maintainer(mut self) -> Self {
        self.maintainer = MaintainerSelection::Auto;
        self
    }

    /// Enables or disables query-driven pruning.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Sets the interner-compaction policy (`None` disables compaction).
    pub fn with_compaction(mut self, compaction: Option<CompactionPolicy>) -> Self {
        self.compaction = compaction;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::paper_default()
    }
}

/// Configuration of the sharded multi-feed engine
/// ([`MultiFeedEngine`](crate::MultiFeedEngine)).
///
/// Every camera feed is served by a per-feed single-feed engine configured
/// with the embedded [`EngineConfig`]; feeds are sharded across a fixed pool
/// of `workers` OS threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiFeedConfig {
    /// Configuration applied to every per-feed engine.
    pub engine: EngineConfig,
    /// Number of worker threads the feeds are sharded across. Must be at
    /// least 1; feed `f` is pinned to worker `f mod workers`.
    pub workers: usize,
}

impl MultiFeedConfig {
    /// Default worker-pool size when none is requested explicitly.
    pub const DEFAULT_WORKERS: usize = 4;

    /// Creates a multi-feed configuration with the given per-feed engine
    /// configuration and [`Self::DEFAULT_WORKERS`] workers.
    pub fn new(engine: EngineConfig) -> Self {
        MultiFeedConfig {
            engine,
            workers: Self::DEFAULT_WORKERS,
        }
    }

    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

impl Default for MultiFeedConfig {
    fn default() -> Self {
        MultiFeedConfig::new(EngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = EngineConfig::default();
        assert_eq!(config.window.window(), 300);
        assert_eq!(config.window.duration(), 240);
        assert!(config.pruning);
        assert_eq!(
            config.maintainer,
            MaintainerSelection::Fixed(MaintainerKind::Ssg)
        );
    }

    #[test]
    fn multi_feed_config_defaults_and_setters() {
        let config = MultiFeedConfig::default();
        assert_eq!(config.workers, MultiFeedConfig::DEFAULT_WORKERS);
        assert_eq!(config.engine, EngineConfig::default());
        let config = MultiFeedConfig::new(
            EngineConfig::new(WindowSpec::new(5, 2).unwrap()).with_maintainer(MaintainerKind::Mfs),
        )
        .with_workers(2);
        assert_eq!(config.workers, 2);
        assert_eq!(config.engine.window.window(), 5);
    }

    #[test]
    fn builder_style_setters() {
        let config = EngineConfig::new(WindowSpec::new(10, 5).unwrap())
            .with_maintainer(MaintainerKind::Mfs)
            .with_pruning(false);
        assert_eq!(
            config.maintainer,
            MaintainerSelection::Fixed(MaintainerKind::Mfs)
        );
        assert!(!config.pruning);
        let auto = config.with_adaptive_maintainer();
        assert_eq!(auto.maintainer, MaintainerSelection::Auto);
    }
}
