//! Engine configuration.

use tvq_common::{MemoConfig, WindowSpec};
use tvq_core::{CompactionPolicy, MaintainerKind};

/// How the engine picks its MCOS-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainerSelection {
    /// Always use the given strategy.
    Fixed(MaintainerKind),
    /// Pick MFS or SSG from the feed's statistics (see
    /// [`choose_maintainer`](crate::adaptive::choose_maintainer)); falls back
    /// to SSG when no statistics are available.
    Auto,
}

/// Configuration of the end-to-end engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Sliding-window specification (window length and duration threshold).
    pub window: WindowSpec,
    /// Strategy selection.
    pub maintainer: MaintainerSelection,
    /// Whether to enable the Section 5.3 pruning strategy when the query
    /// workload permits it (all conditions `>=`).
    pub pruning: bool,
    /// Interner-arena compaction between frames: `Some(policy)` lets the
    /// engine consult the policy every `policy.check_interval` frames and
    /// compact the maintainer's arena when live-set occupancy has fallen
    /// below the policy's ratio; `None` keeps the arena append-only (the
    /// pre-compaction behaviour — memory then grows with the number of
    /// distinct object sets ever seen by the feed). Compaction epochs also
    /// drive **object retirement**: the retire set each epoch reports is
    /// what lets the engine's class store and tracking maps forget dead
    /// identifiers, so disabling compaction also re-enables the
    /// grow-with-history engine-side footprint.
    pub compaction: Option<CompactionPolicy>,
    /// Sizing policy of the interner's intersection memo. The adaptive
    /// default grows the cache when the sampled miss rate shows the live
    /// pair working set has outgrown it; [`MemoConfig::fixed`] pins the
    /// pre-adaptive behaviour (used by benches as a baseline).
    pub memo: MemoConfig,
}

impl EngineConfig {
    /// Creates a configuration with the given window, SSG maintenance,
    /// pruning enabled, the default compaction policy and the adaptive
    /// intersection memo.
    pub fn new(window: WindowSpec) -> Self {
        EngineConfig {
            window,
            maintainer: MaintainerSelection::Fixed(MaintainerKind::Ssg),
            pruning: true,
            compaction: Some(CompactionPolicy::default_policy()),
            memo: MemoConfig::adaptive(),
        }
    }

    /// The paper's default setting: w=300 frames, d=240 frames, SSG, pruning.
    pub fn paper_default() -> Self {
        EngineConfig::new(WindowSpec::paper_default())
    }

    /// Selects a fixed maintenance strategy.
    pub fn with_maintainer(mut self, kind: MaintainerKind) -> Self {
        self.maintainer = MaintainerSelection::Fixed(kind);
        self
    }

    /// Lets the engine pick the strategy from feed statistics.
    pub fn with_adaptive_maintainer(mut self) -> Self {
        self.maintainer = MaintainerSelection::Auto;
        self
    }

    /// Enables or disables query-driven pruning.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Sets the interner-compaction policy (`None` disables compaction).
    pub fn with_compaction(mut self, compaction: Option<CompactionPolicy>) -> Self {
        self.compaction = compaction;
        self
    }

    /// Sets the intersection-memo sizing policy.
    pub fn with_memo(mut self, memo: MemoConfig) -> Self {
        self.memo = memo;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::paper_default()
    }
}

/// Configuration of the sharded multi-feed engine
/// ([`MultiFeedEngine`](crate::MultiFeedEngine)).
///
/// Every camera feed is served by a per-feed single-feed engine configured
/// with the embedded [`EngineConfig`]; feeds are sharded across a fixed pool
/// of `workers` OS threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiFeedConfig {
    /// Configuration applied to every per-feed engine.
    pub engine: EngineConfig,
    /// Number of worker threads the feeds are sharded across. Must be at
    /// least 1; feed `f` is pinned to worker `f mod workers`.
    pub workers: usize,
    /// Whether every per-feed engine registers into **one** shared class
    /// store instead of a private store each. Only sound when the feeds
    /// share a global object-id space (e.g. a multi-camera rig with
    /// cross-camera re-identification): the store is first-writer-wins per
    /// live entry, so colliding per-camera id spaces would cross-pollute
    /// classes. Entries are reference counted, so one shard's epoch
    /// retirement never evicts a mapping another shard still tracks.
    /// Default `false` (private stores, the pre-sharing behaviour).
    pub shared_class_store: bool,
    /// How many ingested batches pass between automatic rebalance passes of
    /// the work-stealing scheduler. `0` disables automatic rebalancing
    /// entirely (feeds stay on their static `feed mod workers` shards unless
    /// migrated manually) — the pre-scheduler behaviour, and the baseline
    /// the skew benchmarks compare against. Rebalancing never changes
    /// results, only which worker computes them.
    pub rebalance_interval: u64,
    /// How lopsided the load must be before a rebalance pass migrates
    /// anything: the busiest worker must carry more than `steal_threshold`
    /// times the idlest worker's load. Must be at least `1.0` (enforced at
    /// build time); higher values tolerate more skew before stealing,
    /// `1.0` rebalances on any imbalance the planner can improve.
    pub steal_threshold: f64,
}

impl MultiFeedConfig {
    /// Default worker-pool size when none is requested explicitly.
    pub const DEFAULT_WORKERS: usize = 4;

    /// Default automatic-rebalance cadence, in batches.
    pub const DEFAULT_REBALANCE_INTERVAL: u64 = 8;

    /// Default skew tolerance of the rebalancer.
    pub const DEFAULT_STEAL_THRESHOLD: f64 = 1.5;

    /// Creates a multi-feed configuration with the given per-feed engine
    /// configuration and [`Self::DEFAULT_WORKERS`] workers.
    pub fn new(engine: EngineConfig) -> Self {
        MultiFeedConfig {
            engine,
            workers: Self::DEFAULT_WORKERS,
            shared_class_store: false,
            rebalance_interval: Self::DEFAULT_REBALANCE_INTERVAL,
            steal_threshold: Self::DEFAULT_STEAL_THRESHOLD,
        }
    }

    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Shares one class store across every per-feed engine (see
    /// [`shared_class_store`](Self::shared_class_store) for when this is
    /// sound).
    pub fn with_shared_class_store(mut self, shared: bool) -> Self {
        self.shared_class_store = shared;
        self
    }

    /// Sets the automatic-rebalance cadence (`0` disables rebalancing).
    pub fn with_rebalance_interval(mut self, batches: u64) -> Self {
        self.rebalance_interval = batches;
        self
    }

    /// Sets the rebalancer's skew tolerance (must be ≥ 1.0 — validated when
    /// the engine is built).
    pub fn with_steal_threshold(mut self, threshold: f64) -> Self {
        self.steal_threshold = threshold;
        self
    }
}

impl Default for MultiFeedConfig {
    fn default() -> Self {
        MultiFeedConfig::new(EngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = EngineConfig::default();
        assert_eq!(config.window.window(), 300);
        assert_eq!(config.window.duration(), 240);
        assert!(config.pruning);
        assert_eq!(
            config.maintainer,
            MaintainerSelection::Fixed(MaintainerKind::Ssg)
        );
        assert_eq!(config.memo, MemoConfig::adaptive());
        assert_eq!(
            config.with_memo(MemoConfig::fixed(15)).memo,
            MemoConfig::fixed(15)
        );
    }

    #[test]
    fn multi_feed_config_defaults_and_setters() {
        let config = MultiFeedConfig::default();
        assert_eq!(config.workers, MultiFeedConfig::DEFAULT_WORKERS);
        assert_eq!(config.engine, EngineConfig::default());
        assert!(!config.shared_class_store, "private stores by default");
        assert!(config.with_shared_class_store(true).shared_class_store);
        assert_eq!(
            config.rebalance_interval,
            MultiFeedConfig::DEFAULT_REBALANCE_INTERVAL
        );
        assert_eq!(
            config.steal_threshold,
            MultiFeedConfig::DEFAULT_STEAL_THRESHOLD
        );
        assert_eq!(config.with_rebalance_interval(0).rebalance_interval, 0);
        assert_eq!(config.with_steal_threshold(2.0).steal_threshold, 2.0);
        let config = MultiFeedConfig::new(
            EngineConfig::new(WindowSpec::new(5, 2).unwrap()).with_maintainer(MaintainerKind::Mfs),
        )
        .with_workers(2);
        assert_eq!(config.workers, 2);
        assert_eq!(config.engine.window.window(), 5);
    }

    #[test]
    fn builder_style_setters() {
        let config = EngineConfig::new(WindowSpec::new(10, 5).unwrap())
            .with_maintainer(MaintainerKind::Mfs)
            .with_pruning(false);
        assert_eq!(
            config.maintainer,
            MaintainerSelection::Fixed(MaintainerKind::Mfs)
        );
        assert!(!config.pruning);
        let auto = config.with_adaptive_maintainer();
        assert_eq!(auto.maintainer, MaintainerSelection::Auto);
    }
}
