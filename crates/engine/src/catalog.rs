//! The versioned, swappable query catalog.
//!
//! PR-1..5 baked the query workload into an immutable `Arc` at build time;
//! the ROADMAP's north star ("millions of users") needs queries that
//! register and cancel *while feeds run*. [`QueryCatalog`] makes the query
//! set itself a piece of versioned state: every [`add_query`] /
//! [`remove_query`] produces a fresh immutable [`CatalogSnapshot`] —
//! rebuilt evaluator (re-keyed mask slots), recomputed relevant-class set,
//! re-derived ≥-only pruning decision — and publishes it atomically through
//! a shared cell that the engine's live pruner reads.
//!
//! # Convergence contract
//!
//! A swap is applied *between* frames, never within one, so determinism is
//! untouched; what changes is which queries the following frames evaluate.
//! The exact equivalence with a fresh engine built from the final query set
//! is asymmetric:
//!
//! * **removals** are immediately invisible to the surviving queries: the
//!   evaluator simply stops reporting the removed ids, and clearing pruner
//!   verdicts only ever *widens* pruning, which Proposition 1 (downward
//!   monotonicity of ≥-only workloads) makes invisible;
//! * **additions** converge after one full window turnover: states the old
//!   catalog terminated — and objects its relevant-class filter dropped —
//!   cannot be resurrected retroactively, but every state born after the
//!   swap is judged (and every detection filtered) under the new catalog,
//!   so once the window has slid past the swap point the engine is
//!   indistinguishable from a fresh one.
//!
//! The differential suite (`tests/catalog_dynamic.rs`) pins both halves
//! down.
//!
//! [`add_query`]: QueryCatalog::add_query
//! [`remove_query`]: QueryCatalog::remove_query

use std::sync::{Arc, PoisonError, RwLock};

use tvq_common::{ClassId, Error, FxHashSet, QueryId, Result};
use tvq_query::{CnfEvaluator, CnfQuery};

/// One immutable version of the query workload: the evaluator (whose mask
/// slots are keyed for exactly this query set), the classes any query
/// mentions, and whether the Section 5.3 pruning strategy applies.
#[derive(Debug)]
pub struct CatalogSnapshot {
    version: u64,
    evaluator: Arc<CnfEvaluator>,
    relevant_classes: FxHashSet<ClassId>,
    geq_only: bool,
}

impl CatalogSnapshot {
    fn build(version: u64, queries: Vec<CnfQuery>) -> Self {
        let relevant_classes: FxHashSet<ClassId> =
            queries.iter().flat_map(|q| q.classes()).collect();
        let evaluator = Arc::new(CnfEvaluator::new(queries));
        let geq_only = evaluator.all_geq_only();
        CatalogSnapshot {
            version,
            evaluator,
            relevant_classes,
            geq_only,
        }
    }

    /// The snapshot's version (0 for the catalog an engine was built with;
    /// each swap increments it by one).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The evaluator for exactly this query set.
    pub fn evaluator(&self) -> &Arc<CnfEvaluator> {
        &self.evaluator
    }

    /// The registered queries.
    pub fn queries(&self) -> &[CnfQuery] {
        self.evaluator.queries()
    }

    /// Classes mentioned by at least one registered query; detections of
    /// any other class are dropped before MCOS generation (Section 3).
    pub fn relevant_classes(&self) -> &FxHashSet<ClassId> {
        &self.relevant_classes
    }

    /// Whether the ≥-only pruning strategy may terminate states under this
    /// catalog. Requires every query to be ≥-only (Proposition 1) **and**
    /// at least one query to exist — an empty catalog is vacuously ≥-only,
    /// but "no query is satisfiable" must keep states alive for queries
    /// added later, not terminate everything.
    pub fn prune_active(&self) -> bool {
        self.geq_only && !self.evaluator.is_empty()
    }
}

/// The shared cell a [`QueryCatalog`]'s owner and its pruner read the
/// current snapshot through. Readers clone the inner `Arc` (cheap) and
/// never hold the lock across real work.
pub type SharedCatalog = Arc<RwLock<Arc<CatalogSnapshot>>>;

/// The engine-side handle: owns the master query list, numbers versions,
/// and publishes snapshots. The engine is the cell's only writer, so it
/// also keeps a lock-free cached copy of the current snapshot for the
/// per-frame hot path.
#[derive(Debug)]
pub struct QueryCatalog {
    cell: SharedCatalog,
    current: Arc<CatalogSnapshot>,
    /// Version the catalog was seeded at (swaps applied *here* = version -
    /// seed; multi-feed workers seed lazily built engines at the fleet's
    /// current version).
    seed_version: u64,
}

impl QueryCatalog {
    /// Validates the queries (well-formed CNF, unique ids) and builds
    /// version `seed` of the catalog.
    pub fn new(queries: Vec<CnfQuery>, seed: u64) -> Result<Self> {
        let mut seen: FxHashSet<QueryId> = FxHashSet::default();
        for query in &queries {
            query.validate().map_err(Error::InvalidConfig)?;
            if !seen.insert(query.id) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate query id {:?}",
                    query.id
                )));
            }
        }
        let current = Arc::new(CatalogSnapshot::build(seed, queries));
        Ok(QueryCatalog {
            cell: Arc::new(RwLock::new(Arc::clone(&current))),
            current,
            seed_version: seed,
        })
    }

    /// Rebuilds a catalog from its persisted observable state: the query
    /// set at `version`, seeded so [`swaps`](Self::swaps) keeps counting
    /// from `seed_version` — a recovered engine reports the same swap count
    /// as one that never restarted.
    pub(crate) fn restore(queries: Vec<CnfQuery>, version: u64, seed_version: u64) -> Result<Self> {
        debug_assert!(seed_version <= version);
        let mut catalog = QueryCatalog::new(queries, version)?;
        catalog.seed_version = seed_version;
        Ok(catalog)
    }

    /// Replaces the whole query set and jumps straight to `version`,
    /// publishing through the *existing* shared cell (followers keep
    /// working). Used when a recovered engine must catch up with catalog
    /// swaps it missed while its worker was down: the version jump makes
    /// [`swaps`](Self::swaps) report the same count as an engine that
    /// applied every op live.
    pub(crate) fn force(&mut self, queries: Vec<CnfQuery>, version: u64) -> Result<()> {
        if version < self.current.version() {
            return Err(Error::InvalidConfig(format!(
                "cannot force catalog version {version} below current {}",
                self.current.version()
            )));
        }
        let mut seen: FxHashSet<QueryId> = FxHashSet::default();
        for query in &queries {
            query.validate().map_err(Error::InvalidConfig)?;
            if !seen.insert(query.id) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate query id {:?}",
                    query.id
                )));
            }
        }
        let next = Arc::new(CatalogSnapshot::build(version, queries));
        *self.cell.write().unwrap_or_else(PoisonError::into_inner) = Arc::clone(&next);
        self.current = next;
        Ok(())
    }

    /// The current snapshot (lock-free: the owner's cached copy).
    pub fn snapshot(&self) -> &Arc<CatalogSnapshot> {
        &self.current
    }

    /// The shared cell, for wiring a [`LivePruner`](crate::engine) or any
    /// other follower that must observe swaps.
    pub fn shared(&self) -> SharedCatalog {
        Arc::clone(&self.cell)
    }

    /// The current version.
    pub fn version(&self) -> u64 {
        self.current.version()
    }

    /// Swaps applied through *this* handle (version minus seed).
    pub fn swaps(&self) -> u64 {
        self.current.version() - self.seed_version
    }

    /// The smallest query id not yet in use (what [`add_query`] callers
    /// parsing textual queries should mint).
    ///
    /// [`add_query`]: Self::add_query
    pub fn next_query_id(&self) -> QueryId {
        QueryId(
            self.current
                .queries()
                .iter()
                .map(|q| q.id.0 + 1)
                .max()
                .unwrap_or(0),
        )
    }

    /// Registers a query, publishing a new catalog version. Fails (leaving
    /// the catalog untouched) if the query is malformed or its id is taken.
    pub fn add_query(&mut self, query: CnfQuery) -> Result<()> {
        query.validate().map_err(Error::InvalidConfig)?;
        if self.current.queries().iter().any(|q| q.id == query.id) {
            return Err(Error::InvalidConfig(format!(
                "query id {:?} is already registered",
                query.id
            )));
        }
        let mut queries = self.current.queries().to_vec();
        queries.push(query);
        self.publish(queries);
        Ok(())
    }

    /// Cancels a query by id, publishing a new catalog version. Fails
    /// (leaving the catalog untouched) if the id is unknown.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let before = self.current.queries().len();
        let queries: Vec<CnfQuery> = self
            .current
            .queries()
            .iter()
            .filter(|q| q.id != id)
            .cloned()
            .collect();
        if queries.len() == before {
            return Err(Error::InvalidConfig(format!("unknown query id {id:?}")));
        }
        self.publish(queries);
        Ok(())
    }

    fn publish(&mut self, queries: Vec<CnfQuery>) {
        let next = Arc::new(CatalogSnapshot::build(self.current.version() + 1, queries));
        // Snapshots are immutable, so a poisoned cell still holds a usable
        // Arc; recover the guard rather than cascade the panic.
        *self.cell.write().unwrap_or_else(PoisonError::into_inner) = Arc::clone(&next);
        self.current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_query::Condition;

    fn geq(id: u32, class: u16, n: u32) -> CnfQuery {
        CnfQuery::conjunction(
            QueryId(id),
            vec![Condition::at_least(tvq_common::ClassId(class), n)],
        )
    }

    #[test]
    fn swaps_version_and_rekey_the_evaluator() {
        let mut catalog = QueryCatalog::new(vec![geq(0, 1, 1)], 0).unwrap();
        assert_eq!(catalog.version(), 0);
        assert!(catalog.snapshot().prune_active());
        catalog.add_query(geq(1, 0, 2)).unwrap();
        assert_eq!(catalog.version(), 1);
        assert_eq!(catalog.snapshot().queries().len(), 2);
        assert_eq!(catalog.next_query_id(), QueryId(2));
        catalog.remove_query(QueryId(0)).unwrap();
        assert_eq!(catalog.version(), 2);
        assert_eq!(catalog.swaps(), 2);
        assert_eq!(catalog.snapshot().queries()[0].id, QueryId(1));
        // Relevant classes follow the surviving queries.
        assert!(!catalog
            .snapshot()
            .relevant_classes()
            .contains(&tvq_common::ClassId(1)));
    }

    #[test]
    fn followers_observe_swaps_through_the_shared_cell() {
        let mut catalog = QueryCatalog::new(vec![geq(0, 1, 1)], 0).unwrap();
        let cell = catalog.shared();
        catalog.add_query(geq(1, 1, 3)).unwrap();
        assert_eq!(cell.read().unwrap().version(), 1);
        assert_eq!(cell.read().unwrap().queries().len(), 2);
    }

    #[test]
    fn rejects_duplicates_and_unknown_removals() {
        let mut catalog = QueryCatalog::new(vec![geq(0, 1, 1)], 0).unwrap();
        assert!(catalog.add_query(geq(0, 0, 1)).is_err());
        assert!(catalog.remove_query(QueryId(9)).is_err());
        assert_eq!(catalog.version(), 0, "failed ops do not bump the version");
        assert!(QueryCatalog::new(vec![geq(0, 1, 1), geq(0, 0, 1)], 0).is_err());
    }

    #[test]
    fn empty_catalog_never_prunes() {
        let mut catalog = QueryCatalog::new(Vec::new(), 0).unwrap();
        assert!(!catalog.snapshot().prune_active());
        assert_eq!(catalog.next_query_id(), QueryId(0));
        catalog.add_query(geq(0, 1, 1)).unwrap();
        assert!(catalog.snapshot().prune_active());
        // Mixed polarity turns pruning back off; removal restores it.
        let le = CnfQuery::conjunction(
            QueryId(1),
            vec![Condition::at_most(tvq_common::ClassId(0), 2)],
        );
        catalog.add_query(le).unwrap();
        assert!(!catalog.snapshot().prune_active());
        catalog.remove_query(QueryId(1)).unwrap();
        assert!(catalog.snapshot().prune_active());
    }

    #[test]
    fn seeded_catalogs_count_swaps_from_their_seed() {
        let mut catalog = QueryCatalog::new(vec![geq(0, 1, 1)], 7).unwrap();
        assert_eq!(catalog.version(), 7);
        assert_eq!(catalog.swaps(), 0);
        catalog.remove_query(QueryId(0)).unwrap();
        assert_eq!(catalog.version(), 8);
        assert_eq!(catalog.swaps(), 1);
    }
}
