//! End-to-end temporal video query engine.
//!
//! This crate assembles the full architecture of the paper (Figure 2):
//!
//! ```text
//! video feed ──► object detection & tracking ──► VR(fid, id, class)
//!                       (tvq-video)                    │
//!                                                      ▼
//!                                        MCOS generation (tvq-core)
//!                                     NAIVE / MFS / SSG + pruning hook
//!                                                      │ Result State Set
//!                                                      ▼
//!                                      CNF query evaluation (tvq-query)
//!                                                      │
//!                                                      ▼
//!                                            QueryMatch per window
//! ```
//!
//! The central type is [`TemporalVideoQueryEngine`]: register CNF queries
//! (textual or structured), stream frames into it, and receive the matches of
//! every sliding window. [`pipeline::run_workload`] packages a complete run
//! with timing for the benchmark harness, and [`adaptive::choose_maintainer`]
//! picks MFS vs SSG from feed statistics following the trade-off the paper
//! establishes.
//!
//! For deployments serving many cameras at once, [`MultiFeedEngine`] (see
//! [`multi`]) shards feed-tagged frames across a worker pool, runs one
//! single-feed engine per feed, and merges per-feed results and metrics into
//! a deterministic feed-id-ordered report. Feed placement is a rebalanceable
//! [`ShardMap`]: a deterministic work-stealing scheduler migrates hot feeds
//! to idle workers at batch boundaries without changing any result.
//!
//! # Quickstart
//!
//! ```
//! use tvq_common::{ClassId, FrameId, FrameObjects, ObjectId, WindowSpec};
//! use tvq_engine::{EngineConfig, TemporalVideoQueryEngine};
//!
//! // "a car and a person together for at least 2 of the last 3 frames"
//! let config = EngineConfig::new(WindowSpec::new(3, 2).unwrap());
//! let mut engine = TemporalVideoQueryEngine::builder(config)
//!     .with_query_text("car >= 1 AND person >= 1")
//!     .unwrap()
//!     .build()
//!     .unwrap();
//!
//! let car = ClassId(1);
//! let person = ClassId(0);
//! for fid in 0..3u64 {
//!     let frame = FrameObjects::new(
//!         FrameId(fid),
//!         vec![(ObjectId(1), car), (ObjectId(2), person)],
//!     );
//!     let result = engine.observe(&frame).unwrap();
//!     if fid >= 1 {
//!         assert!(result.any());
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptive;
pub mod catalog;
pub mod config;
pub mod durable;
pub mod engine;
pub mod multi;
pub mod persist;
pub mod pipeline;
pub mod subscribe;

pub use adaptive::choose_maintainer;
pub use catalog::{CatalogSnapshot, QueryCatalog, SharedCatalog};
pub use config::{EngineConfig, MaintainerSelection, MultiFeedConfig};
pub use durable::RecoveryReport;
pub use engine::{EngineBuilder, FrameResult, TemporalVideoQueryEngine};
pub use multi::{
    FeedFrame, FeedFrameResult, FeedReport, MultiFeedBuilder, MultiFeedEngine, MultiFeedReport,
    SchedulingStats, ShardMap,
};
pub use persist::WalRecord;
pub use pipeline::{run_workload, RunReport};
pub use subscribe::{MatchEvent, SubscriberId, Subscription, SubscriptionHub};
