//! End-to-end runs with timing breakdowns.
//!
//! Helpers used by the examples and by the benchmark harness: run a query
//! workload over a structured relation with a given MCOS-generation strategy
//! and report how long each stage took, mirroring the measurements behind the
//! paper's figures.

use std::time::{Duration, Instant};

use tvq_common::{Result, VideoRelation, WindowSpec};
use tvq_core::{MaintainerKind, MaintenanceMetrics};
use tvq_query::CnfQuery;

use crate::config::EngineConfig;
use crate::engine::TemporalVideoQueryEngine;

/// Timing and outcome of one end-to-end run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy actually used (e.g. `"MFS"`, `"SSG_O"`).
    pub strategy: String,
    /// Number of frames processed.
    pub frames: usize,
    /// Total wall-clock time spent in MCOS generation and query evaluation.
    pub elapsed: Duration,
    /// Total number of query matches across all frames.
    pub total_matches: usize,
    /// Number of frames with at least one match.
    pub matching_frames: usize,
    /// Maintainer work counters.
    pub metrics: MaintenanceMetrics,
}

impl RunReport {
    /// Average processing time per frame.
    pub fn per_frame(&self) -> Duration {
        if self.frames == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.frames as u32
        }
    }
}

/// Runs a query workload over a relation with the given strategy and window,
/// measuring MCOS generation + query evaluation time (the quantity plotted in
/// Figures 4-9).
pub fn run_workload(
    relation: &VideoRelation,
    queries: &[CnfQuery],
    window: WindowSpec,
    kind: MaintainerKind,
    pruning: bool,
) -> Result<RunReport> {
    let config = EngineConfig::new(window)
        .with_maintainer(kind)
        .with_pruning(pruning);
    let mut builder =
        TemporalVideoQueryEngine::builder(config).with_registry(relation.registry().clone());
    for query in queries {
        builder = builder.with_query(query.clone());
    }
    let mut engine = builder.build()?;

    let start = Instant::now();
    let mut total_matches = 0usize;
    let mut matching_frames = 0usize;
    for frame in relation.frames() {
        let result = engine.observe(frame)?;
        if result.any() {
            matching_frames += 1;
        }
        total_matches += result.matches.len();
    }
    let elapsed = start.elapsed();
    Ok(RunReport {
        strategy: engine.strategy().to_owned(),
        frames: relation.num_frames(),
        elapsed,
        total_matches,
        matching_frames,
        metrics: engine.metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::{ClassId, QueryId};
    use tvq_query::Condition;
    use tvq_video::{generate, DatasetProfile};

    #[test]
    fn run_workload_reports_consistent_counts() {
        let relation = generate(&DatasetProfile::m2().truncated(150), 5);
        let queries = vec![CnfQuery::conjunction(
            QueryId(0),
            vec![Condition::at_least(ClassId(0), 2)],
        )];
        let window = WindowSpec::new(30, 20).unwrap();
        let report = run_workload(&relation, &queries, window, MaintainerKind::Ssg, false).unwrap();
        assert_eq!(report.frames, 150);
        assert_eq!(report.strategy, "SSG");
        assert!(report.matching_frames <= report.frames);
        assert!(report.total_matches >= report.matching_frames);
        assert!(report.metrics.frames_processed == 150);
        assert!(report.per_frame() <= report.elapsed);
    }

    #[test]
    fn all_strategies_agree_on_matching_frames() {
        let relation = generate(&DatasetProfile::d1().truncated(120), 9);
        let queries = vec![
            CnfQuery::conjunction(QueryId(0), vec![Condition::at_least(ClassId(1), 3)]),
            CnfQuery::conjunction(
                QueryId(1),
                vec![
                    Condition::at_least(ClassId(1), 2),
                    Condition::at_least(ClassId(0), 1),
                ],
            ),
        ];
        let window = WindowSpec::new(25, 15).unwrap();
        let reports: Vec<RunReport> = MaintainerKind::PRODUCTION
            .iter()
            .map(|&kind| run_workload(&relation, &queries, window, kind, false).unwrap())
            .collect();
        assert_eq!(reports[0].matching_frames, reports[1].matching_frames);
        assert_eq!(reports[1].matching_frames, reports[2].matching_frames);
        assert_eq!(reports[0].total_matches, reports[1].total_matches);
        assert_eq!(reports[1].total_matches, reports[2].total_matches);
    }

    #[test]
    fn pruning_does_not_change_results_but_reduces_states() {
        let relation = generate(&DatasetProfile::d2().truncated(120), 4);
        let queries = vec![CnfQuery::conjunction(
            QueryId(0),
            vec![Condition::at_least(ClassId(1), 6)],
        )];
        let window = WindowSpec::new(25, 15).unwrap();
        let unpruned =
            run_workload(&relation, &queries, window, MaintainerKind::Ssg, false).unwrap();
        let pruned = run_workload(&relation, &queries, window, MaintainerKind::Ssg, true).unwrap();
        assert_eq!(unpruned.total_matches, pruned.total_matches);
        assert_eq!(unpruned.matching_frames, pruned.matching_frames);
        assert!(pruned.metrics.states_terminated > 0);
        assert!(pruned.metrics.peak_live_states <= unpruned.metrics.peak_live_states);
    }
}
