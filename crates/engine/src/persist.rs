//! The engine's durable formats: WAL record bodies and the snapshot codec.
//!
//! The storage layer (`tvq-store`) frames, checksums and fsyncs *opaque*
//! byte strings; this module is where those bytes get their meaning. Two
//! formats live here:
//!
//! * **WAL records** — every state-changing engine operation (an observed
//!   frame, a query registration, a query cancellation) as a tagged body.
//!   Replaying the records after a snapshot, in sequence order, through the
//!   same code paths the live engine used reproduces its state exactly.
//! * **engine snapshots** (`TVQE`) — the complete engine at a WAL sequence
//!   boundary: configuration, class registry, class store, query catalog,
//!   object lifecycle, the maintainer's own versioned state blob (see
//!   [`StateMaintainer::snapshot_state`]), and an opaque caller sidecar
//!   (the multi-feed worker persists its per-feed tally there).
//!
//! Both formats are versioned through [`tvq_common::codec`] headers and
//! fail with clean [`Error::Codec`] / [`Error::Corrupt`] errors on version
//! skew or damage — corrupt state is *detected*, never silently replayed.
//!
//! [`StateMaintainer::snapshot_state`]: tvq_core::StateMaintainer::snapshot_state

use std::sync::{Arc, PoisonError, RwLock};

use tvq_common::codec::{Decoder, Encoder};
use tvq_common::{
    ClassId, ClassRegistry, ClassStore, Error, FrameId, FrameObjects, MemoConfig, ObjectId,
    QueryId, Result, SharedClassMap, WindowSpec,
};
use tvq_core::{CompactionPolicy, LiveBinding, MaintainerKind, ObjectLifecycle};
use tvq_query::{CmpOp, CnfQuery, Condition};

use crate::catalog::QueryCatalog;
use crate::config::{EngineConfig, MaintainerSelection};
use crate::engine::TemporalVideoQueryEngine;

/// Magic of the engine snapshot payload (inside the store's `TVQS` framing).
const MAGIC: [u8; 4] = *b"TVQE";
/// Version of the engine snapshot payload.
const VERSION: u32 = 1;

const RECORD_FRAME: u8 = 0;
const RECORD_ADD_QUERY: u8 = 1;
const RECORD_REMOVE_QUERY: u8 = 2;

/// One durable engine operation, decoded from a WAL record body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A frame of detections passed to `observe`.
    Frame(FrameObjects),
    /// A query registered mid-stream.
    AddQuery(CnfQuery),
    /// A query cancelled mid-stream.
    RemoveQuery(QueryId),
}

/// Encodes an observed frame as a WAL record body.
pub fn encode_frame_record(frame: &FrameObjects) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(16 + frame.classes.len() * 6);
    enc.put_u8(RECORD_FRAME);
    enc.put_u64(frame.fid.raw());
    enc.put_usize(frame.classes.len());
    for &(id, class) in &frame.classes {
        enc.put_u32(id.raw());
        enc.put_u16(class.raw());
    }
    enc.put_usize(frame.track_ends.len());
    for id in &frame.track_ends {
        enc.put_u32(id.raw());
    }
    enc.into_bytes()
}

/// Encodes a mid-stream query registration as a WAL record body.
pub fn encode_add_query_record(query: &CnfQuery) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(RECORD_ADD_QUERY);
    put_query(&mut enc, query);
    enc.into_bytes()
}

/// Encodes a mid-stream query cancellation as a WAL record body.
pub fn encode_remove_query_record(id: QueryId) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(RECORD_REMOVE_QUERY);
    enc.put_u32(id.0);
    enc.into_bytes()
}

/// Decodes a WAL record body written by one of the `encode_*_record`
/// functions. The body must parse exactly — trailing bytes are corruption.
pub fn decode_record(body: &[u8]) -> Result<WalRecord> {
    let mut dec = Decoder::new(body);
    let record = match dec.take_u8()? {
        RECORD_FRAME => {
            let fid = FrameId(dec.take_u64()?);
            let detections = dec.take_len()?;
            let mut classes = Vec::with_capacity(detections);
            for _ in 0..detections {
                let id = ObjectId(dec.take_u32()?);
                let class = ClassId(dec.take_u16()?);
                classes.push((id, class));
            }
            let ends = dec.take_len()?;
            let mut track_ends = Vec::with_capacity(ends);
            for _ in 0..ends {
                track_ends.push(ObjectId(dec.take_u32()?));
            }
            WalRecord::Frame(FrameObjects::new(fid, classes).with_track_ends(track_ends))
        }
        RECORD_ADD_QUERY => WalRecord::AddQuery(take_query(&mut dec)?),
        RECORD_REMOVE_QUERY => WalRecord::RemoveQuery(QueryId(dec.take_u32()?)),
        other => {
            return Err(Error::Codec(format!("unknown wal record tag {other}")));
        }
    };
    dec.finish()?;
    Ok(record)
}

fn put_query(enc: &mut Encoder, query: &CnfQuery) {
    enc.put_u32(query.id.0);
    enc.put_usize(query.clauses.len());
    for clause in &query.clauses {
        enc.put_usize(clause.len());
        for condition in clause {
            enc.put_u16(condition.class.raw());
            enc.put_u8(match condition.op {
                CmpOp::Le => 0,
                CmpOp::Eq => 1,
                CmpOp::Ge => 2,
            });
            enc.put_u32(condition.value);
        }
    }
}

fn take_query(dec: &mut Decoder<'_>) -> Result<CnfQuery> {
    let id = QueryId(dec.take_u32()?);
    let clause_count = dec.take_len()?;
    let mut clauses = Vec::with_capacity(clause_count);
    for _ in 0..clause_count {
        let condition_count = dec.take_len()?;
        let mut clause = Vec::with_capacity(condition_count);
        for _ in 0..condition_count {
            let class = ClassId(dec.take_u16()?);
            let op = match dec.take_u8()? {
                0 => CmpOp::Le,
                1 => CmpOp::Eq,
                2 => CmpOp::Ge,
                other => {
                    return Err(Error::Codec(format!("unknown comparison tag {other}")));
                }
            };
            clause.push(Condition::new(class, op, dec.take_u32()?));
        }
        clauses.push(clause);
    }
    Ok(CnfQuery::new(id, clauses))
}

/// Magic of the fleet-catalog payload (`TVQF`): the multi-feed scheduler's
/// master registry, query set and catalog version.
const FLEET_MAGIC: [u8; 4] = *b"TVQF";
/// Version of the fleet-catalog payload.
const FLEET_VERSION: u32 = 1;

/// Serializes the multi-feed scheduler's master catalog. Written *ahead*
/// of each broadcast (and at fleet build), so after any crash the master
/// version is at least every feed's — restart fast-forwards recovered
/// feeds to the master, never the reverse.
pub(crate) fn encode_fleet_catalog(
    registry: &ClassRegistry,
    queries: &[CnfQuery],
    version: u64,
) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(256);
    enc.put_header(FLEET_MAGIC, FLEET_VERSION);
    enc.put_u64(version);
    enc.put_usize(registry.len());
    for (_, label) in registry.iter() {
        enc.put_str(label.as_str());
    }
    enc.put_usize(queries.len());
    for query in queries {
        put_query(&mut enc, query);
    }
    enc.into_bytes()
}

/// Rebuilds the fleet master catalog persisted by
/// [`encode_fleet_catalog`]: `(registry, queries, version)`.
pub(crate) fn decode_fleet_catalog(payload: &[u8]) -> Result<(ClassRegistry, Vec<CnfQuery>, u64)> {
    let mut dec = Decoder::new(payload);
    dec.check_header(FLEET_MAGIC, FLEET_VERSION)?;
    let version = dec.take_u64()?;
    let labels = dec.take_len()?;
    let mut registry = ClassRegistry::new();
    for index in 0..labels {
        let id = registry.register(dec.take_str()?);
        if id.raw() as usize != index {
            return Err(Error::Corrupt(format!(
                "fleet registry label {index} re-registered as class {}",
                id.raw()
            )));
        }
    }
    let count = dec.take_len()?;
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        queries.push(take_query(&mut dec)?);
    }
    dec.finish()?;
    Ok((registry, queries, version))
}

/// Serializes the complete engine state as a `TVQE` snapshot payload.
/// `sidecar` is the caller-owned opaque blob persisted alongside (empty
/// when unused); it rides in the snapshot so worker-level state (e.g. the
/// multi-feed per-feed tally) survives restarts with the engine it
/// describes.
pub(crate) fn encode_engine(engine: &TemporalVideoQueryEngine, sidecar: &[u8]) -> Result<Vec<u8>> {
    let mut enc = Encoder::with_capacity(4096);
    enc.put_header(MAGIC, VERSION);

    // Configuration.
    let config = &engine.config;
    enc.put_usize(config.window.window());
    enc.put_usize(config.window.duration());
    match config.maintainer {
        MaintainerSelection::Auto => enc.put_u8(0),
        MaintainerSelection::Fixed(kind) => {
            enc.put_u8(1);
            enc.put_u8(kind.codec_tag());
        }
    }
    // The *resolved* strategy: Auto selection depends on feed statistics
    // that are not persisted, so recovery rebuilds the maintainer that
    // actually ran, not whatever Auto would re-pick.
    enc.put_u8(engine.kind.codec_tag());
    enc.put_bool(config.pruning);
    match &config.compaction {
        None => enc.put_bool(false),
        Some(policy) => {
            enc.put_bool(true);
            enc.put_u64(policy.check_interval);
            enc.put_f64(policy.max_live_ratio);
            enc.put_usize(policy.min_interned);
        }
    }
    enc.put_u32(config.memo.initial_bits);
    enc.put_u32(config.memo.max_bits);
    enc.put_u32(config.memo.sample_window);
    enc.put_f64(config.memo.grow_miss_rate);

    // Class registry (labels in ClassId order).
    enc.put_usize(engine.registry.len());
    for (_, label) in engine.registry.iter() {
        enc.put_str(label.as_str());
    }

    // Class store: sorted live entries plus the alias cursor and the
    // eviction counter (both monotone — resetting either would re-mint
    // identifiers persisted bindings already carry).
    {
        let store = engine
            .lifecycle
            .store()
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let entries = store.snapshot();
        enc.put_usize(entries.len());
        for (id, class, refs) in entries {
            enc.put_u32(id.raw());
            enc.put_u16(class.raw());
            enc.put_u32(refs);
        }
        enc.put_u32(store.alias_floor());
        enc.put_u64(store.evictions());
    }

    // Query catalog: version, seed and the registered queries. Persisting
    // the seed keeps `catalog_swaps` (version - seed) exact across restarts.
    enc.put_u64(engine.catalog.version());
    enc.put_u64(engine.catalog.version() - engine.catalog.swaps());
    let queries = engine.catalog.snapshot().queries();
    enc.put_usize(queries.len());
    for query in queries {
        put_query(&mut enc, query);
    }

    // Object lifecycle: live bindings, tracked internals, alias
    // translations, and the three monotone counters.
    let live = engine.lifecycle.live_bindings();
    enc.put_usize(live.len());
    for (external, binding) in live {
        enc.put_u32(external.raw());
        enc.put_u32(binding.internal.raw());
        enc.put_u16(binding.class.raw());
        enc.put_u64(binding.generation);
    }
    let registered = engine.lifecycle.registered_ids();
    enc.put_usize(registered.len());
    for id in registered {
        enc.put_u32(id.raw());
    }
    let aliases = engine.lifecycle.alias_entries();
    enc.put_usize(aliases.len());
    for (alias, external) in aliases {
        enc.put_u32(alias.raw());
        enc.put_u32(external.raw());
    }
    enc.put_u64(engine.lifecycle.generations_started());
    enc.put_u64(engine.lifecycle.retired_total());
    enc.put_u64(engine.lifecycle.tracks_ended());

    // Engine-side cursor.
    enc.put_u64(engine.frames_since_compaction_check);

    // The maintainer's own versioned blob, length-prefixed so its format
    // can evolve independently of the envelope.
    let mut blob = Encoder::with_capacity(4096);
    engine.maintainer.snapshot_state(&mut blob)?;
    enc.put_bytes(blob.as_bytes());

    enc.put_bytes(sidecar);
    Ok(enc.into_bytes())
}

/// Rebuilds an engine from a `TVQE` snapshot payload, returning it together
/// with the persisted sidecar. The engine comes back *without* a durability
/// attachment — `recover` wires that up after replaying the WAL tail.
pub(crate) fn restore_engine(payload: &[u8]) -> Result<(TemporalVideoQueryEngine, Vec<u8>)> {
    let mut dec = Decoder::new(payload);
    dec.check_header(MAGIC, VERSION)?;

    // Configuration.
    let window = dec.take_usize()?;
    let duration = dec.take_usize()?;
    let window = WindowSpec::new(window, duration)
        .map_err(|e| Error::Corrupt(format!("snapshot window spec: {e}")))?;
    let maintainer = match dec.take_u8()? {
        0 => MaintainerSelection::Auto,
        1 => MaintainerSelection::Fixed(MaintainerKind::from_codec_tag(dec.take_u8()?)?),
        other => {
            return Err(Error::Codec(format!("unknown selection tag {other}")));
        }
    };
    let kind = MaintainerKind::from_codec_tag(dec.take_u8()?)?;
    let pruning = dec.take_bool()?;
    let compaction = if dec.take_bool()? {
        Some(CompactionPolicy {
            check_interval: dec.take_u64()?,
            max_live_ratio: dec.take_f64()?,
            min_interned: dec.take_usize()?,
        })
    } else {
        None
    };
    let memo = MemoConfig {
        initial_bits: dec.take_u32()?,
        max_bits: dec.take_u32()?,
        sample_window: dec.take_u32()?,
        grow_miss_rate: dec.take_f64()?,
    };
    let config = EngineConfig {
        window,
        maintainer,
        pruning,
        compaction,
        memo,
    };

    // Class registry: labels registered in order reproduce their ids.
    let labels = dec.take_len()?;
    let mut registry = ClassRegistry::new();
    for index in 0..labels {
        let id = registry.register(dec.take_str()?);
        if id.raw() as usize != index {
            return Err(Error::Corrupt(format!(
                "registry label {index} re-registered as class {}",
                id.raw()
            )));
        }
    }

    // Class store.
    let entry_count = dec.take_len()?;
    let mut entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let id = ObjectId(dec.take_u32()?);
        let class = ClassId(dec.take_u16()?);
        let refs = dec.take_u32()?;
        entries.push((id, class, refs));
    }
    let alias_floor = dec.take_u32()?;
    let evictions = dec.take_u64()?;
    let classes: SharedClassMap = Arc::new(RwLock::new(ClassStore::restore(
        entries,
        alias_floor,
        evictions,
    )));

    // Query catalog.
    let version = dec.take_u64()?;
    let seed_version = dec.take_u64()?;
    if seed_version > version {
        return Err(Error::Corrupt(format!(
            "catalog seed {seed_version} exceeds version {version}"
        )));
    }
    let query_count = dec.take_len()?;
    let mut queries = Vec::with_capacity(query_count);
    for _ in 0..query_count {
        queries.push(take_query(&mut dec)?);
    }
    let catalog = QueryCatalog::restore(queries, version, seed_version)
        .map_err(|e| Error::Corrupt(format!("snapshot catalog: {e}")))?;

    // Object lifecycle.
    let live_count = dec.take_len()?;
    let mut live = Vec::with_capacity(live_count);
    for _ in 0..live_count {
        let external = ObjectId(dec.take_u32()?);
        let binding = LiveBinding {
            internal: ObjectId(dec.take_u32()?),
            class: ClassId(dec.take_u16()?),
            generation: dec.take_u64()?,
        };
        live.push((external, binding));
    }
    let registered_count = dec.take_len()?;
    let mut registered = Vec::with_capacity(registered_count);
    for _ in 0..registered_count {
        registered.push(ObjectId(dec.take_u32()?));
    }
    let alias_count = dec.take_len()?;
    let mut aliases = Vec::with_capacity(alias_count);
    for _ in 0..alias_count {
        let alias = ObjectId(dec.take_u32()?);
        let external = ObjectId(dec.take_u32()?);
        aliases.push((alias, external));
    }
    let generations = dec.take_u64()?;
    let retired_total = dec.take_u64()?;
    let tracks_ended = dec.take_u64()?;

    let frames_since_compaction_check = dec.take_u64()?;

    let mut engine =
        TemporalVideoQueryEngine::assemble(config, registry, catalog, kind, Arc::clone(&classes));
    engine.lifecycle = ObjectLifecycle::restore(
        classes,
        live,
        registered,
        aliases,
        generations,
        retired_total,
        tracks_ended,
    );
    engine.frames_since_compaction_check = frames_since_compaction_check;

    let blob = dec.take_bytes()?;
    let mut maintainer_dec = Decoder::new(blob);
    engine.maintainer.restore_state(&mut maintainer_dec)?;
    maintainer_dec.finish()?;

    let sidecar = dec.take_bytes()?.to_vec();
    dec.finish()?;
    Ok((engine, sidecar))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::ObjectSet;

    fn frame(fid: u64, detections: &[(u32, u16)], ends: &[u32]) -> FrameObjects {
        FrameObjects::new(
            FrameId(fid),
            detections
                .iter()
                .map(|&(id, class)| (ObjectId(id), ClassId(class)))
                .collect(),
        )
        .with_track_ends(ends.iter().map(|&id| ObjectId(id)).collect())
    }

    #[test]
    fn wal_records_round_trip() {
        let records = [
            WalRecord::Frame(frame(7, &[(1, 1), (2, 0)], &[9])),
            WalRecord::Frame(frame(8, &[], &[])),
            WalRecord::AddQuery(CnfQuery::new(
                QueryId(3),
                vec![
                    vec![
                        Condition::at_least(ClassId(1), 2),
                        Condition::at_most(ClassId(0), 1),
                    ],
                    vec![Condition::exactly(ClassId(2), 4)],
                ],
            )),
            WalRecord::RemoveQuery(QueryId(11)),
        ];
        for record in &records {
            let body = match record {
                WalRecord::Frame(f) => encode_frame_record(f),
                WalRecord::AddQuery(q) => encode_add_query_record(q),
                WalRecord::RemoveQuery(id) => encode_remove_query_record(*id),
            };
            assert_eq!(&decode_record(&body).unwrap(), record);
        }
    }

    #[test]
    fn frame_record_rebuilds_the_object_set() {
        let original = frame(3, &[(5, 1), (2, 0), (5, 1)], &[]);
        let body = encode_frame_record(&original);
        let WalRecord::Frame(decoded) = decode_record(&body).unwrap() else {
            panic!("frame record expected");
        };
        assert_eq!(decoded.objects, ObjectSet::from_raw([2, 5]));
        assert_eq!(decoded, original);
    }

    #[test]
    fn engine_snapshot_round_trips_mid_stream() {
        use tvq_core::CompactionPolicy;

        let build = || {
            TemporalVideoQueryEngine::builder(
                EngineConfig::new(WindowSpec::new(6, 3).unwrap())
                    .with_compaction(Some(CompactionPolicy::every(4))),
            )
            .with_query_text("car >= 1 AND person >= 1")
            .unwrap()
            .build()
            .unwrap()
        };
        let mut engine = build();
        engine.add_query_text("truck >= 2").unwrap();
        let frames: Vec<FrameObjects> = (0..24)
            .map(|i| {
                let ends: &[u32] = if i % 7 == 0 { &[2] } else { &[] };
                frame(i, &[(i as u32 % 4 + 1, 1), (9, 0), (i as u32 % 3, 2)], ends)
            })
            .collect();
        for f in &frames[..15] {
            engine.observe_applied(f).unwrap();
        }

        let payload = encode_engine(&engine, b"tally").unwrap();
        let (mut restored, sidecar) = restore_engine(&payload).unwrap();
        assert_eq!(sidecar, b"tally");
        assert_eq!(restored.catalog_version(), engine.catalog_version());
        assert_eq!(restored.metrics().catalog_swaps, 1);
        assert_eq!(restored.strategy(), engine.strategy());
        assert_eq!(restored.live_states(), engine.live_states());

        // The restored engine continues frame-for-frame identically,
        // through compaction epochs and alias-generation bookkeeping.
        for f in &frames[15..] {
            assert_eq!(
                restored.observe_applied(f).unwrap(),
                engine.observe_applied(f).unwrap(),
                "divergence at frame {}",
                f.fid
            );
        }
        let (a, b) = (restored.metrics(), engine.metrics());
        assert_eq!(a.frames_processed, b.frames_processed);
        assert_eq!(a.generations_started, b.generations_started);
        assert_eq!(a.objects_retired, b.objects_retired);
        assert_eq!(a.compactions, b.compactions);
    }

    #[test]
    fn snapshot_version_skew_fails_cleanly() {
        let mut enc = Encoder::new();
        enc.put_header(MAGIC, VERSION + 1);
        let err = restore_engine(&enc.into_bytes()).unwrap_err();
        assert!(matches!(err, Error::Codec(_)), "{err}");
    }

    #[test]
    fn damaged_records_fail_cleanly() {
        let mut body = encode_frame_record(&frame(1, &[(1, 1)], &[]));
        body.push(0xEE); // trailing garbage
        assert!(decode_record(&body).is_err());
        assert!(decode_record(&[9]).is_err(), "unknown tag");
        assert!(decode_record(&[]).is_err(), "empty body");
        let add = encode_add_query_record(&CnfQuery::conjunction(
            QueryId(0),
            vec![Condition::at_least(ClassId(0), 1)],
        ));
        assert!(decode_record(&add[..add.len() - 1]).is_err(), "truncated");
    }

    /// Property coverage of the snapshot and fleet codecs: arbitrary
    /// workloads — churny detections, track ends that recycle ids across
    /// alias generations, live catalog edits, dense compaction — must
    /// round-trip through the `TVQE` codec into an engine that continues
    /// frame-for-frame identically, and arbitrary or truncated bytes must
    /// fail cleanly, never panic.
    mod prop {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;
        use proptest::strategy::Strategy;

        /// Raw material for one workload step: a tag selecting the step
        /// kind plus the fields every kind could need (the body builds the
        /// step, since the vendored proptest has no combinators).
        type RawStep = ((u8, u16, u32, usize), Vec<(u32, u16)>, Vec<u32>);

        /// Object ids come from a small pool on purpose: an ended id is
        /// frequently re-detected, so restored snapshots must carry the
        /// alias-generation bookkeeping, not just the live window.
        fn raw_steps() -> impl Strategy<Value = Vec<RawStep>> {
            vec(
                (
                    (0u8..10, 0u16..4, 1u32..4, 0usize..8),
                    vec((0u32..12, 0u16..4), 0..5),
                    vec(0u32..12, 0..3),
                ),
                1..60,
            )
        }

        /// Replays the raw steps against a fresh engine: tags 0..8 are
        /// frames, 8 adds a single-condition query, 9 removes a live one.
        fn run_workload(
            window: usize,
            duration_raw: usize,
            every_raw: u64,
            steps: &[RawStep],
        ) -> TemporalVideoQueryEngine {
            let duration = 1 + duration_raw % window;
            let every = (every_raw > 0).then(|| CompactionPolicy::every(every_raw));
            let mut engine = TemporalVideoQueryEngine::builder(
                EngineConfig::new(WindowSpec::new(window, duration).unwrap())
                    .with_compaction(every),
            )
            .with_query(CnfQuery::conjunction(
                QueryId(0),
                vec![Condition::at_least(ClassId(1), 1)],
            ))
            .build()
            .unwrap();
            let mut live = vec![QueryId(0)];
            let mut next = 1u32;
            let mut fid = 0u64;
            for ((tag, class, threshold, pick), detections, ends) in steps {
                match tag {
                    0..=7 => {
                        engine.observe(&frame(fid, detections, ends)).unwrap();
                        fid += 1;
                    }
                    8 => {
                        engine
                            .add_query(CnfQuery::conjunction(
                                QueryId(next),
                                vec![Condition::at_least(ClassId(*class), *threshold)],
                            ))
                            .unwrap();
                        live.push(QueryId(next));
                        next += 1;
                    }
                    _ => {
                        if !live.is_empty() {
                            let id = live.remove(pick % live.len());
                            engine.remove_query(id).unwrap();
                        }
                    }
                }
            }
            engine
        }

        /// Raw material for one CNF query: an id plus clauses of
        /// `(class, value, op)` triples.
        type RawQuery = (u32, Vec<Vec<(u16, u32, u8)>>);

        fn raw_queries() -> impl Strategy<Value = Vec<RawQuery>> {
            vec(
                (0u32..1000, vec(vec((0u16..6, 0u32..5, 0u8..3), 1..4), 1..4)),
                0..5,
            )
        }

        fn build_query((id, clauses): &RawQuery) -> CnfQuery {
            CnfQuery::new(
                QueryId(*id),
                clauses
                    .iter()
                    .map(|clause| {
                        clause
                            .iter()
                            .map(|&(class, value, op)| match op {
                                0 => Condition::at_least(ClassId(class), value),
                                1 => Condition::at_most(ClassId(class), value),
                                _ => Condition::exactly(ClassId(class), value),
                            })
                            .collect()
                    })
                    .collect(),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn arbitrary_engine_states_round_trip(
                window in 2usize..9,
                duration_raw in 0usize..8,
                every_raw in 0u64..6,
                steps in raw_steps(),
                sidecar in vec(0u8..=255, 0..16),
            ) {
                let mut engine = run_workload(window, duration_raw, every_raw, &steps);
                let payload = encode_engine(&engine, &sidecar).unwrap();
                let (mut restored, got) = restore_engine(&payload).unwrap();
                prop_assert_eq!(got, sidecar);
                prop_assert_eq!(restored.catalog_version(), engine.catalog_version());
                prop_assert_eq!(restored.live_states(), engine.live_states());
                prop_assert_eq!(restored.strategy(), engine.strategy());

                // The restored engine continues frame-for-frame identically
                // through compaction epochs and recycled alias generations.
                let fid0 = engine.metrics().frames_processed;
                for i in 0..10u64 {
                    let ends: &[u32] = if i % 3 == 2 { &[11] } else { &[] };
                    let f = frame(
                        fid0 + i,
                        &[(i as u32 % 5, 1), ((i as u32 + 3) % 7, (i % 4) as u16), (11, 0)],
                        ends,
                    );
                    prop_assert_eq!(
                        restored.observe(&f).unwrap(),
                        engine.observe(&f).unwrap(),
                        "divergence at continuation frame {}",
                        i
                    );
                }
                let (a, b) = (restored.metrics(), engine.metrics());
                prop_assert_eq!(a.frames_processed, b.frames_processed);
                prop_assert_eq!(a.generations_started, b.generations_started);
                prop_assert_eq!(a.objects_retired, b.objects_retired);
                prop_assert_eq!(a.compactions, b.compactions);
            }

            #[test]
            fn fleet_catalogs_round_trip(
                labels in vec(vec(0u8..26, 1..8), 0..6),
                queries_raw in raw_queries(),
                version in any::<u64>(),
            ) {
                let mut registry = ClassRegistry::new();
                for label in &labels {
                    let label: String =
                        label.iter().map(|&b| (b + b'a') as char).collect();
                    registry.register(label);
                }
                let queries: Vec<CnfQuery> = queries_raw.iter().map(build_query).collect();
                let payload = encode_fleet_catalog(&registry, &queries, version);
                let (decoded_registry, decoded_queries, decoded_version) =
                    decode_fleet_catalog(&payload).unwrap();
                prop_assert_eq!(decoded_version, version);
                prop_assert_eq!(decoded_queries, queries);
                prop_assert_eq!(decoded_registry.len(), registry.len());
                for ((id, label), (got_id, got_label)) in
                    registry.iter().zip(decoded_registry.iter())
                {
                    prop_assert_eq!(id, got_id);
                    prop_assert_eq!(label, got_label);
                }
            }

            #[test]
            fn decoders_never_panic_on_garbage(bytes in vec(0u8..=255, 0..256)) {
                let _ = restore_engine(&bytes);
                let _ = decode_record(&bytes);
                let _ = decode_fleet_catalog(&bytes);
            }

            #[test]
            fn truncated_snapshots_fail_cleanly(
                window in 2usize..9,
                duration_raw in 0usize..8,
                every_raw in 0u64..6,
                steps in raw_steps(),
                cut_raw in any::<u64>(),
            ) {
                let engine = run_workload(window, duration_raw, every_raw, &steps);
                let payload = encode_engine(&engine, b"tally").unwrap();
                let cut = (cut_raw % payload.len() as u64) as usize;
                prop_assert!(restore_engine(&payload[..cut]).is_err());
            }
        }
    }
}
