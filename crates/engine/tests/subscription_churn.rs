//! Churn tests for [`SubscriptionHub`]: sustained publish/poll/retract
//! interleavings against mismatched consumer speeds. The unit tests in
//! `subscribe.rs` cover each rule pointwise; these runs check the rules
//! *compose* — drop-oldest ordering with retractions mixed in, global
//! sequence monotonicity observed through several independent cursors, and
//! exact conservation of the enqueued/delivered/dropped/purged accounting
//! over hundreds of events.

use std::sync::Arc;

use tvq_common::{FeedId, FrameId, FxHashSet, ObjectSet, QueryId};
use tvq_engine::{MatchEvent, SubscriptionHub};
use tvq_query::QueryMatch;

fn matched(query: u32, object: u32) -> QueryMatch {
    QueryMatch {
        query: QueryId(query),
        objects: ObjectSet::from_raw([object]),
        frames: Arc::from([FrameId(0)]),
    }
}

fn filter(ids: &[u32]) -> Option<FxHashSet<QueryId>> {
    Some(ids.iter().map(|&q| QueryId(q)).collect())
}

/// Drop-oldest under overflow, with a retraction landing mid-stream: the
/// queue must hold the newest accepted events in order, never resurrect a
/// purged query, and count purges as retraction (not as backpressure
/// drops).
#[test]
fn drop_oldest_ordering_survives_interleaved_retraction() {
    let mut hub = SubscriptionHub::new();
    let slow = hub.subscribe(3, None);

    // Six events, alternating queries 0 and 1: seqs 0..6. Capacity 3 keeps
    // seqs 3,4,5 and counts 3 backpressure drops.
    for i in 0..6u32 {
        hub.publish(FeedId(0), FrameId(i as u64), &[matched(i % 2, i)]);
    }
    assert_eq!(hub.subscription(slow).unwrap().dropped(), 3);

    // Query 1 is cancelled: its queued event (seq 5... seqs 3,4,5 carry
    // queries 1,0,1) vanishes from the queue, while the dropped counter
    // stays at 3 — retraction is not backpressure.
    hub.retract_query(QueryId(1));
    let sub = hub.subscription(slow).unwrap();
    assert_eq!(sub.queued(), 1, "seqs 3 and 5 purged, seq 4 remains");
    assert_eq!(sub.dropped(), 3);

    // More query-0 traffic overflows again; order stays strictly by seq.
    for i in 6..10u32 {
        hub.publish(FeedId(0), FrameId(i as u64), &[matched(0, i)]);
    }
    let events = hub.poll(slow, usize::MAX).unwrap();
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![7, 8, 9], "newest three, oldest (4, 6) dropped");
    assert!(events.iter().all(|e| e.matched.query == QueryId(0)));
    assert_eq!(hub.subscription(slow).unwrap().dropped(), 5);
}

/// Sequence numbers are hub-global and strictly monotone as seen by every
/// subscriber, whatever its filter, capacity, or polling cadence — and a
/// subscriber's seq gaps are exactly its filter skips plus its drops.
#[test]
fn global_sequence_is_monotone_across_subscribers_and_polls() {
    let mut hub = SubscriptionHub::new();
    let fast_all = hub.subscribe(256, None);
    let slow_all = hub.subscribe(4, None);
    let only_q2 = hub.subscribe(256, filter(&[2]));

    let mut observed: Vec<Vec<Arc<MatchEvent>>> = vec![Vec::new(); 3];
    for round in 0..60u32 {
        let batch: Vec<QueryMatch> = (0..3).map(|q| matched(q, round)).collect();
        hub.publish(FeedId(1), FrameId(round as u64), &batch);
        // The fast subscriber polls every round, the slow one every 8th,
        // the filtered one every 3rd — three unsynchronised cursors.
        if round % 8 == 7 {
            observed[1].extend(hub.poll(slow_all, usize::MAX).unwrap());
        }
        if round % 3 == 2 {
            observed[2].extend(hub.poll(only_q2, usize::MAX).unwrap());
        }
        observed[0].extend(hub.poll(fast_all, usize::MAX).unwrap());
    }
    observed[0].extend(hub.poll(fast_all, usize::MAX).unwrap());
    observed[1].extend(hub.poll(slow_all, usize::MAX).unwrap());
    observed[2].extend(hub.poll(only_q2, usize::MAX).unwrap());

    for (who, events) in observed.iter().enumerate() {
        for pair in events.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "subscriber {who} saw seq {} then {}",
                pair[0].seq,
                pair[1].seq
            );
        }
    }
    // The never-overflowing full subscriber saw *every* seq exactly once.
    let full: Vec<u64> = observed[0].iter().map(|e| e.seq).collect();
    assert_eq!(full, (0..180u64).collect::<Vec<_>>());
    // The filtered subscriber saw exactly the query-2 events (every third
    // seq), also gap-free: its capacity never overflowed.
    let filtered: Vec<u64> = observed[2].iter().map(|e| e.seq).collect();
    assert_eq!(
        filtered,
        (0..180u64).filter(|s| s % 3 == 2).collect::<Vec<_>>()
    );
    assert_eq!(hub.subscription(only_q2).unwrap().dropped(), 0);
    // The slow subscriber's loss is visible as gaps and equals its counter.
    let slow_seen = observed[1].len() as u64;
    let slow_dropped = hub.subscription(slow_all).unwrap().dropped();
    assert_eq!(slow_seen + slow_dropped, 180, "every event seen or counted");
    assert!(slow_dropped > 0, "the cadence must actually overflow");
}

/// Conservation over a long churn run with subscribe/unsubscribe mixed in:
/// for every subscriber, enqueued = delivered + dropped + retract-purged +
/// still-queued; and the hub totals agree with the per-subscriber sums.
#[test]
fn accounting_is_conserved_under_churn() {
    let mut hub = SubscriptionHub::new();
    let a = hub.subscribe(7, None);
    let b = hub.subscribe(3, filter(&[0, 1]));
    let mut enqueued_total = 0usize;
    let mut published_total = 0u64;
    let mut delivered = [0u64; 2];
    let mut purged = [0u64; 2];

    for round in 0..200u32 {
        let batch: Vec<QueryMatch> = (0..=(round % 3)).map(|q| matched(q, round)).collect();
        published_total += batch.len() as u64;
        enqueued_total += hub.publish(FeedId(0), FrameId(round as u64), &batch);
        if round % 11 == 10 {
            delivered[0] += hub.poll(a, 5).unwrap().len() as u64;
        }
        if round % 17 == 16 {
            delivered[1] += hub.poll(b, usize::MAX).unwrap().len() as u64;
        }
        if round == 100 {
            // Cancel query 1 mid-run; note what each queue loses to the
            // purge so the books still balance.
            for (i, id) in [a, b].into_iter().enumerate() {
                purged[i] += hub.subscription(id).unwrap().queued() as u64;
            }
            hub.retract_query(QueryId(1));
            for (i, id) in [a, b].into_iter().enumerate() {
                purged[i] -= hub.subscription(id).unwrap().queued() as u64;
            }
        }
    }

    let mut per_sub_enqueued = 0u64;
    for (i, id) in [a, b].into_iter().enumerate() {
        let sub = hub.subscription(id).unwrap();
        assert_eq!(sub.delivered(), delivered[i]);
        let accounted = sub.delivered() + sub.dropped() + purged[i] + sub.queued() as u64;
        per_sub_enqueued += accounted;
    }
    assert_eq!(
        per_sub_enqueued, enqueued_total as u64,
        "every enqueued event is delivered, dropped, purged, or still queued"
    );
    // Hub-level counters agree: published counts events (not fan-out),
    // total_dropped only counts live subscribers — unsubscribe forgets.
    assert_eq!(hub.published(), published_total);
    let live_drop_sum: u64 = [a, b]
        .into_iter()
        .map(|id| hub.subscription(id).unwrap().dropped())
        .sum();
    assert_eq!(hub.total_dropped(), live_drop_sum);
    hub.unsubscribe(a).unwrap();
    assert_eq!(
        hub.total_dropped(),
        hub.subscription(b).unwrap().dropped(),
        "an unsubscribed queue's drop count leaves the hub total"
    );
}
