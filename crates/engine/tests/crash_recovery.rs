//! Crash-recovery differential suite (ISSUE 9 acceptance criterion).
//!
//! A fixed script of durable operations — frames with track ends, a
//! mid-stream query registration, a mid-stream cancellation — runs against
//! a [`MemDisk`] through [`FaultIo`](tvq_store::FaultIo), which kills the
//! "process" at every mutating IO operation in turn (WAL appends and
//! fsyncs, segment rotations, snapshot temp-writes / renames / directory
//! syncs, WAL prunes), under each [`TornTail`] policy for the unsynced
//! suffix. After each injected crash the engine is rebuilt with
//! [`TemporalVideoQueryEngine::recover`] from the clean post-reboot view of
//! the same disk, resumed from the durable cursor, and the *complete*
//! transcript — every frame result, the final catalog version, the final
//! metrics — must be identical to a run that never crashed.
//!
//! Two invariants carry the suite:
//!
//! * **acknowledged implies durable**: every operation the crashed run saw
//!   an `Ok` for must be reflected in the recovered state;
//! * **durable prefix**: the recovered state corresponds to an exact
//!   prefix of the script — at most one operation past the last
//!   acknowledged one (the fsync-before-ack ambiguity window).
//!
//! Corruption beyond crash semantics (bit flips) is covered separately:
//! recovery either falls back to an older intact snapshot or fails with a
//! clean error — it never silently replays damaged state.

use std::path::Path;

use tvq_common::{ClassId, FrameId, FrameObjects, ObjectId, QueryId, WindowSpec};
use tvq_core::{CompactionPolicy, MaintenanceMetrics};
use tvq_engine::{EngineConfig, FrameResult, TemporalVideoQueryEngine};
use tvq_query::{CnfQuery, Condition};
use tvq_store::{MemDisk, SharedIo, TornTail};

const ROTATE_BYTES: usize = 96;

/// One durable operation of the script.
#[derive(Debug, Clone)]
enum Op {
    Frame(FrameObjects),
    Add(CnfQuery),
    Remove(QueryId),
}

fn frame(fid: u64, detections: &[(u32, u16)], ends: &[u32]) -> FrameObjects {
    FrameObjects::new(
        FrameId(fid),
        detections
            .iter()
            .map(|&(id, class)| (ObjectId(id), ClassId(class)))
            .collect(),
    )
    .with_track_ends(ends.iter().map(|&id| ObjectId(id)).collect())
}

fn geq(id: u32, class: u16, n: u32) -> CnfQuery {
    CnfQuery::conjunction(QueryId(id), vec![Condition::at_least(ClassId(class), n)])
}

/// The scripted workload: 20 frames with churn in classes and track ends,
/// a query added at position 7 and one removed at position 15. Dense
/// compaction (`every(3)`) makes several snapshot epochs land inside it.
fn script() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..20u64 {
        let a = (i % 5) as u32 + 1;
        let b = (i % 3) as u32 + 6;
        let detections = [(a, 1u16), (b, 0u16), (9, (i % 2) as u16)];
        let ends: &[u32] = match i {
            4 => &[2],
            9 => &[7, 9],
            14 => &[1],
            _ => &[],
        };
        ops.push(Op::Frame(frame(i, &detections, ends)));
        if i == 6 {
            ops.push(Op::Add(geq(1, 0, 2)));
        }
        if i == 13 {
            ops.push(Op::Remove(QueryId(1)));
        }
    }
    ops
}

fn build_engine() -> TemporalVideoQueryEngine {
    TemporalVideoQueryEngine::builder(
        EngineConfig::new(WindowSpec::new(4, 2).unwrap())
            .with_compaction(Some(CompactionPolicy::every(3))),
    )
    .with_query(geq(0, 1, 1))
    .build()
    .unwrap()
}

/// What the differential compares: every frame result in script order, the
/// final catalog version, and the final metrics modulo volatile fields.
struct Reference {
    results: Vec<FrameResult>,
    catalog_version: u64,
    metrics: MaintenanceMetrics,
}

/// The interner memo is a cache (deliberately not persisted), the store
/// counters are handle-local, and the `*_bytes` memory gauges report
/// allocator capacities (which depend on each container's growth history,
/// not its contents), so all of those legitimately differ between a
/// crashed-and-recovered run and an uninterrupted one. Everything else in
/// the metrics must match exactly.
fn scrub(metrics: &MaintenanceMetrics) -> MaintenanceMetrics {
    let mut m = metrics.clone();
    m.intersection_cache_hits = 0;
    m.intersection_cache_misses = 0;
    m.intersection_cache_resizes = 0;
    m.intersection_cache_slots = 0;
    m.arena_bytes = 0;
    m.bitmap_bytes = 0;
    m.class_map_bytes = 0;
    m.lifecycle_bytes = 0;
    m.wal_bytes = 0;
    m.wal_records = 0;
    m.snapshots_written = 0;
    m.snapshot_bytes = 0;
    m.fsyncs = 0;
    m.recoveries = 0;
    m
}

fn apply(
    engine: &mut TemporalVideoQueryEngine,
    op: &Op,
) -> tvq_common::Result<Option<FrameResult>> {
    match op {
        Op::Frame(f) => engine.observe(f).map(Some),
        Op::Add(q) => engine.add_query(q.clone()).map(|()| None),
        Op::Remove(id) => engine.remove_query(*id).map(|()| None),
    }
}

/// Runs the full script durably with no faults; also reports the maximum
/// number of live WAL segments seen (proof the sweep covers rotation).
fn run_uninterrupted(io: SharedIo, dir: &Path) -> (Reference, usize) {
    let mut engine = build_engine();
    engine.attach_durability(io.clone(), dir).unwrap();
    engine.set_wal_rotate_bytes(ROTATE_BYTES);
    let mut results = Vec::new();
    let mut max_segments = 0usize;
    for op in script() {
        if let Some(result) = apply(&mut engine, &op).unwrap() {
            results.push(result);
        }
        let segments = io
            .list(dir)
            .unwrap()
            .iter()
            .filter(|n| n.starts_with("wal-"))
            .count();
        max_segments = max_segments.max(segments);
    }
    engine.sync_store().unwrap();
    let reference = Reference {
        results,
        catalog_version: engine.catalog_version(),
        metrics: scrub(&engine.metrics()),
    };
    (reference, max_segments)
}

/// Runs the script through a faulty IO until the injected crash (or to
/// completion), returning the acknowledged frame results.
fn run_until_crash(io: SharedIo, dir: &Path) -> Vec<FrameResult> {
    let mut engine = build_engine();
    let mut acked = Vec::new();
    if engine.attach_durability(io, dir).is_err() {
        return acked;
    }
    engine.set_wal_rotate_bytes(ROTATE_BYTES);
    for op in script() {
        match apply(&mut engine, &op) {
            Ok(Some(result)) => acked.push(result),
            Ok(None) => {}
            Err(_) => return acked, // the injected crash; the process is dead
        }
    }
    let _ = engine.sync_store();
    acked
}

/// Recovers from the post-reboot disk, resumes the script from the durable
/// cursor, and returns the reconstructed full transcript.
fn recover_and_resume(
    disk: &MemDisk,
    dir: &Path,
    acked: &[FrameResult],
    reference: &Reference,
) -> Reference {
    let io = disk.io();
    let ops = script();

    // A crash before the bootstrap snapshot landed means there is nothing
    // to recover — the restart starts the engine from scratch.
    if !TemporalVideoQueryEngine::has_data(&io, dir) {
        assert!(acked.is_empty(), "acknowledged work must be recoverable");
        let mut engine = build_engine();
        engine.attach_durability(io, dir).unwrap();
        engine.set_wal_rotate_bytes(ROTATE_BYTES);
        let mut results = Vec::new();
        for op in &ops {
            if let Some(result) = apply(&mut engine, op).unwrap() {
                results.push(result);
            }
        }
        engine.sync_store().unwrap();
        return Reference {
            results,
            catalog_version: engine.catalog_version(),
            metrics: scrub(&engine.metrics()),
        };
    }

    let (mut engine, report) = TemporalVideoQueryEngine::recover(io, dir).unwrap();
    let durable_frames = engine.metrics().frames_processed as usize;
    let durable_catalog = engine.catalog_version() as usize;

    // Acknowledged implies durable; at most the one in-flight operation of
    // the fsync-before-ack window may be durable without an ack.
    assert!(
        durable_frames == acked.len() || durable_frames == acked.len() + 1,
        "durable frames {durable_frames} vs acknowledged {}",
        acked.len()
    );
    // Replayed results must match the reference slice they re-execute.
    let replay_start = durable_frames - report.replayed_frames.len();
    assert_eq!(
        report.replayed_frames,
        reference.results[replay_start..durable_frames],
        "replay diverged from the original execution"
    );

    // Transcript so far: every acknowledged result, plus the durable but
    // unacknowledged in-flight frame (if any) taken from the replay.
    let mut results = acked.to_vec();
    if durable_frames == acked.len() + 1 {
        results.push(
            report
                .replayed_frames
                .last()
                .cloned()
                .expect("in-flight durable frame must appear in the replay"),
        );
    }

    // The durable state is an exact prefix of the script; skip it.
    let (mut frames_seen, mut catalog_seen) = (0usize, 0usize);
    let mut resume_at = ops.len();
    for (index, op) in ops.iter().enumerate() {
        let done = match op {
            Op::Frame(_) => {
                frames_seen += 1;
                frames_seen <= durable_frames
            }
            Op::Add(_) | Op::Remove(_) => {
                catalog_seen += 1;
                catalog_seen <= durable_catalog
            }
        };
        if !done {
            resume_at = index;
            break;
        }
    }

    for op in &ops[resume_at..] {
        if let Some(result) = apply(&mut engine, op).unwrap() {
            results.push(result);
        }
    }
    engine.sync_store().unwrap();
    Reference {
        results,
        catalog_version: engine.catalog_version(),
        metrics: scrub(&engine.metrics()),
    }
}

fn assert_matches_reference(case: &str, run: &Reference, reference: &Reference) {
    assert_eq!(
        run.results.len(),
        reference.results.len(),
        "{case}: transcript length"
    );
    for (index, (got, want)) in run.results.iter().zip(&reference.results).enumerate() {
        assert_eq!(got, want, "{case}: frame result {index}");
    }
    assert_eq!(
        run.catalog_version, reference.catalog_version,
        "{case}: catalog version"
    );
    assert_eq!(run.metrics, reference.metrics, "{case}: final metrics");
}

/// The tentpole: every injected crash point, under every torn-tail policy,
/// recovers to a continuation indistinguishable from a run that never
/// crashed.
#[test]
fn every_crash_point_recovers_identically() {
    let dir = Path::new("/sweep");
    let (reference, max_segments) = {
        let disk = MemDisk::new();
        run_uninterrupted(disk.io(), dir)
    };
    assert!(
        max_segments >= 2,
        "script must force segment rotation (saw {max_segments} segments)"
    );
    assert!(
        reference.metrics.compactions >= 2,
        "script must cross compaction epochs"
    );

    // Counting run: same script through a fault IO that never fires.
    let count_disk = MemDisk::new();
    let counter = count_disk.fault_io(u64::MAX, TornTail::Drop);
    let counter_io: SharedIo = counter.clone();
    run_until_crash(counter_io, dir);
    let total_ops = counter.ops();
    assert!(
        total_ops >= 60,
        "expected a rich crash surface, got {total_ops} IO ops"
    );

    for crash_at in 1..=total_ops {
        for torn in TornTail::ALL {
            let disk = MemDisk::new();
            let faulty = disk.fault_io(crash_at, torn);
            let faulty_io: SharedIo = faulty.clone();
            let acked = run_until_crash(faulty_io, dir);
            assert!(faulty.crashed(), "crash point {crash_at} was never reached");
            let resumed = recover_and_resume(&disk, dir, &acked, &reference);
            let case = format!("crash at op {crash_at} ({torn:?})");
            assert_matches_reference(&case, &resumed, &reference);
        }
    }
}

/// Clean shutdown and restart: `sync_store`, drop, `recover`, continue.
#[test]
fn clean_restart_resumes_exactly() {
    let dir = Path::new("/clean");
    let (reference, _) = {
        let disk = MemDisk::new();
        run_uninterrupted(disk.io(), dir)
    };

    let disk = MemDisk::new();
    let ops = script();
    let split = 11usize;
    let mut results = Vec::new();
    {
        let mut engine = build_engine();
        engine.attach_durability(disk.io(), dir).unwrap();
        engine.set_wal_rotate_bytes(ROTATE_BYTES);
        engine.set_durable_sidecar(b"feed-tally".to_vec());
        for op in &ops[..split] {
            if let Some(result) = apply(&mut engine, op).unwrap() {
                results.push(result);
            }
        }
        engine.sync_store().unwrap();
    }

    let (mut engine, report) = TemporalVideoQueryEngine::recover(disk.io(), dir).unwrap();
    assert_eq!(report.sidecar, b"feed-tally", "sidecar survives restart");
    assert!(
        report.wal_truncation.is_none(),
        "clean shutdown tears nothing"
    );
    assert_eq!(engine.metrics().recoveries, 1);
    for op in &ops[split..] {
        if let Some(result) = apply(&mut engine, op).unwrap() {
            results.push(result);
        }
    }
    let run = Reference {
        results,
        catalog_version: engine.catalog_version(),
        metrics: scrub(&engine.metrics()),
    };
    assert_matches_reference("clean restart", &run, &reference);
}

/// Double-open protection and attach/recover misuse are clean errors.
#[test]
fn attach_and_recover_refuse_misuse() {
    let dir = Path::new("/misuse");
    let disk = MemDisk::new();
    assert!(
        TemporalVideoQueryEngine::recover(disk.io(), dir).is_err(),
        "recovering an empty directory must fail"
    );

    let mut engine = build_engine();
    engine.attach_durability(disk.io(), dir).unwrap();
    engine.observe(&frame(0, &[(1, 1)], &[])).unwrap();

    let mut second = build_engine();
    assert!(
        second.attach_durability(disk.io(), dir).is_err(),
        "the directory lock must refuse a second live engine"
    );
    drop(engine);

    let mut third = build_engine();
    assert!(
        third.attach_durability(disk.io(), dir).is_err(),
        "attach must refuse a directory that already holds engine data"
    );
    let recovered = TemporalVideoQueryEngine::recover(disk.io(), dir);
    assert!(recovered.is_ok(), "recover is the restart path");
}

/// A bit flip in the newest snapshot: recovery falls back to the previous
/// intact snapshot (whose WAL suffix is retained exactly for this) and the
/// continuation is still identical.
#[test]
fn snapshot_bit_flip_falls_back_to_previous_epoch() {
    let dir = Path::new("/snapflip");
    let (reference, _) = {
        let disk = MemDisk::new();
        run_uninterrupted(disk.io(), dir)
    };

    let disk = MemDisk::new();
    let ops = script();
    let split = 17usize;
    let mut results = Vec::new();
    {
        let mut engine = build_engine();
        engine.attach_durability(disk.io(), dir).unwrap();
        engine.set_wal_rotate_bytes(ROTATE_BYTES);
        for op in &ops[..split] {
            if let Some(result) = apply(&mut engine, op).unwrap() {
                results.push(result);
            }
        }
        assert!(
            engine.metrics().snapshots_written >= 3,
            "need at least two snapshot generations on disk"
        );
        engine.sync_store().unwrap();
    }

    let io = disk.io();
    let newest = io
        .list(dir)
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("snap-") && n.ends_with(".snap"))
        .max()
        .expect("snapshots on disk");
    assert!(disk.flip_bit(&dir.join(&newest), 40), "flip a payload byte");

    let (mut engine, report) = TemporalVideoQueryEngine::recover(io, dir).unwrap();
    assert_eq!(
        report.snapshots_skipped.len(),
        1,
        "the damaged snapshot is skipped and reported: {:?}",
        report.snapshots_skipped
    );
    for op in &ops[split..] {
        if let Some(result) = apply(&mut engine, op).unwrap() {
            results.push(result);
        }
    }
    let run = Reference {
        results,
        catalog_version: engine.catalog_version(),
        metrics: scrub(&engine.metrics()),
    };
    assert_matches_reference("snapshot bit flip", &run, &reference);
}

/// Bit flips in acknowledged WAL history are detected, never silently
/// replayed: recovery refuses with a corruption error.
#[test]
fn wal_bit_flips_are_detected() {
    let dir = Path::new("/walflip");
    // No compaction: the bootstrap snapshot is the only one, so the whole
    // WAL stays live and multiple segments survive unpruned.
    let build = || {
        TemporalVideoQueryEngine::builder(
            EngineConfig::new(WindowSpec::new(4, 2).unwrap()).with_compaction(None),
        )
        .with_query(geq(0, 1, 1))
        .build()
        .unwrap()
    };

    let disk = MemDisk::new();
    {
        let mut engine = build();
        engine.attach_durability(disk.io(), dir).unwrap();
        engine.set_wal_rotate_bytes(64);
        for i in 0..12u64 {
            engine.observe(&frame(i, &[(1, 1), (2, 0)], &[])).unwrap();
        }
        engine.sync_store().unwrap();
    }
    let io = disk.io();
    let mut segments: Vec<String> = io
        .list(dir)
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .collect();
    segments.sort();
    assert!(segments.len() >= 2, "need rotation: {segments:?}");

    // Damage in an earlier segment = acknowledged history is gone.
    assert!(disk.flip_bit(&dir.join(&segments[0]), 10));
    let err = TemporalVideoQueryEngine::recover(io, dir).unwrap_err();
    assert!(
        matches!(err, tvq_common::Error::Corrupt(_)),
        "mid-log damage must refuse recovery, got {err}"
    );
}
