//! Differential suite for tracker-id reuse.
//!
//! Trackers recycle identifiers; the object lifecycle
//! ([`tvq_core::ObjectLifecycle`]) makes that well-defined: a reused id
//! (same id, different class — or any reappearance after epoch retirement)
//! is a **new object** behind a fresh internal id, so no maintainer ever
//! splices a reused id into an old generation's frame sets. Two properties
//! pin the semantics down on random feeds with aggressive recycling:
//!
//! 1. **generation-aware oracle** — the lifecycle-resolved stream, run
//!    through all three production maintainers, must report exactly the
//!    results of the brute-force reference oracle fed a ground-truth
//!    relabeling (one unique id per `(tracker id, class run)`), once both
//!    sides are translated back to tracker ids;
//! 2. **retirement invisibility** — forcing a compaction (and the retire
//!    propagation) every frame never changes the translated results: epoch
//!    retirement only relabels fresh generations, it cannot create or
//!    destroy co-occurrence structure.

use proptest::prelude::*;

use tvq_common::{
    shared_class_store, ClassId, FrameId, FxHashMap, FxHashSet, ObjectId, ObjectSet, WindowSpec,
};
use tvq_core::{CompactionPolicy, MaintainerKind, ObjectLifecycle, StateMaintainer};

/// A recycling-heavy feed: ids from a pool of 5, each observation with one
/// of 2 classes, so the same id routinely returns with a different class.
fn recycling_feeds() -> impl Strategy<Value = Vec<Vec<(u32, u16)>>> {
    proptest::collection::vec(proptest::collection::vec((0u32..5, 0u16..2), 0..4), 1..22)
}

/// Deduplicates detections per frame by tracker id (first wins): one frame
/// never reports the same tracker id twice.
fn dedup(frame: &[(u32, u16)]) -> Vec<(ObjectId, ClassId)> {
    let mut seen = FxHashSet::default();
    frame
        .iter()
        .filter(|&&(id, _)| seen.insert(id))
        .map(|&(id, class)| (ObjectId(id), ClassId(class)))
        .collect()
}

/// The ground-truth relabeling: every `(tracker id, class run)` is one
/// unique object. Matches the lifecycle contract for feeds without
/// retirement: same id + same class = same object, class change = new one.
#[derive(Default)]
struct GroundTruth {
    bindings: FxHashMap<ObjectId, (ClassId, ObjectId)>,
    externals: FxHashMap<ObjectId, ObjectId>,
    next: u32,
}

impl GroundTruth {
    fn resolve(&mut self, external: ObjectId, class: ClassId) -> ObjectId {
        match self.bindings.get(&external) {
            Some(&(bound, unique)) if bound == class => unique,
            _ => {
                let unique = ObjectId(self.next);
                self.next += 1;
                self.bindings.insert(external, (class, unique));
                self.externals.insert(unique, external);
                unique
            }
        }
    }

    fn external_of(&self, unique: ObjectId) -> ObjectId {
        self.externals[&unique]
    }
}

/// A maintainer's results translated back to tracker ids, canonicalised.
fn translated_results(
    maintainer: &dyn StateMaintainer,
    translate: &dyn Fn(ObjectId) -> ObjectId,
) -> Vec<(Vec<ObjectId>, Vec<FrameId>)> {
    let mut results: Vec<(Vec<ObjectId>, Vec<FrameId>)> = maintainer
        .results()
        .iter()
        .map(|(set, frames)| {
            let mut ids: Vec<ObjectId> = set.iter().map(translate).collect();
            ids.sort_unstable();
            (ids, frames.to_vec())
        })
        .collect();
    results.sort();
    results
}

fn relevant() -> FxHashSet<ClassId> {
    [ClassId(0), ClassId(1)].into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: all three maintainers on the lifecycle-resolved stream
    /// equal the reference oracle on the ground-truth relabeling, after
    /// both sides translate back to tracker ids — frame for frame.
    #[test]
    fn maintainers_match_generation_aware_oracle(
        raw in recycling_feeds(),
        window in 2usize..5,
        duration in 1usize..3,
    ) {
        let duration = duration.min(window);
        let spec = WindowSpec::new(window, duration).unwrap();
        let relevant = relevant();

        let mut lifecycle = ObjectLifecycle::new(shared_class_store());
        let mut truth = GroundTruth::default();
        let mut oracle = MaintainerKind::Reference.build(spec);
        let mut subjects: Vec<Box<dyn StateMaintainer>> = MaintainerKind::PRODUCTION
            .iter()
            .map(|kind| kind.build(spec))
            .collect();

        for (i, frame) in raw.iter().enumerate() {
            let fid = FrameId(i as u64);
            let detections = dedup(frame);

            let mut internal = Vec::new();
            lifecycle.resolve_frame(&detections, &relevant, &mut internal);
            let subject_objects = ObjectSet::from_ids(internal);

            let truth_objects = ObjectSet::from_ids(
                detections
                    .iter()
                    .map(|&(id, class)| truth.resolve(id, class))
                    .collect::<Vec<ObjectId>>(),
            );

            oracle.advance(fid, &truth_objects).unwrap();
            let expected = translated_results(oracle.as_ref(), &|id| truth.external_of(id));
            for subject in &mut subjects {
                subject.advance(fid, &subject_objects).unwrap();
                let got = translated_results(subject.as_ref(), &|id| lifecycle.external_of(id));
                prop_assert_eq!(
                    &got,
                    &expected,
                    "{} diverged from the generation-aware oracle at frame {} (feed {:?})",
                    subject.name(),
                    i,
                    &raw[..=i]
                );
            }
        }
    }

    /// Property 2: forcing a compaction epoch (with retire propagation into
    /// the lifecycle) every frame never changes the translated results.
    #[test]
    fn epoch_retirement_is_invisible_modulo_tracker_ids(
        raw in recycling_feeds(),
        window in 2usize..5,
        duration in 1usize..3,
    ) {
        let duration = duration.min(window);
        let spec = WindowSpec::new(window, duration).unwrap();
        let force = CompactionPolicy::every(1);
        let relevant = relevant();

        for kind in MaintainerKind::PRODUCTION {
            let mut retiring = kind.build(spec);
            let mut retiring_lifecycle = ObjectLifecycle::new(shared_class_store());
            let mut plain = kind.build(spec);
            let mut plain_lifecycle = ObjectLifecycle::new(shared_class_store());

            for (i, frame) in raw.iter().enumerate() {
                let fid = FrameId(i as u64);
                let detections = dedup(frame);

                let mut internal = Vec::new();
                retiring_lifecycle.resolve_frame(&detections, &relevant, &mut internal);
                retiring.advance(fid, &ObjectSet::from_ids(internal)).unwrap();
                if let Some(outcome) = retiring.maybe_compact(&force) {
                    retiring_lifecycle.retire(&outcome.retired_objects);
                }

                let mut internal = Vec::new();
                plain_lifecycle.resolve_frame(&detections, &relevant, &mut internal);
                plain.advance(fid, &ObjectSet::from_ids(internal)).unwrap();

                let got =
                    translated_results(retiring.as_ref(), &|id| retiring_lifecycle.external_of(id));
                let expected =
                    translated_results(plain.as_ref(), &|id| plain_lifecycle.external_of(id));
                prop_assert_eq!(
                    &got,
                    &expected,
                    "{} retirement changed translated results at frame {} (feed {:?})",
                    retiring.name(),
                    i,
                    &raw[..=i]
                );
            }
        }
    }
}

/// Deterministic spot check of the headline hazard: id 1 is a car, leaves,
/// and is recycled as a person while old frames are still inside the
/// window. The two generations must never share a state: the car results
/// end with the car's departure, the person results start fresh.
#[test]
fn recycled_id_never_splices_into_the_old_generation() {
    let spec = WindowSpec::new(6, 2).unwrap();
    let relevant = relevant();
    let mut lifecycle = ObjectLifecycle::new(shared_class_store());
    let mut maintainer = MaintainerKind::Mfs.build(spec);

    // Frames 0-1: car generation; frames 2-3: companion only; 4-5: person
    // generation behind the same tracker id.
    let frames: Vec<Vec<(ObjectId, ClassId)>> = vec![
        vec![(ObjectId(1), ClassId(1)), (ObjectId(9), ClassId(0))],
        vec![(ObjectId(1), ClassId(1)), (ObjectId(9), ClassId(0))],
        vec![(ObjectId(9), ClassId(0))],
        vec![(ObjectId(9), ClassId(0))],
        vec![(ObjectId(1), ClassId(0)), (ObjectId(9), ClassId(0))],
        vec![(ObjectId(1), ClassId(0)), (ObjectId(9), ClassId(0))],
    ];
    for (i, detections) in frames.iter().enumerate() {
        let mut internal = Vec::new();
        lifecycle.resolve_frame(detections, &relevant, &mut internal);
        maintainer
            .advance(FrameId(i as u64), &ObjectSet::from_ids(internal))
            .unwrap();
    }
    // Both generations are still inside the 6-frame window, and they must
    // surface as *two distinct* pair states — the car generation pinned to
    // frames 0-1, the person generation to frames 4-5 — never as one state
    // whose frame set bridges the generations.
    let results = translated_results(maintainer.as_ref(), &|id| lifecycle.external_of(id));
    let pair_frames: Vec<&Vec<FrameId>> = results
        .iter()
        .filter(|(ids, _)| ids == &vec![ObjectId(1), ObjectId(9)])
        .map(|(_, frames)| frames)
        .collect();
    assert_eq!(
        pair_frames,
        vec![&vec![FrameId(0), FrameId(1)], &vec![FrameId(4), FrameId(5)],],
        "generations must stay separate states: {results:?}"
    );
    assert_eq!(lifecycle.generations_started(), 3, "car, companion, person");
}
