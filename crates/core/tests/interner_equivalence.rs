//! Property tests for the interner-backed maintainers.
//!
//! The PR that introduced [`tvq_common::SetInterner`] re-keyed every state
//! structure from `ObjectSet` keys to dense `SetId` handles. These tests pin
//! down that the re-keying is semantically invisible:
//!
//! * for random feeds, the handle-keyed maintainers report exactly the same
//!   `states()` / `results()` an `ObjectSet`-keyed implementation would —
//!   checked against the brute-force reference oracle (which still hashes
//!   plain object sets) and against each other;
//! * the interner's memoized `intersect` agrees with the plain
//!   `ObjectSet::intersect` linear merge, including the `Arc::ptr_eq` fast
//!   path and the cache fast paths (`a ∩ a`, empty operands).

use proptest::prelude::*;

use tvq_common::{FrameId, ObjectSet, SetId, SetInterner, WindowSpec};
use tvq_core::{CompactionPolicy, MfsMaintainer, NaiveMaintainer, SsgMaintainer, StateMaintainer};
use tvq_testkit::assert_all_equivalent;

/// Strategy: a short feed of small object sets (ids < 8) so the reference
/// oracle stays tractable while windows still slide and states churn.
fn feeds() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..8, 0..5), 1..18)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interner-backed NAIVE/MFS/SSG agree with the ObjectSet-keyed
    /// reference oracle (results and frame sets) after every frame.
    #[test]
    fn maintainers_match_oracle_on_random_feeds(
        raw in feeds(),
        window in 2usize..6,
        duration in 1usize..4,
    ) {
        let duration = duration.min(window);
        let frames: Vec<ObjectSet> = raw
            .iter()
            .map(|ids| ObjectSet::from_raw(ids.iter().copied()))
            .collect();
        assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
    }

    /// MFS's handle-keyed `states()` exposes exactly the same object set →
    /// marked-frame-set table as a set-keyed implementation: the object sets
    /// resolved from handles round-trip byte-identically, and NAIVE's state
    /// table keys are reproduced by an independent interner.
    #[test]
    fn states_round_trip_through_the_interner(raw in feeds()) {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut mfs = MfsMaintainer::new(spec);
        let mut naive = NaiveMaintainer::new(spec);
        let mut check = SetInterner::new();
        for (i, ids) in raw.iter().enumerate() {
            let objects = ObjectSet::from_raw(ids.iter().copied());
            mfs.advance(FrameId(i as u64), &objects).unwrap();
            naive.advance(FrameId(i as u64), &objects).unwrap();
        }
        for (set, frames) in mfs.states() {
            // Resolved sets are canonical (sorted, deduplicated) and
            // re-intern to a stable handle that resolves back bitwise.
            let sid = check.intern(set);
            prop_assert_eq!(check.resolve(sid).as_slice(), set.as_slice());
            prop_assert!(frames.len() <= 4);
        }
        for (set, _) in naive.states() {
            let sid = check.intern(set);
            prop_assert_eq!(check.resolve(sid), set);
        }
    }

    /// The memoized intersect agrees with the linear merge for arbitrary set
    /// pairs — on the first (miss) call and on the repeat (hit) call.
    #[test]
    fn memoized_intersect_agrees_with_linear_merge(
        a in proptest::collection::vec(0u32..64, 0..24),
        b in proptest::collection::vec(0u32..64, 0..24),
    ) {
        let sa = ObjectSet::from_raw(a.iter().copied());
        let sb = ObjectSet::from_raw(b.iter().copied());
        let expected = sa.intersect(&sb);

        let mut interner = SetInterner::new();
        let ia = interner.intern(&sa);
        let ib = interner.intern(&sb);
        let miss = interner.intersect(ia, ib);
        prop_assert_eq!(interner.resolve(miss), &expected);
        // Second call is answered from the cache (or a fast path) and must
        // agree; the commuted pair shares the same answer.
        let hit = interner.intersect(ia, ib);
        prop_assert_eq!(hit, miss);
        prop_assert_eq!(interner.intersect(ib, ia), miss);
        // The handle algebra matches set algebra: subset pairs resolve to
        // the smaller operand's handle without inventing a new set.
        if sa.is_subset_of(&sb) {
            prop_assert_eq!(miss, ia);
        }
        if sb.is_subset_of(&sa) && sa != sb {
            prop_assert_eq!(miss, ib);
        }
    }

    /// Compaction round-trip: a maintainer that compacts + remaps every few
    /// frames reports exactly the states and results of a fresh maintainer
    /// replaying the same feed without ever compacting — for all three
    /// strategies, after every frame.
    #[test]
    fn compaction_round_trips_against_a_fresh_replay(
        raw in feeds(),
        window in 2usize..6,
        duration in 1usize..4,
        cadence in 1usize..4,
    ) {
        let duration = duration.min(window);
        let spec = WindowSpec::new(window, duration).unwrap();
        let force = CompactionPolicy::every(1);
        let frames: Vec<ObjectSet> = raw
            .iter()
            .map(|ids| ObjectSet::from_raw(ids.iter().copied()))
            .collect();

        let mut compacting: Vec<Box<dyn StateMaintainer>> = vec![
            Box::new(NaiveMaintainer::new(spec)),
            Box::new(MfsMaintainer::new(spec)),
            Box::new(SsgMaintainer::new(spec)),
        ];
        let mut plain: Vec<Box<dyn StateMaintainer>> = vec![
            Box::new(NaiveMaintainer::new(spec)),
            Box::new(MfsMaintainer::new(spec)),
            Box::new(SsgMaintainer::new(spec)),
        ];
        for (i, objects) in frames.iter().enumerate() {
            let fid = FrameId(i as u64);
            for (a, b) in compacting.iter_mut().zip(plain.iter_mut()) {
                a.advance(fid, objects).unwrap();
                if i % cadence == 0 {
                    a.maybe_compact(&force);
                }
                b.advance(fid, objects).unwrap();
                prop_assert_eq!(
                    a.results(),
                    b.results(),
                    "{} diverged after compaction at frame {}",
                    a.name(),
                    i
                );
                prop_assert_eq!(a.live_states(), b.live_states());
            }
        }
    }

    /// The `Arc::ptr_eq` fast path: a set intersected with a clone of itself
    /// (shared `Arc`) returns the same handle, and the plain merge agrees.
    #[test]
    fn ptr_eq_fast_path_agrees(a in proptest::collection::vec(0u32..64, 0..24)) {
        let sa = ObjectSet::from_raw(a.iter().copied());
        let clone = sa.clone(); // shares the Arc
        prop_assert_eq!(sa.intersect(&clone), sa.clone());

        let mut interner = SetInterner::new();
        let ia = interner.intern(&sa);
        let ia_again = interner.intern(&clone);
        prop_assert_eq!(ia, ia_again);
        prop_assert_eq!(interner.intersect(ia, ia_again), ia);
    }
}

/// Deterministic spot-check: SSG and MFS results stay identical across a
/// feed long enough to cycle states through creation, invalidation, pruning
/// and re-creation — the lifecycle where stale handles would show up.
#[test]
fn ssg_and_mfs_agree_across_state_recreation() {
    let spec = WindowSpec::new(6, 2).unwrap();
    let mut ssg = SsgMaintainer::new(spec);
    let mut mfs = MfsMaintainer::new(spec);
    let patterns: Vec<ObjectSet> = vec![
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::from_raw([1, 2, 4]),
        ObjectSet::from_raw([5, 6]),
        ObjectSet::from_raw([5, 6, 7]),
        ObjectSet::empty(),
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::from_raw([1, 2]),
    ];
    for (i, objects) in patterns.iter().cycle().take(64).enumerate() {
        let fid = FrameId(i as u64);
        ssg.advance(fid, objects).unwrap();
        mfs.advance(fid, objects).unwrap();
        assert_eq!(
            ssg.results(),
            mfs.results(),
            "divergence at frame {i} (results ignore cached counts)"
        );
    }
}

/// The intersection cache keeps answering correctly once slots start being
/// overwritten (collision behaviour of the direct-mapped cache).
#[test]
fn memo_collisions_do_not_corrupt_answers() {
    let mut interner = SetInterner::new();
    let sets: Vec<ObjectSet> = (0..128u32)
        .map(|i| ObjectSet::from_raw([i, i + 1, i % 7, 200 + (i % 5)]))
        .collect();
    let ids: Vec<SetId> = sets.iter().map(|s| interner.intern(s)).collect();
    // Two passes: the second pass re-asks pairs whose slots may have been
    // evicted; answers must still match the plain merge.
    for _ in 0..2 {
        for (i, &ia) in ids.iter().enumerate() {
            for (j, &ib) in ids.iter().enumerate().skip(i) {
                let got = interner.intersect(ia, ib);
                let expected = sets[i].intersect(&sets[j]);
                assert_eq!(
                    interner.resolve(got),
                    &expected,
                    "wrong intersection for pair ({i}, {j})"
                );
            }
        }
    }
    assert!(interner.memo_hits() > 0, "repeat pass should hit the cache");
}
