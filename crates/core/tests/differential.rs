//! Differential tests: NAIVE, MFS and SSG must agree with the brute-force
//! reference oracle on the satisfied MCOS of every window, for arbitrary
//! frame sequences, window sizes and durations — and the pruning `_O`
//! variants must agree with the oracle filtered by the same pruner.
//!
//! The feed generators and oracle-equivalence assertions live in
//! `tvq-testkit` so the query-layer and end-to-end suites share them.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use tvq_common::{ObjectSet, WindowSpec};
use tvq_core::{MinCardinalityPruner, SharedPruner};
use tvq_testkit::{assert_all_equivalent, assert_equivalent_with_pruner, tracked_feed};

#[test]
fn paper_running_example_all_durations_and_windows() {
    // A=1, B=2, C=3, D=4, F=6.
    let frames = vec![
        ObjectSet::from_raw([2]),
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::from_raw([1, 2, 4, 6]),
        ObjectSet::from_raw([1, 2, 3, 6]),
        ObjectSet::from_raw([1, 2, 4]),
    ];
    for window in 2..=5 {
        for duration in 1..=window {
            assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
        }
    }
}

#[test]
fn seeded_tracked_feeds_agree_with_reference() {
    for seed in 0..12u64 {
        let frames = tracked_feed(seed, 40, 6, 0.25);
        for (window, duration) in [(4, 2), (5, 3), (6, 4), (8, 2)] {
            assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
        }
    }
}

#[test]
fn heavy_occlusion_feeds_agree_with_reference() {
    for seed in 100..106u64 {
        let frames = tracked_feed(seed, 30, 5, 0.5);
        assert_all_equivalent(&frames, WindowSpec::new(6, 3).unwrap());
    }
}

#[test]
fn dense_feeds_with_recurring_object_sets() {
    // Few distinct object sets recur; exercises principal-state reuse (λ > 1).
    let mut rng = StdRng::seed_from_u64(7);
    let patterns = [
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::from_raw([1, 2]),
        ObjectSet::from_raw([2, 3, 4]),
        ObjectSet::from_raw([1, 4]),
    ];
    let frames: Vec<ObjectSet> = (0..50)
        .map(|_| patterns[rng.gen_range(0..patterns.len())].clone())
        .collect();
    assert_all_equivalent(&frames, WindowSpec::new(5, 3).unwrap());
    assert_all_equivalent(&frames, WindowSpec::new(10, 6).unwrap());
}

#[test]
fn feeds_with_empty_frames_agree() {
    let frames = vec![
        ObjectSet::from_raw([1, 2]),
        ObjectSet::empty(),
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::empty(),
        ObjectSet::empty(),
        ObjectSet::from_raw([2, 3]),
        ObjectSet::from_raw([1, 3]),
    ];
    for (window, duration) in [(3, 1), (4, 2), (7, 3)] {
        assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
    }
}

fn min_cardinality(min_objects: usize) -> SharedPruner {
    Arc::new(MinCardinalityPruner { min_objects })
}

#[test]
fn pruned_maintainers_agree_with_filtered_reference_on_tracked_feeds() {
    for seed in 0..8u64 {
        let frames = tracked_feed(seed, 35, 6, 0.25);
        for min_objects in [1, 2, 3] {
            for (window, duration) in [(4, 2), (6, 3)] {
                assert_equivalent_with_pruner(
                    &frames,
                    WindowSpec::new(window, duration).unwrap(),
                    min_cardinality(min_objects),
                );
            }
        }
    }
}

#[test]
fn pruned_maintainers_agree_under_heavy_occlusion() {
    for seed in 200..204u64 {
        let frames = tracked_feed(seed, 30, 5, 0.5);
        assert_equivalent_with_pruner(&frames, WindowSpec::new(6, 3).unwrap(), min_cardinality(2));
    }
}

#[test]
fn pruning_everything_yields_empty_results() {
    // A pruner that terminates every state (min cardinality above the
    // universe) must leave the maintainers running but reporting nothing.
    let frames = tracked_feed(5, 25, 4, 0.2);
    assert_equivalent_with_pruner(&frames, WindowSpec::new(5, 2).unwrap(), min_cardinality(10));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary short feeds over a small object universe: all maintainers
    /// must agree with the oracle for arbitrary window/duration combinations.
    #[test]
    fn arbitrary_feeds_agree_with_reference(
        frames in proptest::collection::vec(proptest::collection::vec(0u32..6, 0..5), 1..18),
        window in 2usize..6,
        duration_offset in 0usize..4,
    ) {
        let duration = (duration_offset % window).max(1);
        let frames: Vec<ObjectSet> = frames
            .into_iter()
            .map(ObjectSet::from_raw)
            .collect();
        assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
    }

    /// Arbitrary feeds under an active cardinality pruner: MFS_O and SSG_O
    /// must agree with the reference oracle filtered by the same pruner.
    #[test]
    fn arbitrary_feeds_agree_under_pruning(
        frames in proptest::collection::vec(proptest::collection::vec(0u32..6, 0..5), 1..16),
        window in 2usize..6,
        duration_offset in 0usize..4,
        min_objects in 1usize..4,
    ) {
        let duration = (duration_offset % window).max(1);
        let frames: Vec<ObjectSet> = frames
            .into_iter()
            .map(ObjectSet::from_raw)
            .collect();
        assert_equivalent_with_pruner(
            &frames,
            WindowSpec::new(window, duration).unwrap(),
            min_cardinality(min_objects),
        );
    }
}
