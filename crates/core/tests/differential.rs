//! Differential tests: NAIVE, MFS and SSG must agree with the brute-force
//! reference oracle on the satisfied MCOS of every window, for arbitrary
//! frame sequences, window sizes and durations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tvq_common::{FrameId, ObjectSet, WindowSpec};
use tvq_core::{MaintainerKind, StateMaintainer};

/// Runs every production maintainer plus the reference oracle over the same
/// frame sequence and asserts that the reported result object sets and their
/// frame sets are identical after every frame.
fn assert_all_equivalent(frames: &[ObjectSet], spec: WindowSpec) {
    let mut reference = MaintainerKind::Reference.build(spec);
    let mut others: Vec<Box<dyn StateMaintainer>> = MaintainerKind::PRODUCTION
        .iter()
        .map(|kind| kind.build(spec))
        .collect();

    for (i, objects) in frames.iter().enumerate() {
        let fid = FrameId(i as u64);
        reference.advance(fid, objects).unwrap();
        let expected: Vec<(ObjectSet, Vec<FrameId>)> = reference
            .results()
            .iter()
            .map(|(set, frames)| (set.clone(), frames.to_vec()))
            .collect();
        for maintainer in &mut others {
            maintainer.advance(fid, objects).unwrap();
            let got: Vec<(ObjectSet, Vec<FrameId>)> = maintainer
                .results()
                .iter()
                .map(|(set, frames)| (set.clone(), frames.to_vec()))
                .collect();
            assert_eq!(
                got,
                expected,
                "{} disagrees with the reference at frame {i} (w={}, d={})\nframes so far: {:?}",
                maintainer.name(),
                spec.window(),
                spec.duration(),
                &frames[..=i]
            );
        }
    }
}

/// Generates a frame sequence mimicking a tracked video feed: objects enter,
/// persist for a while, occasionally get occluded, and leave.
fn tracked_feed(seed: u64, num_frames: usize, universe: u32, occlusion: f64) -> Vec<ObjectSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<(u32, usize)> = Vec::new(); // (object, remaining lifetime)
    let mut next_id = 0u32;
    let mut frames = Vec::with_capacity(num_frames);
    for _ in 0..num_frames {
        // Arrivals.
        while active.len() < universe as usize && rng.gen_bool(0.35) {
            let lifetime = rng.gen_range(2..=8);
            active.push((next_id % universe, lifetime));
            next_id += 1;
        }
        // Visible objects: active ones that are not occluded this frame.
        let visible: Vec<u32> = active
            .iter()
            .filter(|_| !rng.gen_bool(occlusion))
            .map(|&(id, _)| id)
            .collect();
        frames.push(ObjectSet::from_raw(visible));
        // Departures.
        for entry in &mut active {
            entry.1 -= 1;
        }
        active.retain(|&(_, life)| life > 0);
    }
    frames
}

#[test]
fn paper_running_example_all_durations_and_windows() {
    // A=1, B=2, C=3, D=4, F=6.
    let frames = vec![
        ObjectSet::from_raw([2]),
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::from_raw([1, 2, 4, 6]),
        ObjectSet::from_raw([1, 2, 3, 6]),
        ObjectSet::from_raw([1, 2, 4]),
    ];
    for window in 2..=5 {
        for duration in 1..=window {
            assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
        }
    }
}

#[test]
fn seeded_tracked_feeds_agree_with_reference() {
    for seed in 0..12u64 {
        let frames = tracked_feed(seed, 40, 6, 0.25);
        for (window, duration) in [(4, 2), (5, 3), (6, 4), (8, 2)] {
            assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
        }
    }
}

#[test]
fn heavy_occlusion_feeds_agree_with_reference() {
    for seed in 100..106u64 {
        let frames = tracked_feed(seed, 30, 5, 0.5);
        assert_all_equivalent(&frames, WindowSpec::new(6, 3).unwrap());
    }
}

#[test]
fn dense_feeds_with_recurring_object_sets() {
    // Few distinct object sets recur; exercises principal-state reuse (λ > 1).
    let mut rng = StdRng::seed_from_u64(7);
    let patterns = [
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::from_raw([1, 2]),
        ObjectSet::from_raw([2, 3, 4]),
        ObjectSet::from_raw([1, 4]),
    ];
    let frames: Vec<ObjectSet> = (0..50)
        .map(|_| patterns[rng.gen_range(0..patterns.len())].clone())
        .collect();
    assert_all_equivalent(&frames, WindowSpec::new(5, 3).unwrap());
    assert_all_equivalent(&frames, WindowSpec::new(10, 6).unwrap());
}

#[test]
fn feeds_with_empty_frames_agree() {
    let frames = vec![
        ObjectSet::from_raw([1, 2]),
        ObjectSet::empty(),
        ObjectSet::from_raw([1, 2, 3]),
        ObjectSet::empty(),
        ObjectSet::empty(),
        ObjectSet::from_raw([2, 3]),
        ObjectSet::from_raw([1, 3]),
    ];
    for (window, duration) in [(3, 1), (4, 2), (7, 3)] {
        assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary short feeds over a small object universe: all maintainers
    /// must agree with the oracle for arbitrary window/duration combinations.
    #[test]
    fn arbitrary_feeds_agree_with_reference(
        frames in proptest::collection::vec(proptest::collection::vec(0u32..6, 0..5), 1..18),
        window in 2usize..6,
        duration_offset in 0usize..4,
    ) {
        let duration = (duration_offset % window).max(1);
        let frames: Vec<ObjectSet> = frames
            .into_iter()
            .map(|objs| ObjectSet::from_raw(objs))
            .collect();
        assert_all_equivalent(&frames, WindowSpec::new(window, duration).unwrap());
    }
}
