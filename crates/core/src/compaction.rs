//! Epoch-based interner-arena compaction policy.
//!
//! Within one epoch a maintainer's [`SetInterner`](tvq_common::SetInterner)
//! arena is append-only: memory grows with the number of distinct object
//! sets ever observed. Bounded-universe feeds saturate quickly, but a
//! long-running feed with object turnover (new track ids forever) grows
//! monotonically. Compaction fixes that: when the share of arena entries
//! still referenced by live states falls below a configured ratio, the
//! maintainer rebuilds its interner from the live handles
//! ([`SetInterner::compact`](tvq_common::SetInterner::compact)) and re-keys
//! every handle-keyed structure through the returned
//! [`RemapTable`](tvq_common::RemapTable).
//!
//! [`CompactionPolicy`] describes *when* that is worth doing. The engine
//! checks the policy between frames (every
//! [`check_interval`](CompactionPolicy::check_interval) frames) and calls
//! [`StateMaintainer::maybe_compact`](crate::StateMaintainer::maybe_compact);
//! the maintainer supplies the live-handle count and compacts if the policy
//! agrees. Compaction is semantically invisible — results before and after
//! are identical — and deterministic: identical runs compact at identical
//! frames into identical arenas.

/// What one compaction epoch did, reported upward by
/// [`StateMaintainer::maybe_compact`](crate::StateMaintainer::maybe_compact).
///
/// The interesting payload is the **retire set**: the object identifiers
/// that no surviving interned set contains any more. The engine layer feeds
/// it to its [`ObjectLifecycle`](crate::ObjectLifecycle) so the shared class
/// store drops its references and the per-engine tracking maps forget the
/// identifiers — the step that makes the *engine-side* footprint (not just
/// the maintainer arena) a function of the live window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// The epoch the interner transitioned into.
    pub epoch: u64,
    /// Number of interned sets retired by the epoch.
    pub retired_sets: usize,
    /// Objects whose bit slots were re-densified away (ascending order).
    /// An identifier in this list is referenced by no live state; if it
    /// ever reappears in the feed it is, by contract, a **new object**.
    pub retired_objects: Vec<tvq_common::ObjectId>,
}

/// When to compact a maintainer's interner arena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// How often (in processed frames) the engine consults the policy.
    /// Checking is O(live states) only when the other thresholds pass, but
    /// there is no point re-deciding every frame.
    pub check_interval: u64,
    /// Compact when `live handles / arena entries` falls below this ratio.
    /// `1.0` compacts whenever any entry is retired; values above `1.0`
    /// never trigger on their own (the `arena > live` guard still applies).
    pub max_live_ratio: f64,
    /// Skip compaction while the arena holds fewer entries than this —
    /// small arenas are not worth rebuilding, whatever their occupancy.
    pub min_interned: usize,
}

impl CompactionPolicy {
    /// The production default: check every 256 frames, compact once less
    /// than half of an at-least-4096-entry arena is live.
    pub const fn default_policy() -> Self {
        CompactionPolicy {
            check_interval: 256,
            max_live_ratio: 0.5,
            min_interned: 4096,
        }
    }

    /// A policy that compacts at every check with at least one retired
    /// entry — used by the determinism suite to force compaction every `n`
    /// frames and by tests that want the epoch lifecycle exercised densely.
    pub const fn every(n: u64) -> Self {
        CompactionPolicy {
            check_interval: if n == 0 { 1 } else { n },
            max_live_ratio: 1.0,
            min_interned: 0,
        }
    }

    /// Whether an arena with `arena` entries, of which `live` are still
    /// referenced, should be compacted now. Both counts include the
    /// always-live empty set.
    pub fn should_compact(&self, live: usize, arena: usize) -> bool {
        arena > live
            && arena >= self.min_interned
            && (live as f64) < self.max_live_ratio * (arena as f64)
    }
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy::default_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_waits_for_a_large_sparse_arena() {
        let policy = CompactionPolicy::default_policy();
        assert!(!policy.should_compact(10, 100), "arena below min_interned");
        assert!(!policy.should_compact(3000, 5000), "occupancy above ratio");
        assert!(policy.should_compact(1000, 5000));
        assert!(!policy.should_compact(5000, 5000), "nothing to retire");
    }

    #[test]
    fn forced_policy_compacts_whenever_something_retired() {
        let policy = CompactionPolicy::every(8);
        assert_eq!(policy.check_interval, 8);
        assert!(policy.should_compact(1, 2));
        assert!(policy.should_compact(4095, 4096));
        assert!(!policy.should_compact(2, 2), "fully live arena stays");
        assert_eq!(CompactionPolicy::every(0).check_interval, 1);
    }
}
