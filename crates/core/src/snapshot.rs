//! Codec helpers shared by the maintainers' snapshot/restore paths.
//!
//! Each maintainer serializes its complete handle-keyed state through
//! [`StateMaintainer::snapshot_state`](crate::StateMaintainer::snapshot_state)
//! so the engine's durability layer can persist it at compaction epoch
//! boundaries and rebuild a bit-identical maintainer on recovery. The
//! helpers here cover the pieces every strategy shares:
//!
//! * the **interner** is persisted as its non-empty arena sets in handle
//!   order plus the compaction epoch ([`put_interner`] /
//!   [`restore_interner`]): re-interning the sets in order into a freshly
//!   built interner (same class store, same memo policy) reproduces
//!   identical handles, universe slots, bitmaps and cached class counts.
//!   The intersection memo is *not* persisted — it is a cache, so only the
//!   hit/miss counters drift after recovery, never a result;
//! * **marked frame sets** round-trip through their `(frame, marked)`
//!   iterator;
//! * **metrics** are persisted as an ordered `u64` field list with a count
//!   prefix, so a layout mismatch surfaces as a clean codec error.
//!
//! Pruner verdict caches are deliberately **not** serialized: verdicts are
//! re-derivable under the live catalog, so recovery re-judges lazily (only
//! the `states_terminated` counter can drift, documented on the trait).

use tvq_common::{
    Decoder, Encoder, Error, FrameId, MarkedFrameSet, ObjectId, ObjectSet, Result, SetId,
    SetInterner,
};

use crate::metrics::MaintenanceMetrics;

/// Appends an interned handle.
pub fn put_set_id(enc: &mut Encoder, sid: SetId) {
    enc.put_u32(sid.raw());
}

/// Reads an interned handle (meaningful only against the restored arena).
pub fn take_set_id(dec: &mut Decoder<'_>) -> Result<SetId> {
    Ok(SetId::from_raw(dec.take_u32()?))
}

/// Appends an object set as a length-prefixed sorted identifier list.
pub fn put_object_set(enc: &mut Encoder, set: &ObjectSet) {
    enc.put_usize(set.len());
    for id in set.iter() {
        enc.put_u32(id.raw());
    }
}

/// Reads an object set; the persisted order is sorted, but the input is
/// untrusted so the sort is re-established rather than assumed.
pub fn take_object_set(dec: &mut Decoder<'_>) -> Result<ObjectSet> {
    let len = dec.take_len()?;
    let mut ids = Vec::with_capacity(len);
    for _ in 0..len {
        ids.push(ObjectId(dec.take_u32()?));
    }
    Ok(ids.into_iter().collect())
}

/// Appends a marked frame set as `(frame, marked)` pairs in window order.
pub fn put_frame_set(enc: &mut Encoder, frames: &MarkedFrameSet) {
    enc.put_usize(frames.len());
    for (frame, marked) in frames.iter() {
        enc.put_u64(frame.raw());
        enc.put_bool(marked);
    }
}

/// Reads a marked frame set written by [`put_frame_set`].
pub fn take_frame_set(dec: &mut Decoder<'_>) -> Result<MarkedFrameSet> {
    let len = dec.take_len()?;
    let mut pairs = Vec::with_capacity(len);
    for _ in 0..len {
        let frame = FrameId(dec.take_u64()?);
        let marked = dec.take_bool()?;
        pairs.push((frame, marked));
    }
    Ok(pairs.into_iter().collect())
}

/// Appends an optional frame id.
pub fn put_opt_frame(enc: &mut Encoder, frame: Option<FrameId>) {
    enc.put_opt_u64(frame.map(FrameId::raw));
}

/// Reads an optional frame id.
pub fn take_opt_frame(dec: &mut Decoder<'_>) -> Result<Option<FrameId>> {
    Ok(dec.take_opt_u64()?.map(FrameId))
}

/// Appends the interner's persistent identity: the non-empty arena sets in
/// handle order plus the compaction epoch.
pub fn put_interner(enc: &mut Encoder, interner: &SetInterner) {
    enc.put_usize(interner.len() - 1);
    for set in interner.arena_sets() {
        put_object_set(enc, set);
    }
    enc.put_u64(interner.epoch());
}

/// Rebuilds the arena inside a freshly constructed interner (same class
/// store, same memo policy, nothing interned yet) by re-interning the
/// persisted sets in handle order. Verifies each set lands on the handle it
/// was persisted under — a duplicate or out-of-order arena is corrupt data,
/// and silently re-keying it would detach every handle-keyed map restored
/// afterwards.
pub fn restore_interner(dec: &mut Decoder<'_>, interner: &mut SetInterner) -> Result<()> {
    if interner.len() != 1 {
        return Err(Error::Store(
            "interner restore requires a freshly built interner".into(),
        ));
    }
    let sets = dec.take_len()?;
    for index in 0..sets {
        let set = take_object_set(dec)?;
        let sid = interner.intern(&set);
        if sid.raw() as usize != index + 1 {
            return Err(Error::Corrupt(format!(
                "arena set {} re-interned to handle {} (duplicate or empty set in snapshot)",
                index + 1,
                sid.raw()
            )));
        }
    }
    let epoch = dec.take_u64()?;
    interner.restore_epoch(epoch);
    Ok(())
}

/// Appends the metrics as a count-prefixed ordered `u64` field list.
pub fn put_metrics(enc: &mut Encoder, metrics: &MaintenanceMetrics) {
    let fields = metrics_fields(metrics);
    enc.put_usize(fields.len());
    for value in fields {
        enc.put_u64(value);
    }
}

/// Reads metrics written by [`put_metrics`], rejecting a field-count
/// mismatch (writer and reader disagree about the metrics layout).
pub fn take_metrics(dec: &mut Decoder<'_>) -> Result<MaintenanceMetrics> {
    let mut metrics = MaintenanceMetrics::new();
    let expected = metrics_fields(&metrics).len();
    let count = dec.take_len()?;
    if count != expected {
        return Err(Error::Codec(format!(
            "metrics field count {count} does not match this build's {expected}"
        )));
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(dec.take_u64()?);
    }
    set_metrics_fields(&mut metrics, &values);
    Ok(metrics)
}

macro_rules! metrics_field_list {
    ($($field:ident),* $(,)?) => {
        fn metrics_fields(metrics: &MaintenanceMetrics) -> Vec<u64> {
            vec![$(metrics.$field),*]
        }

        fn set_metrics_fields(metrics: &mut MaintenanceMetrics, values: &[u64]) {
            let mut iter = values.iter().copied();
            $(metrics.$field = iter.next().expect("length checked by take_metrics");)*
        }
    };
}

metrics_field_list!(
    frames_processed,
    states_created,
    states_pruned,
    states_terminated,
    intersections,
    frames_appended,
    states_visited,
    edges_added,
    edges_removed,
    peak_live_states,
    interned_sets,
    arena_bytes,
    bitmap_bytes,
    compactions,
    intersection_cache_hits,
    intersection_cache_misses,
    intersection_cache_resizes,
    intersection_cache_slots,
    tracked_objects,
    class_map_bytes,
    lifecycle_bytes,
    objects_retired,
    generations_started,
    tracks_ended,
    catalog_swaps,
    per_shard_queue_depth,
    feeds_migrated,
    rebalances,
    wal_bytes,
    wal_records,
    snapshots_written,
    snapshot_bytes,
    fsyncs,
    recoveries,
);

/// Test support: metrics with the interner's memo gauges cleared. The memo
/// is a cache and deliberately not persisted, so its hit/miss/size counters
/// drift after recovery while every result stays identical; continuation
/// equality is asserted modulo these four fields.
#[cfg(test)]
pub(crate) fn scrub_cache_gauges(metrics: &MaintenanceMetrics) -> MaintenanceMetrics {
    let mut metrics = metrics.clone();
    metrics.intersection_cache_hits = 0;
    metrics.intersection_cache_misses = 0;
    metrics.intersection_cache_resizes = 0;
    metrics.intersection_cache_slots = 0;
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::shared_class_store;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn frame_set_round_trips_with_marks() {
        let mut frames = MarkedFrameSet::new();
        frames.push(FrameId(3), true);
        frames.push(FrameId(4), false);
        frames.push(FrameId(7), true);
        let mut enc = Encoder::new();
        put_frame_set(&mut enc, &frames);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = take_frame_set(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(
            back.iter().collect::<Vec<_>>(),
            frames.iter().collect::<Vec<_>>()
        );
        assert_eq!(back.marked_count(), 2);
    }

    #[test]
    fn interner_round_trip_reproduces_handles_and_counts() {
        let store = shared_class_store();
        {
            let mut guard = store.write().unwrap();
            for id in 1..=6u32 {
                guard.register(ObjectId(id), tvq_common::ClassId((id % 2) as u16));
            }
        }
        let mut original = SetInterner::with_classes(store.clone());
        let a = original.intern(&set(&[1, 2, 3]));
        let b = original.intern(&set(&[4, 5]));
        let c = original.intersect(a, b);
        assert!(c.is_empty_set());
        let d = original.intern(&set(&[2, 3, 6]));

        let mut enc = Encoder::new();
        put_interner(&mut enc, &original);
        let bytes = enc.into_bytes();

        let mut restored = SetInterner::with_classes(store);
        let mut dec = Decoder::new(&bytes);
        restore_interner(&mut dec, &mut restored).unwrap();
        dec.finish().unwrap();

        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.epoch(), original.epoch());
        assert_eq!(restored.get(&set(&[1, 2, 3])), Some(a));
        assert_eq!(restored.get(&set(&[4, 5])), Some(b));
        assert_eq!(restored.get(&set(&[2, 3, 6])), Some(d));
        assert_eq!(
            restored.universe_object_ids(),
            original.universe_object_ids()
        );
        assert_eq!(
            restored.cached_counts(d).map(|c| (*c).clone()),
            original.cached_counts(d).map(|c| (*c).clone())
        );
        // Fresh intersections agree handle-for-handle.
        assert_eq!(restored.intersect(a, d), original.intersect(a, d));
    }

    #[test]
    fn interner_restore_rejects_duplicate_arena_sets() {
        let mut enc = Encoder::new();
        enc.put_usize(2);
        put_object_set(&mut enc, &set(&[1, 2]));
        put_object_set(&mut enc, &set(&[1, 2]));
        enc.put_u64(0);
        let bytes = enc.into_bytes();
        let mut restored = SetInterner::new();
        let err = restore_interner(&mut Decoder::new(&bytes), &mut restored).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn metrics_round_trip_and_reject_field_count_skew() {
        let mut metrics = MaintenanceMetrics::new();
        metrics.frames_processed = 17;
        metrics.wal_bytes = 1024;
        metrics.recoveries = 2;
        let mut enc = Encoder::new();
        put_metrics(&mut enc, &metrics);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(take_metrics(&mut dec).unwrap(), metrics);
        dec.finish().unwrap();

        let mut enc = Encoder::new();
        enc.put_usize(3);
        for value in [1u64, 2, 3] {
            enc.put_u64(value);
        }
        let bytes = enc.into_bytes();
        let err = take_metrics(&mut Decoder::new(&bytes)).unwrap_err();
        assert!(matches!(err, Error::Codec(_)), "{err}");
    }
}
