//! Runtime switches for the negative-control mutants (only compiled under
//! the `check-mutants` feature; never part of production or tier-1 builds).
//!
//! The mutant suite proves the model checker is not vacuous by
//! re-introducing known bug classes and asserting the checker *finds*
//! them. Several mutants have to coexist in one test binary, and the
//! shortest counterexample of one can shadow another (the checker stops at
//! the first violating level) — so each planted bug gets a process-global
//! toggle the tests flip around their traversal. Defaults preserve the
//! historical behaviour of the bare feature flag: the end-of-track blind
//! spot is armed, everything else is off.

use std::sync::atomic::{AtomicBool, Ordering};

/// Armed by default: `ObjectLifecycle::end_tracks` ignores end events (the
/// pre-PR-5 generation-splice blind spot).
static END_TRACKS_NOOP: AtomicBool = AtomicBool::new(true);

/// Off by default: conformance replay skips retirement on feed 1 only — a
/// deliberately feed-*asymmetric* bug, proving symmetry-reduced traversal
/// still reaches a concrete run that exhibits it.
static ASYMMETRIC_RETIRE: AtomicBool = AtomicBool::new(false);

/// Whether the end-of-track mutant is armed.
pub fn end_tracks_noop() -> bool {
    END_TRACKS_NOOP.load(Ordering::SeqCst)
}

/// Arms or disarms the end-of-track mutant, returning the previous value.
pub fn set_end_tracks_noop(on: bool) -> bool {
    END_TRACKS_NOOP.swap(on, Ordering::SeqCst)
}

/// Whether the feed-asymmetric retirement mutant is armed.
pub fn asymmetric_retire() -> bool {
    ASYMMETRIC_RETIRE.load(Ordering::SeqCst)
}

/// Arms or disarms the feed-asymmetric retirement mutant, returning the
/// previous value.
pub fn set_asymmetric_retire(on: bool) -> bool {
    ASYMMETRIC_RETIRE.swap(on, Ordering::SeqCst)
}
