//! Maintenance metrics.
//!
//! Every state maintainer exposes counters describing the work it performed.
//! The paper's evaluation reasons about *why* MFS and SSG win (fewer states
//! touched, earlier pruning); these counters make that reasoning measurable
//! and drive the ablation benchmarks.

use std::fmt;

/// Counters accumulated by a state maintainer over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceMetrics {
    /// Frames processed through [`advance`](crate::StateMaintainer::advance).
    pub frames_processed: u64,
    /// States (object set + frame set pairs) created.
    pub states_created: u64,
    /// States removed because they became invalid (all key frames expired)
    /// or their frame set emptied.
    pub states_pruned: u64,
    /// States terminated by the query-driven pruning strategy (Section 5.3).
    pub states_terminated: u64,
    /// Object-set intersections computed.
    pub intersections: u64,
    /// Frame identifiers appended to existing states.
    pub frames_appended: u64,
    /// States visited (touched) while processing frames. For MFS/NAIVE this
    /// counts every state scanned per frame; for SSG it counts graph nodes
    /// visited by State Traversal, which is the quantity the graph structure
    /// is designed to reduce.
    pub states_visited: u64,
    /// Edges added to the Strict State Graph (always zero for NAIVE/MFS).
    pub edges_added: u64,
    /// Edges removed from the Strict State Graph.
    pub edges_removed: u64,
    /// Largest number of simultaneously live states observed.
    pub peak_live_states: u64,
    /// Distinct object sets currently held by the maintainer's set interner.
    /// Within one epoch the arena only grows; a compaction epoch shrinks it
    /// back to the live set, so on compacting configurations this plateaus
    /// instead of tracking the lifetime total.
    pub interned_sets: u64,
    /// Approximate bytes held by the interner arena (set payloads plus
    /// per-entry bookkeeping). A gauge, sampled after each frame.
    pub arena_bytes: u64,
    /// Approximate bytes held by the interner's dense bitmaps and universe
    /// map. A gauge, sampled after each frame.
    pub bitmap_bytes: u64,
    /// Interner compaction epochs run so far.
    pub compactions: u64,
    /// Intersections answered from the interner's memo cache.
    pub intersection_cache_hits: u64,
    /// Intersections that missed the memo and ran the word-parallel kernel.
    pub intersection_cache_misses: u64,
    /// Memo resizes (adaptive grows plus compaction shrinks) so far.
    pub intersection_cache_resizes: u64,
    /// Current memo slot count. A gauge, sampled after each frame.
    pub intersection_cache_slots: u64,
    /// Object identifiers the engine currently tracks (holds class-store
    /// references for). A gauge; bounded by the live window on retiring
    /// configurations, monotone otherwise.
    pub tracked_objects: u64,
    /// Approximate bytes held by the shared class store. A gauge — when
    /// several feeds share one store, each feed reports the whole store, so
    /// merged totals over-count (documented in [`merge`](Self::merge)).
    pub class_map_bytes: u64,
    /// Approximate bytes held by the engine's object-lifecycle maps
    /// (tracking set, live bindings, aliases). A gauge.
    pub lifecycle_bytes: u64,
    /// Objects retired at compaction epoch boundaries so far (dropped from
    /// the engine's tracking maps and released from the class store).
    pub objects_retired: u64,
    /// Object generations started: every first sight of an identifier and
    /// every detected reuse (class change, or reappearance after
    /// retirement) starts one.
    pub generations_started: u64,
    /// Explicit tracker end-of-track events applied (only ends that severed
    /// a live binding count).
    pub tracks_ended: u64,
    /// Query-catalog swaps (add/remove-query operations) applied so far.
    pub catalog_swaps: u64,
    /// Largest number of frames queued to a single shard by one batch of the
    /// multi-feed scheduler. A gauge owned by the scheduler (always zero on
    /// single-feed engines); a value far above `frames_processed / batches /
    /// workers` means the feed mix is skewed onto one worker.
    pub per_shard_queue_depth: u64,
    /// Feed migrations executed by the multi-feed scheduler (work-stealing
    /// re-pins plus manual `MultiFeedEngine::migrate_feed` calls).
    /// Scheduler-owned; always zero on single-feed engines.
    pub feeds_migrated: u64,
    /// Rebalance passes that moved at least one feed. Scheduler-owned;
    /// always zero on single-feed engines.
    pub rebalances: u64,
    /// Bytes appended to the write-ahead log (record payloads plus framing).
    /// Store-owned; always zero on non-durable engines.
    pub wal_bytes: u64,
    /// Records appended to the write-ahead log.
    pub wal_records: u64,
    /// Epoch snapshots written so far.
    pub snapshots_written: u64,
    /// Bytes written into snapshot files so far (payload plus framing).
    pub snapshot_bytes: u64,
    /// `fsync` calls issued by the durability store (WAL appends, snapshot
    /// publication, directory syncs).
    pub fsyncs: u64,
    /// Recoveries performed (snapshot load plus WAL tail replay). Normally
    /// 0 or 1 per engine; per-feed on the multi-feed engine, so a merged
    /// report counts every respawned shard's replays.
    pub recoveries: u64,
}

impl MaintenanceMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current number of live states, updating the peak.
    pub fn observe_live_states(&mut self, live: usize) {
        self.peak_live_states = self.peak_live_states.max(live as u64);
    }

    /// Samples the interner-backed gauges (arena size and bytes, bitmap
    /// bytes, memo hit/miss counters). Maintainers call this once per frame
    /// and after every compaction epoch; all reads are O(1).
    pub fn observe_interner(&mut self, interner: &tvq_common::SetInterner) {
        self.interned_sets = interner.len().saturating_sub(1) as u64;
        self.arena_bytes = interner.arena_bytes() as u64;
        self.bitmap_bytes = interner.bitmap_bytes() as u64;
        self.intersection_cache_hits = interner.memo_hits();
        self.intersection_cache_misses = interner.memo_misses();
        self.intersection_cache_resizes = interner.memo_resizes();
        self.intersection_cache_slots = interner.memo_slots() as u64;
    }

    /// Accumulates `other`'s counters into `self`.
    ///
    /// All counters add field-wise, including `peak_live_states` and the
    /// byte gauges (`arena_bytes`, `bitmap_bytes`): per-source peaks need
    /// not coincide in time, so the merged values are *upper bounds* on the
    /// simultaneous totals across sources.
    /// This is the aggregation the multi-feed engine uses to fold per-shard
    /// metrics into one global report; merging is commutative and
    /// associative, and merging into [`MaintenanceMetrics::default`] copies.
    ///
    /// # Example
    ///
    /// ```
    /// use tvq_core::MaintenanceMetrics;
    ///
    /// let mut shard = MaintenanceMetrics::new();
    /// shard.frames_processed = 10;
    /// shard.states_created = 4;
    /// shard.peak_live_states = 3;
    ///
    /// let mut global = MaintenanceMetrics::default();
    /// global.merge(&shard);
    /// global.merge(&shard);
    /// assert_eq!(global.frames_processed, 20);
    /// assert_eq!(global.states_created, 8);
    /// assert_eq!(global.peak_live_states, 6);
    /// ```
    pub fn merge(&mut self, other: &MaintenanceMetrics) {
        self.frames_processed += other.frames_processed;
        self.states_created += other.states_created;
        self.states_pruned += other.states_pruned;
        self.states_terminated += other.states_terminated;
        self.intersections += other.intersections;
        self.frames_appended += other.frames_appended;
        self.states_visited += other.states_visited;
        self.edges_added += other.edges_added;
        self.edges_removed += other.edges_removed;
        self.peak_live_states += other.peak_live_states;
        self.interned_sets += other.interned_sets;
        self.arena_bytes += other.arena_bytes;
        self.bitmap_bytes += other.bitmap_bytes;
        self.compactions += other.compactions;
        self.intersection_cache_hits += other.intersection_cache_hits;
        self.intersection_cache_misses += other.intersection_cache_misses;
        self.intersection_cache_resizes += other.intersection_cache_resizes;
        self.intersection_cache_slots += other.intersection_cache_slots;
        self.tracked_objects += other.tracked_objects;
        self.class_map_bytes += other.class_map_bytes;
        self.lifecycle_bytes += other.lifecycle_bytes;
        self.objects_retired += other.objects_retired;
        self.generations_started += other.generations_started;
        self.tracks_ended += other.tracks_ended;
        self.catalog_swaps += other.catalog_swaps;
        self.per_shard_queue_depth += other.per_shard_queue_depth;
        self.feeds_migrated += other.feeds_migrated;
        self.rebalances += other.rebalances;
        self.wal_bytes += other.wal_bytes;
        self.wal_records += other.wal_records;
        self.snapshots_written += other.snapshots_written;
        self.snapshot_bytes += other.snapshot_bytes;
        self.fsyncs += other.fsyncs;
        self.recoveries += other.recoveries;
    }

    /// Folds an iterator of metrics into one aggregate via [`merge`](Self::merge).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a MaintenanceMetrics>) -> Self {
        let mut total = MaintenanceMetrics::new();
        for part in parts {
            total.merge(part);
        }
        total
    }

    /// Average number of states visited per processed frame.
    pub fn visited_per_frame(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.states_visited as f64 / self.frames_processed as f64
        }
    }
}

impl fmt::Display for MaintenanceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frames={} created={} pruned={} terminated={} intersections={} visited={} edges+={} edges-={} peak={} interned={} arena={}B bitmaps={}B compactions={} cache={}h/{}m/{}r@{} tracked={} classmap={}B lifecycle={}B retired={} generations={} ends={} swaps={} shard_depth={} migrated={} rebalances={} wal={}rec/{}B snapshots={}@{}B fsyncs={} recoveries={}",
            self.frames_processed,
            self.states_created,
            self.states_pruned,
            self.states_terminated,
            self.intersections,
            self.states_visited,
            self.edges_added,
            self.edges_removed,
            self.peak_live_states,
            self.interned_sets,
            self.arena_bytes,
            self.bitmap_bytes,
            self.compactions,
            self.intersection_cache_hits,
            self.intersection_cache_misses,
            self.intersection_cache_resizes,
            self.intersection_cache_slots,
            self.tracked_objects,
            self.class_map_bytes,
            self.lifecycle_bytes,
            self.objects_retired,
            self.generations_started,
            self.tracks_ended,
            self.catalog_swaps,
            self.per_shard_queue_depth,
            self.feeds_migrated,
            self.rebalances,
            self.wal_records,
            self.wal_bytes,
            self.snapshots_written,
            self.snapshot_bytes,
            self.fsyncs,
            self.recoveries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let m = MaintenanceMetrics::new();
        assert_eq!(m.frames_processed, 0);
        assert_eq!(m.visited_per_frame(), 0.0);
        assert_eq!(m.peak_live_states, 0);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut m = MaintenanceMetrics::new();
        m.observe_live_states(5);
        m.observe_live_states(3);
        m.observe_live_states(9);
        assert_eq!(m.peak_live_states, 9);
    }

    #[test]
    fn merge_adds_every_counter() {
        let mut a = MaintenanceMetrics::new();
        a.frames_processed = 1;
        a.states_created = 2;
        a.states_pruned = 3;
        a.states_terminated = 4;
        a.intersections = 5;
        a.frames_appended = 6;
        a.states_visited = 7;
        a.edges_added = 8;
        a.edges_removed = 9;
        a.peak_live_states = 10;
        a.interned_sets = 11;
        a.arena_bytes = 12;
        a.bitmap_bytes = 13;
        a.compactions = 14;
        a.intersection_cache_hits = 15;
        a.intersection_cache_misses = 16;
        a.intersection_cache_resizes = 17;
        a.intersection_cache_slots = 18;
        a.tracked_objects = 19;
        a.class_map_bytes = 20;
        a.lifecycle_bytes = 21;
        a.objects_retired = 22;
        a.generations_started = 23;
        a.tracks_ended = 24;
        a.catalog_swaps = 25;
        a.per_shard_queue_depth = 26;
        a.feeds_migrated = 27;
        a.rebalances = 28;
        a.wal_bytes = 29;
        a.wal_records = 30;
        a.snapshots_written = 31;
        a.snapshot_bytes = 32;
        a.fsyncs = 33;
        a.recoveries = 34;
        let mut b = a.clone();
        b.merge(&a);
        let doubled = MaintenanceMetrics::merged([&a, &a]);
        assert_eq!(b, doubled);
        assert_eq!(doubled.frames_processed, 2);
        assert_eq!(doubled.states_created, 4);
        assert_eq!(doubled.states_pruned, 6);
        assert_eq!(doubled.states_terminated, 8);
        assert_eq!(doubled.intersections, 10);
        assert_eq!(doubled.frames_appended, 12);
        assert_eq!(doubled.states_visited, 14);
        assert_eq!(doubled.edges_added, 16);
        assert_eq!(doubled.edges_removed, 18);
        assert_eq!(doubled.peak_live_states, 20);
        assert_eq!(doubled.interned_sets, 22);
        assert_eq!(doubled.arena_bytes, 24);
        assert_eq!(doubled.bitmap_bytes, 26);
        assert_eq!(doubled.compactions, 28);
        assert_eq!(doubled.intersection_cache_hits, 30);
        assert_eq!(doubled.intersection_cache_misses, 32);
        assert_eq!(doubled.intersection_cache_resizes, 34);
        assert_eq!(doubled.intersection_cache_slots, 36);
        assert_eq!(doubled.tracked_objects, 38);
        assert_eq!(doubled.class_map_bytes, 40);
        assert_eq!(doubled.lifecycle_bytes, 42);
        assert_eq!(doubled.objects_retired, 44);
        assert_eq!(doubled.generations_started, 46);
        assert_eq!(doubled.tracks_ended, 48);
        assert_eq!(doubled.catalog_swaps, 50);
        assert_eq!(doubled.per_shard_queue_depth, 52);
        assert_eq!(doubled.feeds_migrated, 54);
        assert_eq!(doubled.rebalances, 56);
        assert_eq!(doubled.wal_bytes, 58);
        assert_eq!(doubled.wal_records, 60);
        assert_eq!(doubled.snapshots_written, 62);
        assert_eq!(doubled.snapshot_bytes, 64);
        assert_eq!(doubled.fsyncs, 66);
        assert_eq!(doubled.recoveries, 68);
    }

    #[test]
    fn merging_into_default_copies() {
        let mut a = MaintenanceMetrics::new();
        a.frames_processed = 12;
        a.states_visited = 30;
        let merged = MaintenanceMetrics::merged([&a]);
        assert_eq!(merged, a);
        let empty = std::iter::empty::<&MaintenanceMetrics>();
        assert_eq!(MaintenanceMetrics::merged(empty), MaintenanceMetrics::new());
    }

    #[test]
    fn visited_per_frame_divides() {
        let mut m = MaintenanceMetrics::new();
        m.frames_processed = 4;
        m.states_visited = 10;
        assert!((m.visited_per_frame() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_counters() {
        let mut m = MaintenanceMetrics::new();
        m.states_created = 7;
        let text = m.to_string();
        assert!(text.contains("created=7"));
        assert!(text.contains("peak=0"));
        assert!(text.contains("compactions=0"));
        assert!(text.contains("cache=0h/0m/0r@0"));
        assert!(text.contains("tracked=0"));
        assert!(text.contains("retired=0"));
        assert!(text.contains("generations=0"));
        assert!(text.contains("ends=0"));
        assert!(text.contains("swaps=0"));
        assert!(text.contains("shard_depth=0"));
        assert!(text.contains("migrated=0"));
        assert!(text.contains("rebalances=0"));
        assert!(text.contains("wal=0rec/0B"));
        assert!(text.contains("snapshots=0@0B"));
        assert!(text.contains("fsyncs=0"));
        assert!(text.contains("recoveries=0"));
    }
}
