//! Maintenance metrics.
//!
//! Every state maintainer exposes counters describing the work it performed.
//! The paper's evaluation reasons about *why* MFS and SSG win (fewer states
//! touched, earlier pruning); these counters make that reasoning measurable
//! and drive the ablation benchmarks.

use std::fmt;

/// Counters accumulated by a state maintainer over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceMetrics {
    /// Frames processed through [`advance`](crate::StateMaintainer::advance).
    pub frames_processed: u64,
    /// States (object set + frame set pairs) created.
    pub states_created: u64,
    /// States removed because they became invalid (all key frames expired)
    /// or their frame set emptied.
    pub states_pruned: u64,
    /// States terminated by the query-driven pruning strategy (Section 5.3).
    pub states_terminated: u64,
    /// Object-set intersections computed.
    pub intersections: u64,
    /// Frame identifiers appended to existing states.
    pub frames_appended: u64,
    /// States visited (touched) while processing frames. For MFS/NAIVE this
    /// counts every state scanned per frame; for SSG it counts graph nodes
    /// visited by State Traversal, which is the quantity the graph structure
    /// is designed to reduce.
    pub states_visited: u64,
    /// Edges added to the Strict State Graph (always zero for NAIVE/MFS).
    pub edges_added: u64,
    /// Edges removed from the Strict State Graph.
    pub edges_removed: u64,
    /// Largest number of simultaneously live states observed.
    pub peak_live_states: u64,
}

impl MaintenanceMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current number of live states, updating the peak.
    pub fn observe_live_states(&mut self, live: usize) {
        self.peak_live_states = self.peak_live_states.max(live as u64);
    }

    /// Average number of states visited per processed frame.
    pub fn visited_per_frame(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.states_visited as f64 / self.frames_processed as f64
        }
    }
}

impl fmt::Display for MaintenanceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frames={} created={} pruned={} terminated={} intersections={} visited={} edges+={} edges-={} peak={}",
            self.frames_processed,
            self.states_created,
            self.states_pruned,
            self.states_terminated,
            self.intersections,
            self.states_visited,
            self.edges_added,
            self.edges_removed,
            self.peak_live_states
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let m = MaintenanceMetrics::new();
        assert_eq!(m.frames_processed, 0);
        assert_eq!(m.visited_per_frame(), 0.0);
        assert_eq!(m.peak_live_states, 0);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut m = MaintenanceMetrics::new();
        m.observe_live_states(5);
        m.observe_live_states(3);
        m.observe_live_states(9);
        assert_eq!(m.peak_live_states, 9);
    }

    #[test]
    fn visited_per_frame_divides() {
        let mut m = MaintenanceMetrics::new();
        m.frames_processed = 4;
        m.states_visited = 10;
        assert!((m.visited_per_frame() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_counters() {
        let mut m = MaintenanceMetrics::new();
        m.states_created = 7;
        let text = m.to_string();
        assert!(text.contains("created=7"));
        assert!(text.contains("peak=0"));
    }
}
