//! The Result State Set relayed to query evaluation.
//!
//! Per Section 4.3.7 of the paper, the MCOS Generation module hands the
//! Query Evaluation module the set of states that are both *satisfied*
//! (frame set at least as long as the duration threshold) and *valid*
//! (their object set is an MCOS of their frame set). [`ResultStateSet`]
//! holds that per-window snapshot in a canonical, order-independent form so
//! that the three maintainers can be compared state-for-state.

use std::collections::BTreeMap;

use tvq_common::{FrameId, MarkedFrameSet, ObjectSet};

use crate::state::State;

/// A satisfied, valid state as reported to the query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultState {
    /// The maximum co-occurrence object set.
    pub objects: ObjectSet,
    /// The window frames in which it co-occurs.
    pub frames: Vec<FrameId>,
}

/// The set of satisfied, valid states of the current window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResultStateSet {
    states: BTreeMap<ObjectSet, Vec<FrameId>>,
}

impl ResultStateSet {
    /// Creates an empty result set.
    pub fn new() -> Self {
        ResultStateSet {
            states: BTreeMap::new(),
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.states.clear();
    }

    /// Inserts (or replaces) a result state.
    pub fn insert(&mut self, objects: ObjectSet, frames: &MarkedFrameSet) {
        self.states.insert(objects, frames.frames().collect());
    }

    /// Inserts a result state from a [`State`].
    pub fn insert_state(&mut self, state: &State) {
        self.insert(state.objects.clone(), &state.frames);
    }

    /// Number of result states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The frame set reported for a given object set, if present.
    pub fn frames_of(&self, objects: &ObjectSet) -> Option<&[FrameId]> {
        self.states.get(objects).map(Vec::as_slice)
    }

    /// Whether an object set is part of the results.
    pub fn contains(&self, objects: &ObjectSet) -> bool {
        self.states.contains_key(objects)
    }

    /// Iterates over results in a deterministic (object-set) order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectSet, &[FrameId])> {
        self.states.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Materialises the results as owned [`ResultState`] values.
    pub fn to_vec(&self) -> Vec<ResultState> {
        self.states
            .iter()
            .map(|(objects, frames)| ResultState {
                objects: objects.clone(),
                frames: frames.clone(),
            })
            .collect()
    }

    /// The object sets only, in deterministic order — the common currency for
    /// comparing maintainers, since frame sets are compared separately.
    pub fn object_sets(&self) -> Vec<ObjectSet> {
        self.states.keys().cloned().collect()
    }
}

impl FromIterator<(ObjectSet, Vec<FrameId>)> for ResultStateSet {
    fn from_iter<T: IntoIterator<Item = (ObjectSet, Vec<FrameId>)>>(iter: T) -> Self {
        ResultStateSet {
            states: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    fn frames(ids: &[u64]) -> MarkedFrameSet {
        ids.iter().map(|&f| (FrameId(f), false)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut rs = ResultStateSet::new();
        rs.insert(set(&[1, 2]), &frames(&[0, 1, 2]));
        assert_eq!(rs.len(), 1);
        assert!(rs.contains(&set(&[2, 1])));
        assert_eq!(
            rs.frames_of(&set(&[1, 2])).unwrap(),
            &[FrameId(0), FrameId(1), FrameId(2)]
        );
        assert!(rs.frames_of(&set(&[3])).is_none());
    }

    #[test]
    fn insert_replaces_existing_entry() {
        let mut rs = ResultStateSet::new();
        rs.insert(set(&[1]), &frames(&[0]));
        rs.insert(set(&[1]), &frames(&[0, 1]));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.frames_of(&set(&[1])).unwrap().len(), 2);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut rs = ResultStateSet::new();
        rs.insert(set(&[3]), &frames(&[2]));
        rs.insert(set(&[1, 2]), &frames(&[0]));
        rs.insert(set(&[1]), &frames(&[1]));
        let keys: Vec<ObjectSet> = rs.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(rs.object_sets(), sorted);
    }

    #[test]
    fn clear_empties_the_set() {
        let mut rs = ResultStateSet::new();
        rs.insert(set(&[1]), &frames(&[0]));
        rs.clear();
        assert!(rs.is_empty());
        assert_eq!(rs.to_vec().len(), 0);
    }

    #[test]
    fn insert_state_uses_state_parts() {
        let state = State::new(set(&[4, 5]), frames(&[1, 2, 3]));
        let mut rs = ResultStateSet::new();
        rs.insert_state(&state);
        assert_eq!(rs.frames_of(&set(&[4, 5])).unwrap().len(), 3);
    }
}
