//! The Result State Set relayed to query evaluation.
//!
//! Per Section 4.3.7 of the paper, the MCOS Generation module hands the
//! Query Evaluation module the set of states that are both *satisfied*
//! (frame set at least as long as the duration threshold) and *valid*
//! (their object set is an MCOS of their frame set). [`ResultStateSet`]
//! holds that per-window snapshot in a canonical, order-independent form so
//! that the three maintainers can be compared state-for-state.
//!
//! When the producing maintainer runs on top of a
//! [`SetInterner`](tvq_common::SetInterner) with a class source, each entry
//! also carries the interner's cached [`ClassCounts`] for its object set, so
//! the CNF evaluator downstream skips the per-frame histogram rebuild.
//! Cached counts are an evaluation accelerator, not part of the result
//! semantics: equality between result sets ignores them.

use std::collections::BTreeMap;
use std::sync::Arc;

use tvq_common::{ClassCounts, FrameId, MarkedFrameSet, ObjectSet};

use crate::state::State;

/// A satisfied, valid state as reported to the query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultState {
    /// The maximum co-occurrence object set.
    pub objects: ObjectSet,
    /// The window frames in which it co-occurs.
    pub frames: Vec<FrameId>,
}

/// One result entry: the state's frame set plus (optionally) the class
/// counts cached by the producing maintainer's interner. The frame set is
/// `Arc`-shared so downstream consumers (one `QueryMatch` per satisfied
/// query) reference it without re-allocating.
#[derive(Debug, Clone)]
struct Entry {
    frames: Arc<[FrameId]>,
    counts: Option<Arc<ClassCounts>>,
}

/// The set of satisfied, valid states of the current window.
#[derive(Debug, Clone, Default)]
pub struct ResultStateSet {
    states: BTreeMap<ObjectSet, Entry>,
}

impl ResultStateSet {
    /// Creates an empty result set.
    pub fn new() -> Self {
        ResultStateSet {
            states: BTreeMap::new(),
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.states.clear();
    }

    /// Inserts (or replaces) a result state.
    pub fn insert(&mut self, objects: ObjectSet, frames: &MarkedFrameSet) {
        self.insert_with_counts(objects, frames, None);
    }

    /// Inserts (or replaces) a result state together with the class counts
    /// its producer has cached for the object set.
    pub fn insert_with_counts(
        &mut self,
        objects: ObjectSet,
        frames: &MarkedFrameSet,
        counts: Option<Arc<ClassCounts>>,
    ) {
        self.states.insert(
            objects,
            Entry {
                frames: frames.frames().collect(),
                counts,
            },
        );
    }

    /// Inserts a result state from a [`State`].
    pub fn insert_state(&mut self, state: &State) {
        self.insert(state.objects.clone(), &state.frames);
    }

    /// Number of result states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The frame set reported for a given object set, if present.
    pub fn frames_of(&self, objects: &ObjectSet) -> Option<&[FrameId]> {
        self.states.get(objects).map(|e| &*e.frames)
    }

    /// Whether an object set is part of the results.
    pub fn contains(&self, objects: &ObjectSet) -> bool {
        self.states.contains_key(objects)
    }

    /// Iterates over results in a deterministic (object-set) order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectSet, &[FrameId])> {
        self.states.iter().map(|(k, e)| (k, &*e.frames))
    }

    /// Iterates over results including the `Arc`-shared frame set and the
    /// cached class counts (when the producing maintainer had an interner
    /// with a class source).
    pub fn iter_with_counts(
        &self,
    ) -> impl Iterator<Item = (&ObjectSet, &Arc<[FrameId]>, Option<&Arc<ClassCounts>>)> {
        self.states
            .iter()
            .map(|(k, e)| (k, &e.frames, e.counts.as_ref()))
    }

    /// Materialises the results as owned [`ResultState`] values.
    pub fn to_vec(&self) -> Vec<ResultState> {
        self.states
            .iter()
            .map(|(objects, entry)| ResultState {
                objects: objects.clone(),
                frames: entry.frames.to_vec(),
            })
            .collect()
    }

    /// The object sets only, in deterministic order — the common currency for
    /// comparing maintainers, since frame sets are compared separately.
    pub fn object_sets(&self) -> Vec<ObjectSet> {
        self.states.keys().cloned().collect()
    }
}

/// Result sets compare by their semantic content — object sets and frame
/// sets — ignoring cached class counts, so maintainers with and without an
/// interner class source remain comparable state-for-state.
impl PartialEq for ResultStateSet {
    fn eq(&self, other: &Self) -> bool {
        self.states.len() == other.states.len()
            && self
                .states
                .iter()
                .zip(other.states.iter())
                .all(|((set_a, a), (set_b, b))| set_a == set_b && a.frames == b.frames)
    }
}

impl Eq for ResultStateSet {}

impl FromIterator<(ObjectSet, Vec<FrameId>)> for ResultStateSet {
    fn from_iter<T: IntoIterator<Item = (ObjectSet, Vec<FrameId>)>>(iter: T) -> Self {
        ResultStateSet {
            states: iter
                .into_iter()
                .map(|(objects, frames)| {
                    (
                        objects,
                        Entry {
                            frames: frames.into(),
                            counts: None,
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tvq_common::ClassId;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    fn frames(ids: &[u64]) -> MarkedFrameSet {
        ids.iter().map(|&f| (FrameId(f), false)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut rs = ResultStateSet::new();
        rs.insert(set(&[1, 2]), &frames(&[0, 1, 2]));
        assert_eq!(rs.len(), 1);
        assert!(rs.contains(&set(&[2, 1])));
        assert_eq!(
            rs.frames_of(&set(&[1, 2])).unwrap(),
            &[FrameId(0), FrameId(1), FrameId(2)]
        );
        assert!(rs.frames_of(&set(&[3])).is_none());
    }

    #[test]
    fn insert_replaces_existing_entry() {
        let mut rs = ResultStateSet::new();
        rs.insert(set(&[1]), &frames(&[0]));
        rs.insert(set(&[1]), &frames(&[0, 1]));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.frames_of(&set(&[1])).unwrap().len(), 2);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut rs = ResultStateSet::new();
        rs.insert(set(&[3]), &frames(&[2]));
        rs.insert(set(&[1, 2]), &frames(&[0]));
        rs.insert(set(&[1]), &frames(&[1]));
        let keys: Vec<ObjectSet> = rs.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(rs.object_sets(), sorted);
    }

    #[test]
    fn clear_empties_the_set() {
        let mut rs = ResultStateSet::new();
        rs.insert(set(&[1]), &frames(&[0]));
        rs.clear();
        assert!(rs.is_empty());
        assert_eq!(rs.to_vec().len(), 0);
    }

    #[test]
    fn insert_state_uses_state_parts() {
        let state = State::new(set(&[4, 5]), frames(&[1, 2, 3]));
        let mut rs = ResultStateSet::new();
        rs.insert_state(&state);
        assert_eq!(rs.frames_of(&set(&[4, 5])).unwrap().len(), 3);
    }

    #[test]
    fn cached_counts_are_exposed_but_ignored_by_equality() {
        let counts = Arc::new(ClassCounts::from_map(HashMap::from([(ClassId(1), 2)])));
        let mut with_counts = ResultStateSet::new();
        with_counts.insert_with_counts(set(&[1, 2]), &frames(&[0, 1]), Some(Arc::clone(&counts)));
        let mut without = ResultStateSet::new();
        without.insert(set(&[1, 2]), &frames(&[0, 1]));

        assert_eq!(with_counts, without, "counts must not affect equality");
        let cached: Vec<_> = with_counts
            .iter_with_counts()
            .map(|(_, _, c)| c.cloned())
            .collect();
        assert_eq!(cached.len(), 1);
        assert_eq!(cached[0].as_deref(), Some(&*counts));
        let uncached: Vec<_> = without.iter_with_counts().map(|(_, _, c)| c).collect();
        assert!(uncached[0].is_none());
    }

    #[test]
    fn equality_detects_frame_set_differences() {
        let mut a = ResultStateSet::new();
        a.insert(set(&[1]), &frames(&[0]));
        let mut b = ResultStateSet::new();
        b.insert(set(&[1]), &frames(&[0, 1]));
        assert_ne!(a, b);
        let mut c = ResultStateSet::new();
        c.insert(set(&[2]), &frames(&[0]));
        assert_ne!(a, c);
    }
}
