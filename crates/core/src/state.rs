//! States: the unit of intermediate materialisation in MCOS generation.
//!
//! A state pairs a co-occurrence object set with the (marked) set of window
//! frames in which it co-occurs (Definition 3 of the paper). A state is
//! *valid* when its object set is a maximum co-occurrence object set of its
//! frame set — which, per Theorems 1 and 4, the maintainers detect as "at
//! least one frame is still marked". A state is *satisfied* when its frame
//! set meets the query duration threshold.

use tvq_common::{FrameId, MarkedFrameSet, ObjectSet, WindowSpec};

/// A state: an object set plus the marked frame set in which it co-occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// The co-occurrence object set.
    pub objects: ObjectSet,
    /// The frames of the current window in which the object set co-occurs;
    /// marked frames are key frames (Definition 4).
    pub frames: MarkedFrameSet,
}

impl State {
    /// Creates a state from its parts.
    pub fn new(objects: ObjectSet, frames: MarkedFrameSet) -> Self {
        State { objects, frames }
    }

    /// Creates a state holding a single frame.
    pub fn singleton(objects: ObjectSet, frame: FrameId, marked: bool) -> Self {
        State {
            objects,
            frames: MarkedFrameSet::singleton(frame, marked),
        }
    }

    /// A state is valid when at least one of its frames is marked (Theorem 1
    /// for MFS, Theorem 4 for SSG).
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.frames.has_marked()
    }

    /// A state is satisfied when its frame set meets the duration threshold.
    #[inline]
    pub fn is_satisfied(&self, spec: &WindowSpec) -> bool {
        spec.satisfies_duration(self.frames.len())
    }

    /// Removes expired frames; returns how many were dropped.
    pub fn expire_before(&mut self, oldest_valid: FrameId) -> usize {
        self.frames.expire_before(oldest_valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn validity_follows_marks() {
        let mut s = State::singleton(set(&[1, 2]), FrameId(0), true);
        assert!(s.is_valid());
        s.expire_before(FrameId(1));
        assert!(!s.is_valid());
    }

    #[test]
    fn satisfaction_follows_duration() {
        let spec = WindowSpec::new(10, 3).unwrap();
        let mut s = State::singleton(set(&[1]), FrameId(0), true);
        assert!(!s.is_satisfied(&spec));
        s.frames.push(FrameId(1), false);
        s.frames.push(FrameId(2), false);
        assert!(s.is_satisfied(&spec));
    }

    #[test]
    fn expiry_reports_dropped_count() {
        let mut s = State::new(
            set(&[1]),
            [(FrameId(0), true), (FrameId(1), false), (FrameId(2), true)]
                .into_iter()
                .collect(),
        );
        assert_eq!(s.expire_before(FrameId(2)), 2);
        assert_eq!(s.frames.len(), 1);
        assert!(s.is_valid());
    }
}
