//! Query-driven state termination (Section 5.3 of the paper).
//!
//! When every registered query uses only `>=` predicates, Proposition 1
//! guarantees that a state whose MCOS fails every query can never produce a
//! satisfying subset: all of its descendants can be skipped. The maintainers
//! accept an optional [`StatePruner`] and consult it whenever a new state is
//! created; states the pruner rejects are *terminated* — never extended,
//! never reported.
//!
//! The concrete pruner that evaluates CNF queries lives in the query crate;
//! this module only defines the interface plus simple implementations used
//! for tests and ablations.

use tvq_common::{ClassCounts, ObjectSet};

/// Decides whether a freshly created state can be terminated.
///
/// Implementations must be *monotone downwards*: if `should_terminate(x)` is
/// `true` it must also be `true` for every subset of `x`, otherwise
/// terminating the state (and thereby suppressing its descendants) would be
/// unsound. The ≥-only CNF pruner has this property by Proposition 1.
pub trait StatePruner {
    /// Returns `true` when a state with this object set (interpreted as its
    /// MCOS) can never satisfy any registered query, nor can any subset.
    fn should_terminate(&self, objects: &ObjectSet) -> bool;

    /// Variant consulted by interner-backed maintainers: when the set's
    /// class counts are already cached, a query-driven pruner can decide
    /// from them directly and skip re-aggregating the object set. The
    /// default ignores the counts and defers to
    /// [`should_terminate`](Self::should_terminate); the verdict must be
    /// identical either way.
    fn should_terminate_with(&self, objects: &ObjectSet, counts: Option<&ClassCounts>) -> bool {
        let _ = counts;
        self.should_terminate(objects)
    }
}

/// Per-handle cache of a pruner's verdicts, shared by the MFS and SSG
/// maintainers.
///
/// Both polarities are cached: a set's class counts are fixed at intern
/// time, so a pruner's verdict for a given handle is stable and each set is
/// judged at most once. The stability argument leans on the object
/// lifecycle's invariant that **an internal object id's class is immutable
/// for its lifetime**: tracker-id reuse with a different class mints a
/// fresh internal id (so the reused id lands in *different* sets with
/// *different* handles), and a post-retirement reappearance re-interns its
/// sets under fresh handles whose counts are re-aggregated from the
/// re-resolved class — in both cases [`judge`](Self::judge) runs afresh
/// instead of trusting a verdict formed under the stale class. The
/// [`remap`](Self::remap) step closes the loop by dropping verdicts for
/// retired handles at every compaction epoch.
#[derive(Debug, Default)]
pub struct PrunerVerdictCache {
    terminated: tvq_common::FxHashSet<tvq_common::SetId>,
    cleared: tvq_common::FxHashSet<tvq_common::SetId>,
}

impl PrunerVerdictCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PrunerVerdictCache::default()
    }

    /// Whether the handle was previously judged hopeless.
    pub fn is_terminated(&self, sid: tvq_common::SetId) -> bool {
        self.terminated.contains(&sid)
    }

    /// Number of handles judged hopeless so far.
    pub fn terminated_len(&self) -> usize {
        self.terminated.len()
    }

    /// Forgets every cached verdict. Called when the *pruner itself*
    /// changed (the engine swapped its query catalog): verdicts formed
    /// under the old query set are no longer valid in either polarity, so
    /// every live handle is re-judged lazily on its next visit. Terminated
    /// states that the new catalog would keep stay terminated — termination
    /// already dropped them from the maintainer — which is exactly the
    /// documented convergence contract for query *additions* (full
    /// equivalence after one window turnover); for removals, forgetting
    /// verdicts only ever *widens* pruning, which Proposition 1 makes
    /// invisible to surviving queries.
    pub fn clear(&mut self) {
        // Negative-control mutant: skips the clear-on-catalog-swap, so a
        // verdict computed under one catalog version keeps being consulted
        // under the next. Exists solely so the model checker's mutant suite
        // can prove it *catches* this class of bug; never enabled by
        // production or tier-1 builds.
        if cfg!(feature = "check-mutants") {
            return;
        }
        self.terminated.clear();
        self.cleared.clear();
    }

    /// Re-keys the cache through a compaction epoch's remap table: verdicts
    /// for handles that survived move to the new handles, verdicts for
    /// retired handles are dropped (a retired set that reappears is
    /// re-interned and re-judged — the pruner is deterministic, so the
    /// verdict is identical, at the cost of one re-evaluation).
    pub fn remap(&mut self, table: &tvq_common::RemapTable) {
        self.terminated = self
            .terminated
            .iter()
            .filter_map(|&sid| table.remap(sid))
            .collect();
        self.cleared = self
            .cleared
            .iter()
            .filter_map(|&sid| table.remap(sid))
            .collect();
    }

    /// Returns the cached verdict for `sid`, consulting `pruner` on a cache
    /// miss (passing the interner's cached class counts so query-driven
    /// pruners skip re-aggregation). Counts a fresh termination in
    /// `states_terminated`.
    pub fn judge(
        &mut self,
        pruner: &(dyn StatePruner + Send + Sync),
        interner: &tvq_common::SetInterner,
        sid: tvq_common::SetId,
        states_terminated: &mut u64,
    ) -> bool {
        if self.terminated.contains(&sid) {
            return true;
        }
        if self.cleared.contains(&sid) {
            return false;
        }
        let counts = interner.cached_counts(sid);
        if pruner.should_terminate_with(interner.resolve(sid), counts.as_deref()) {
            self.terminated.insert(sid);
            *states_terminated += 1;
            true
        } else {
            self.cleared.insert(sid);
            false
        }
    }
}

/// A pruner that never terminates anything (the `*_E` method variants).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverPrune;

impl StatePruner for NeverPrune {
    fn should_terminate(&self, _objects: &ObjectSet) -> bool {
        false
    }
}

/// A pruner that terminates states smaller than a fixed number of objects.
///
/// This is the simplest sound pruner (cardinality is monotone): it mirrors a
/// query workload consisting solely of `class >= n` conditions whose total
/// object demand is `min_objects`. Used by unit tests and ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct MinCardinalityPruner {
    /// States with fewer objects than this are terminated.
    pub min_objects: usize,
}

impl StatePruner for MinCardinalityPruner {
    fn should_terminate(&self, objects: &ObjectSet) -> bool {
        objects.len() < self.min_objects
    }
}

/// Boxed pruner handle shared by the maintainers.
pub type SharedPruner = std::sync::Arc<dyn StatePruner + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn never_prune_keeps_everything() {
        let p = NeverPrune;
        assert!(!p.should_terminate(&ObjectSet::empty()));
        assert!(!p.should_terminate(&set(&[1, 2, 3])));
    }

    #[test]
    fn min_cardinality_is_downward_monotone() {
        let p = MinCardinalityPruner { min_objects: 3 };
        assert!(p.should_terminate(&set(&[1, 2])));
        assert!(!p.should_terminate(&set(&[1, 2, 3])));
        // Downward monotone: any subset of a terminated set is terminated.
        assert!(p.should_terminate(&set(&[1])));
        assert!(p.should_terminate(&ObjectSet::empty()));
    }

    #[test]
    fn shared_pruner_is_object_safe() {
        let p: SharedPruner = std::sync::Arc::new(MinCardinalityPruner { min_objects: 2 });
        assert!(p.should_terminate(&set(&[9])));
        assert!(!p.should_terminate(&set(&[9, 10])));
    }
}
