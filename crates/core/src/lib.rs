//! MCOS generation for temporal queries over video feeds.
//!
//! This crate implements the paper's primary contribution — the *MCOS
//! Generation* layer of the architecture in Figure 2. Given the structured
//! relation produced by object detection/tracking, it maintains, over a
//! sliding window, the set of **maximum co-occurrence object sets** (MCOS):
//! object sets that appear jointly in a set of frames such that no strict
//! superset appears in the same frames. Downstream, CNF queries are evaluated
//! over these MCOS (see the `tvq-query` crate).
//!
//! Three interchangeable strategies implement the [`StateMaintainer`] trait:
//!
//! * [`NaiveMaintainer`] — the paper's NAIVE baseline: keep every object set
//!   with its frame set, establish the MCOS property at result-collection
//!   time.
//! * [`MfsMaintainer`] — the Marked Frame Set approach (Section 4.2): track
//!   key frames per state so that invalid states are pruned as soon as their
//!   key frames expire.
//! * [`SsgMaintainer`] — the Strict State Graph approach (Section 4.3): keep
//!   states in a subset graph rooted at the principal states and process new
//!   frames with the State Traversal algorithm, skipping whole subtrees that
//!   share no object with the arriving frame.
//!
//! A brute-force [`reference`](mod@reference) oracle pins down the intended semantics and is
//! used by the differential tests; [`prune::StatePruner`] is the hook through
//! which the query layer terminates hopeless states (Section 5.3).
//!
//! # Example
//!
//! ```
//! use tvq_common::{FrameId, ObjectSet, WindowSpec};
//! use tvq_core::{MaintainerKind, StateMaintainer};
//!
//! // Identify object sets that co-occur in at least 2 of the last 3 frames.
//! let spec = WindowSpec::new(3, 2).unwrap();
//! let mut maintainer = MaintainerKind::Ssg.build(spec);
//! let frames = [
//!     ObjectSet::from_raw([1, 2]),
//!     ObjectSet::from_raw([1, 2, 3]),
//!     ObjectSet::from_raw([2, 3]),
//! ];
//! for (i, objects) in frames.iter().enumerate() {
//!     maintainer.advance(FrameId(i as u64), objects).unwrap();
//! }
//! assert!(maintainer.results().contains(&ObjectSet::from_raw([2, 3])));
//! assert!(maintainer.results().contains(&ObjectSet::from_raw([1, 2])));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compaction;
pub mod lifecycle;
pub mod maintainer;
pub mod metrics;
pub mod mfs;
#[cfg(feature = "check-mutants")]
pub mod mutants;
pub mod naive;
pub mod prune;
pub mod reference;
pub mod result_set;
pub mod snapshot;
pub mod ssg;
pub mod state;

pub use compaction::{CompactionOutcome, CompactionPolicy};
pub use lifecycle::{LiveBinding, ObjectLifecycle};
pub use maintainer::{MaintainerKind, StateMaintainer};
pub use metrics::MaintenanceMetrics;
pub use mfs::MfsMaintainer;
pub use naive::NaiveMaintainer;
pub use prune::{MinCardinalityPruner, NeverPrune, PrunerVerdictCache, SharedPruner, StatePruner};
pub use reference::{mcos_of_window, ReferenceMaintainer};
pub use result_set::{ResultState, ResultStateSet};
pub use ssg::SsgMaintainer;
pub use state::State;
