//! Brute-force reference oracle.
//!
//! Recomputes, for every window, the full intersection closure of the
//! window's frame object sets and derives the maximum co-occurrence object
//! sets from first principles (Definitions 1 and 2 of the paper). The cost is
//! exponential in the number of distinct frame object sets, so this oracle is
//! only suitable for small windows — it exists to pin down the *semantics*
//! that NAIVE, MFS and SSG must all agree with, and is used heavily by the
//! differential tests.

use std::collections::{HashSet, VecDeque};

use tvq_common::{FrameId, MarkedFrameSet, ObjectSet, Result, WindowSpec};

use crate::maintainer::{check_order, StateMaintainer};
use crate::metrics::MaintenanceMetrics;
use crate::result_set::ResultStateSet;

/// Computes every maximum co-occurrence object set of the given window
/// content, together with its full frame set, keeping only those that appear
/// in at least `duration` frames.
///
/// An object set is reported iff it equals the intersection of the object
/// sets of all frames in which it appears (which is exactly the MCOS
/// condition: no strict superset shares its frame set).
pub fn mcos_of_window(
    window: &[(FrameId, ObjectSet)],
    duration: usize,
) -> Vec<(ObjectSet, Vec<FrameId>)> {
    // Intersection closure of the frame object sets.
    let mut closure: HashSet<ObjectSet> = HashSet::new();
    for (_, objects) in window {
        if !objects.is_empty() {
            closure.insert(objects.clone());
        }
    }
    loop {
        let snapshot: Vec<ObjectSet> = closure.iter().cloned().collect();
        let mut grew = false;
        for (_, objects) in window {
            for existing in &snapshot {
                let inter = existing.intersect(objects);
                if !inter.is_empty() && closure.insert(inter) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    let mut results = Vec::new();
    for candidate in closure {
        let frames: Vec<FrameId> = window
            .iter()
            .filter(|(_, objects)| candidate.is_subset_of(objects))
            .map(|&(fid, _)| fid)
            .collect();
        if frames.len() < duration {
            continue;
        }
        // MCOS check: the candidate must equal the intersection of all frames
        // it appears in; otherwise that intersection is a strict superset with
        // the same frame set.
        let mut tightest: Option<ObjectSet> = None;
        for (fid, objects) in window {
            if frames.binary_search(fid).is_ok() {
                tightest = Some(match tightest {
                    None => objects.clone(),
                    Some(prev) => prev.intersect(objects),
                });
            }
        }
        if tightest.as_ref() == Some(&candidate) {
            results.push((candidate, frames));
        }
    }
    results.sort_by(|a, b| a.0.cmp(&b.0));
    results
}

/// A [`StateMaintainer`] wrapper around [`mcos_of_window`], recomputing the
/// result set from scratch on every frame.
#[derive(Debug)]
pub struct ReferenceMaintainer {
    spec: WindowSpec,
    window: VecDeque<(FrameId, ObjectSet)>,
    results: ResultStateSet,
    metrics: MaintenanceMetrics,
    last_frame: Option<FrameId>,
}

impl ReferenceMaintainer {
    /// Creates a reference maintainer for the given window specification.
    pub fn new(spec: WindowSpec) -> Self {
        ReferenceMaintainer {
            spec,
            window: VecDeque::new(),
            results: ResultStateSet::new(),
            metrics: MaintenanceMetrics::new(),
            last_frame: None,
        }
    }
}

impl StateMaintainer for ReferenceMaintainer {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn advance(&mut self, frame: FrameId, objects: &ObjectSet) -> Result<()> {
        check_order(self.last_frame, frame)?;
        self.last_frame = Some(frame);
        self.metrics.frames_processed += 1;

        let oldest = self.spec.oldest_valid(frame);
        while matches!(self.window.front(), Some(&(fid, _)) if fid < oldest) {
            self.window.pop_front();
        }
        self.window.push_back((frame, objects.clone()));

        let window: Vec<(FrameId, ObjectSet)> = self.window.iter().cloned().collect();
        let mcos = mcos_of_window(&window, self.spec.duration());
        self.metrics.observe_live_states(mcos.len());
        self.results.clear();
        for (objects, frames) in mcos {
            let marked: MarkedFrameSet = frames.into_iter().map(|f| (f, true)).collect();
            self.results.insert(objects, &marked);
        }
        Ok(())
    }

    fn results(&self) -> &ResultStateSet {
        &self.results
    }

    fn metrics(&self) -> &MaintenanceMetrics {
        &self.metrics
    }

    fn live_states(&self) -> usize {
        self.results.len()
    }

    fn name(&self) -> &'static str {
        "REFERENCE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    fn window(frames: &[(u64, &[u32])]) -> Vec<(FrameId, ObjectSet)> {
        frames
            .iter()
            .map(|&(fid, objs)| (FrameId(fid), set(objs)))
            .collect()
    }

    /// The running example of Section 2: frames ({B},{ABC},{ABDF},{ABCF},{ABD}),
    /// duration 3 in a window of 5 → MCOSs {B} and {AB}.
    /// Objects are encoded as A=1, B=2, C=3, D=4, F=6.
    #[test]
    fn section_2_example_duration_3() {
        let w = window(&[
            (0, &[2]),
            (1, &[1, 2, 3]),
            (2, &[1, 2, 4, 6]),
            (3, &[1, 2, 3, 6]),
            (4, &[1, 2, 4]),
        ]);
        let results = mcos_of_window(&w, 3);
        let sets: Vec<ObjectSet> = results.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&set(&[2])), "{{B}} expected in {sets:?}");
        assert!(sets.contains(&set(&[1, 2])), "{{AB}} expected in {sets:?}");
        assert_eq!(sets.len(), 2);
        // Frame sets reported are the full appearance sets.
        let b_frames = &results.iter().find(|(s, _)| *s == set(&[2])).unwrap().1;
        assert_eq!(b_frames.len(), 5);
        let ab_frames = &results.iter().find(|(s, _)| *s == set(&[1, 2])).unwrap().1;
        assert_eq!(
            ab_frames,
            &vec![FrameId(1), FrameId(2), FrameId(3), FrameId(4)]
        );
    }

    /// Relaxing the duration to 2 adds {ABC}, {ABD} and {ABF} (Section 2).
    #[test]
    fn section_2_example_duration_2() {
        let w = window(&[
            (0, &[2]),
            (1, &[1, 2, 3]),
            (2, &[1, 2, 4, 6]),
            (3, &[1, 2, 3, 6]),
            (4, &[1, 2, 4]),
        ]);
        let results = mcos_of_window(&w, 2);
        let sets: Vec<ObjectSet> = results.iter().map(|(s, _)| s.clone()).collect();
        for expected in [
            set(&[2]),
            set(&[1, 2]),
            set(&[1, 2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 2, 6]),
        ] {
            assert!(sets.contains(&expected), "missing {expected:?} in {sets:?}");
        }
        assert_eq!(sets.len(), 5);
    }

    #[test]
    fn empty_window_has_no_mcos() {
        assert!(mcos_of_window(&[], 1).is_empty());
        let w = window(&[(0, &[]), (1, &[])]);
        assert!(mcos_of_window(&w, 1).is_empty());
    }

    #[test]
    fn single_frame_yields_its_object_set() {
        let w = window(&[(7, &[1, 2, 3])]);
        let results = mcos_of_window(&w, 1);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, set(&[1, 2, 3]));
        assert_eq!(results[0].1, vec![FrameId(7)]);
    }

    #[test]
    fn duration_filters_short_lived_sets() {
        let w = window(&[(0, &[1, 2]), (1, &[1]), (2, &[1])]);
        // {1,2} appears once, {1} appears three times.
        let results = mcos_of_window(&w, 2);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, set(&[1]));
    }

    #[test]
    fn maintainer_window_slides() {
        let spec = WindowSpec::new(2, 1).unwrap();
        let mut m = ReferenceMaintainer::new(spec);
        m.advance(FrameId(0), &set(&[1, 2])).unwrap();
        m.advance(FrameId(1), &set(&[2, 3])).unwrap();
        assert!(m.results().contains(&set(&[2])));
        m.advance(FrameId(2), &set(&[3])).unwrap();
        // Frame 0 has expired: {1,2} is gone, {3} spans frames 1-2.
        assert!(!m.results().contains(&set(&[1, 2])));
        assert_eq!(m.results().frames_of(&set(&[3])).unwrap().len(), 2);
    }

    #[test]
    fn maintainer_rejects_out_of_order_frames() {
        let spec = WindowSpec::new(4, 1).unwrap();
        let mut m = ReferenceMaintainer::new(spec);
        m.advance(FrameId(5), &set(&[1])).unwrap();
        assert!(m.advance(FrameId(5), &set(&[1])).is_err());
        assert!(m.advance(FrameId(4), &set(&[1])).is_err());
    }
}
