//! The Strict State Graph (SSG) approach with State Traversal (Section 4.3).
//!
//! SSG organises the states of the current window in a directed graph whose
//! roots are the *principal states* — states whose object set equals the
//! object set of some in-window frame. Every other state is generated from
//! principal states by intersection, directly or transitively, so processing
//! a new frame only requires traversing the graph from the principal states
//! and *stopping as soon as an intersection becomes empty*: whole subtrees of
//! states that share nothing with the arriving frame are skipped, which is
//! the source of SSG's advantage over MFS on feeds with many distinct object
//! sets per window.
//!
//! The implementation follows the paper's procedures:
//!
//! * **Graph Maintenance Procedure / Algorithm 1 (ST)** — [`SsgMaintainer`]
//!   traverses from each principal state, appends the arriving frame to
//!   states fully contained in it, materialises missing intersection states,
//!   and skips subtrees with empty intersections.
//! * **Modifying Existing Edges (4.3.4) and Property 2** — performed by
//!   `StateGraph::attach`.
//! * **Connecting the New Principal State / Algorithm 2 (CNPS)** — candidates
//!   (one per principal state) are sorted by object-set size and connected to
//!   the new principal unless already reachable.
//! * **State Marking Procedure (4.3.6)** — marks are produced from two sound
//!   sources: frames whose own object set pins a state down (principal-state
//!   creation frames whose intersection with the arriving frame equals the
//!   state), and marks inherited from parent states when a state is derived
//!   from them. Both preserve the *suffix-intersection invariant*: a frame
//!   `f` is only marked in state `X` when the intersection of the object sets
//!   of all of `X`'s frames from `f` onward equals `X`, so as long as one
//!   marked frame survives in the window the state is guaranteed to still be
//!   an MCOS (Theorem 4). When every marked frame has expired the state is
//!   pruned.
//!
//! Two deliberate deviations from the paper's pseudocode, both documented in
//! DESIGN.md: (1) when an already-materialised state is re-derived from a
//! second parent, its frame set is merged with the parent's so frame sets
//! stay complete (the union of all windows frames containing the object
//! set); (2) invalid nodes are removed after the traversal, reconnecting
//! their parents to their children, so reachability from principal states is
//! preserved.

mod graph;

use tvq_common::{
    Decoder, Encoder, Error, FrameId, FxHashSet, ObjectSet, RemapTable, Result, SetId, SetInterner,
    WindowSpec,
};

use crate::compaction::{CompactionOutcome, CompactionPolicy};
use crate::maintainer::{check_order, StateMaintainer};
use crate::metrics::MaintenanceMetrics;
use crate::prune::{PrunerVerdictCache, SharedPruner};
use crate::result_set::ResultStateSet;
use crate::snapshot;

use graph::{NodeId, StateGraph};

/// The Strict State Graph state maintainer.
///
/// The graph index, the termination cache and every traversal comparison
/// operate on interned [`SetId`] handles; the repeated `parent ∩ frame`
/// intersections of the traversal cascade are answered from the interner's
/// memo after their first occurrence.
pub struct SsgMaintainer {
    spec: WindowSpec,
    interner: SetInterner,
    graph: StateGraph,
    /// Principal states in their order of arrival (kept while alive).
    roots: Vec<NodeId>,
    results: ResultStateSet,
    /// Handles of the states reported in `results` (revalidated first on the
    /// next frame — the `SR'_i` part of `SR_{i'} = SR'_i ∪ SR_{G'}`).
    prev_results: Vec<SetId>,
    metrics: MaintenanceMetrics,
    pruner: Option<SharedPruner>,
    verdicts: PrunerVerdictCache,
    last_frame: Option<FrameId>,
    frames_since_sweep: usize,
    /// Reusable buffers for the traversal's child snapshots (one per
    /// recursion depth), so `visit_children` never allocates in steady state.
    child_scratch: Vec<Vec<NodeId>>,
    /// Pooled per-frame buffers (touched list, root snapshot, CNPS
    /// candidates, principal-mark copies, CNPS reachability set + DFS
    /// stack): cleared and reused so the steady-state advance loop performs
    /// no transient allocations.
    touched_scratch: Vec<NodeId>,
    roots_scratch: Vec<NodeId>,
    candidates_scratch: Vec<NodeId>,
    marks_scratch: Vec<FrameId>,
    cnps_reachable: FxHashSet<NodeId>,
    cnps_stack: Vec<NodeId>,
}

impl std::fmt::Debug for SsgMaintainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsgMaintainer")
            .field("spec", &self.spec)
            .field("live_states", &self.graph.len())
            .field("principal_states", &self.roots.len())
            .finish()
    }
}

impl SsgMaintainer {
    /// Creates an SSG maintainer for the given window specification, with a
    /// private interner (no class source).
    pub fn new(spec: WindowSpec) -> Self {
        SsgMaintainer::with_interner(spec, SetInterner::new())
    }

    /// Creates an SSG maintainer around a caller-provided interner (the
    /// engine wires one per feed, sharing its object → class map so result
    /// states carry precomputed class counts).
    pub fn with_interner(spec: WindowSpec, interner: SetInterner) -> Self {
        SsgMaintainer {
            spec,
            interner,
            graph: StateGraph::new(),
            roots: Vec::new(),
            results: ResultStateSet::new(),
            prev_results: Vec::new(),
            metrics: MaintenanceMetrics::new(),
            pruner: None,
            verdicts: PrunerVerdictCache::new(),
            last_frame: None,
            frames_since_sweep: 0,
            child_scratch: Vec::new(),
            touched_scratch: Vec::new(),
            roots_scratch: Vec::new(),
            candidates_scratch: Vec::new(),
            marks_scratch: Vec::new(),
            cnps_reachable: FxHashSet::default(),
            cnps_stack: Vec::new(),
        }
    }

    /// Creates the `SSG_O` variant (Section 5.3): new states are checked
    /// against the pruner and terminated when hopeless.
    pub fn with_pruner(spec: WindowSpec, pruner: SharedPruner) -> Self {
        SsgMaintainer::with_pruner_and_interner(spec, pruner, SetInterner::new())
    }

    /// The `SSG_O` variant around a caller-provided interner.
    pub fn with_pruner_and_interner(
        spec: WindowSpec,
        pruner: SharedPruner,
        interner: SetInterner,
    ) -> Self {
        let mut maintainer = SsgMaintainer::with_interner(spec, interner);
        maintainer.pruner = Some(pruner);
        maintainer
    }

    /// Number of principal states currently tracked.
    pub fn principal_states(&self) -> usize {
        self.roots.len()
    }

    /// Read access to the maintainer's interner (arena and memo statistics).
    pub fn interner(&self) -> &SetInterner {
        &self.interner
    }

    /// Re-keys every handle-held structure — graph nodes, the handle index,
    /// the revalidation list and the verdict cache — through a compaction
    /// epoch's remap table. [`StateMaintainer::maybe_compact`] is the
    /// normal entry point.
    pub fn remap(&mut self, table: &RemapTable) {
        self.graph.remap(table);
        for sid in &mut self.prev_results {
            *sid = table
                .remap(*sid)
                .expect("result states are live graph nodes");
        }
        self.prev_results.sort_unstable();
        self.verdicts.remap(table);
    }

    /// Exposes the live states (object set, frames, marked frames) for tests.
    pub fn states(&self) -> Vec<(ObjectSet, Vec<(FrameId, bool)>)> {
        self.graph
            .live_ids()
            .into_iter()
            .map(|id| {
                let node = self.graph.node(id);
                (node.set.clone(), node.frames.iter().collect())
            })
            .collect()
    }

    fn is_terminated(&self, sid: SetId) -> bool {
        self.verdicts.is_terminated(sid)
    }

    /// Consults the pruner for a new object set via the shared per-handle
    /// verdict cache.
    fn terminate_if_hopeless(&mut self, sid: SetId) -> bool {
        let Some(pruner) = &self.pruner else {
            return false;
        };
        self.verdicts.judge(
            pruner.as_ref(),
            &self.interner,
            sid,
            &mut self.metrics.states_terminated,
        )
    }

    /// Ensures a state with the interned object set `sid` exists, is
    /// attached under `parent`, and carries the arriving frame. Returns its
    /// id unless the set is terminated.
    fn ensure_state(
        &mut self,
        sid: SetId,
        parent: NodeId,
        frame: FrameId,
        oldest: FrameId,
        touched: &mut Vec<NodeId>,
    ) -> Option<NodeId> {
        if sid.is_empty_set() || sid == self.graph.node(parent).sid {
            return None;
        }
        if self.is_terminated(sid) {
            return None;
        }
        let id = match self.graph.id_of(sid) {
            Some(id) => id,
            None => {
                if self.terminate_if_hopeless(sid) {
                    return None;
                }
                let id = self.graph.insert(sid, self.interner.resolve(sid).clone());
                self.metrics.states_created += 1;
                touched.push(id);
                id
            }
        };
        if self.graph.node(id).touched != frame.raw() {
            self.graph.node_mut(id).frames.expire_before(oldest);
            self.graph.node_mut(id).frames.push(frame, false);
            self.graph.node_mut(id).touched = frame.raw();
            self.metrics.frames_appended += 1;
            touched.push(id);
        }
        // Frame-set completeness and Rule-2 mark inheritance: the parent's
        // frames all contain the parent's object set, hence this subset too.
        let (target, source) = self.graph.pair_mut(id, parent);
        target.frames.merge_from(&source.frames);
        self.graph.attach(parent, id, &self.interner);
        Some(id)
    }

    /// State Traversal (Algorithm 1), visiting `node` with `p_inter` being the
    /// intersection of the parent state with the arriving frame (whose
    /// interned object set is `frame_sid`).
    #[allow(clippy::too_many_arguments)]
    fn st_visit(
        &mut self,
        node: NodeId,
        parent: Option<NodeId>,
        p_inter: SetId,
        frame: FrameId,
        frame_sid: SetId,
        ns: NodeId,
        oldest: FrameId,
        touched: &mut Vec<NodeId>,
    ) {
        if !self.graph.node(node).alive || self.graph.node(node).visited == frame.raw() {
            return;
        }
        self.graph.node_mut(node).visited = frame.raw();
        touched.push(node);
        self.metrics.states_visited += 1;

        let node_sid = self.graph.node(node).sid;
        self.metrics.intersections += 1;
        let inter = self.interner.intersect(node_sid, frame_sid);
        self.graph.node_mut(node).last_inter = inter;

        if inter.is_empty_set() {
            // No descendant of this node can intersect the frame either, but
            // the parent's intersection may still need to be materialised
            // (lines 5-8 of Algorithm 1).
            if let (Some(parent), false) = (parent, p_inter.is_empty_set()) {
                if p_inter != frame_sid {
                    self.ensure_state(p_inter, parent, frame, oldest, touched);
                }
            }
            return;
        }

        // Lines 11-16: the parent's intersection is strictly larger than ours,
        // so this subtree cannot represent it; materialise it under the parent.
        if let Some(parent) = parent {
            if !p_inter.is_empty_set()
                && self.interner.len_of(p_inter) > self.interner.len_of(inter)
                && p_inter != frame_sid
            {
                self.ensure_state(p_inter, parent, frame, oldest, touched);
            }
        }

        if inter == node_sid {
            // The whole state co-occurs in the arriving frame: append it
            // (lines 18-21) and inherit the parent's frames when the parent's
            // intersection is exactly this state (line 19).
            if self.graph.node(node).touched != frame.raw() {
                self.graph.node_mut(node).frames.push(frame, false);
                self.graph.node_mut(node).touched = frame.raw();
                self.metrics.frames_appended += 1;
            }
            if let Some(parent) = parent {
                if p_inter == node_sid {
                    let (target, source) = self.graph.pair_mut(node, parent);
                    target.frames.merge_from(&source.frames);
                }
            }
            self.visit_children(node, inter, frame, frame_sid, ns, oldest, touched);
        } else if inter == frame_sid {
            // The arriving frame's object set is a proper subset of this
            // state: the new principal co-occurs in all of this state's frames
            // (lines 22-24).
            if ns != node {
                let (target, source) = self.graph.pair_mut(ns, node);
                target.frames.merge_from(&source.frames);
            }
            self.graph.attach(node, ns, &self.interner);
            self.visit_children(node, inter, frame, frame_sid, ns, oldest, touched);
        } else {
            // A proper, new intersection: descend first (a child subtree may
            // already own it), then make sure it exists under this node
            // (lines 25-29).
            self.visit_children(node, inter, frame, frame_sid, ns, oldest, touched);
            self.ensure_state(inter, node, frame, oldest, touched);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_children(
        &mut self,
        node: NodeId,
        inter: SetId,
        frame: FrameId,
        frame_sid: SetId,
        ns: NodeId,
        oldest: FrameId,
        touched: &mut Vec<NodeId>,
    ) {
        // Snapshot: the traversal below may attach new children to `node`,
        // and those must not be revisited within this frame. The snapshot
        // buffer is pooled per recursion depth, so steady-state traversal
        // performs no allocation here.
        let mut children = self.child_scratch.pop().unwrap_or_default();
        children.clear();
        children.extend_from_slice(&self.graph.node(node).children);
        for &child in &children {
            self.st_visit(
                child,
                Some(node),
                inter,
                frame,
                frame_sid,
                ns,
                oldest,
                touched,
            );
        }
        self.child_scratch.push(children);
    }

    /// CNPS (Algorithm 2): connect the new principal state to the candidate
    /// states derived from each principal, largest object set first, skipping
    /// candidates already reachable from the new principal.
    fn connect_new_principal(&mut self, ns: NodeId) {
        let mut ordered = std::mem::take(&mut self.candidates_scratch);
        ordered.sort_by_key(|&id| std::cmp::Reverse(self.graph.node(id).set.len()));
        ordered.dedup();
        self.cnps_reachable.clear();
        for &candidate in &ordered {
            if candidate == ns || !self.graph.node(candidate).alive {
                continue;
            }
            if self.cnps_reachable.contains(&candidate) {
                continue;
            }
            self.graph.attach(ns, candidate, &self.interner);
            // Incremental DFS: regions already known to be reachable are not
            // re-traversed, so the whole CNPS pass is bounded by the size of
            // the subgraph below the new principal.
            self.cnps_stack.clear();
            self.cnps_stack.push(candidate);
            self.cnps_reachable.insert(candidate);
            while let Some(id) = self.cnps_stack.pop() {
                for &child in &self.graph.node(id).children {
                    if self.graph.node(child).alive && self.cnps_reachable.insert(child) {
                        self.cnps_stack.push(child);
                    }
                }
            }
        }
        ordered.clear();
        self.candidates_scratch = ordered;
    }

    /// Removes invalid (unmarked) touched nodes and refreshes root
    /// bookkeeping. This pass owns window expiry for visited nodes: the
    /// traversal itself never expires (merges tolerate stale frames; they
    /// are trimmed here before validity is judged).
    fn prune_touched(&mut self, touched: &[NodeId], oldest: FrameId) {
        for &id in touched {
            if !self.graph.node(id).alive {
                continue;
            }
            self.graph.node_mut(id).frames.expire_before(oldest);
            if !self.graph.node(id).frames.has_marked() {
                self.remove_node(id);
            }
        }
    }

    fn remove_node(&mut self, id: NodeId) {
        self.graph.remove(id, &self.interner);
        self.metrics.states_pruned += 1;
        if let Some(pos) = self.roots.iter().position(|&r| r == id) {
            self.roots.remove(pos);
        }
    }

    /// Periodic full sweep: expires frames of nodes that were never visited
    /// recently and drops the ones that became invalid. Bounds memory between
    /// traversals without paying a full scan on every frame.
    fn sweep(&mut self, oldest: FrameId) {
        for id in self.graph.live_ids() {
            self.graph.node_mut(id).frames.expire_before(oldest);
            Self::expire_principal_frames(self.graph.node_mut(id), oldest);
            if !self.graph.node(id).frames.has_marked() {
                self.remove_node(id);
            }
        }
    }

    /// Drops expired principal-creation frames: the deque is ascending, so
    /// this pops the front in O(expired) rather than re-scanning the list.
    fn expire_principal_frames(node: &mut graph::Node, oldest: FrameId) {
        while node.principal_frames.front().is_some_and(|&f| f < oldest) {
            node.principal_frames.pop_front();
        }
    }

    fn collect_results(&mut self, touched: &[NodeId], oldest: FrameId) {
        // SR_{i'} = SR'_i ∪ SR_{G'}: previously satisfied states are
        // revalidated (by handle — no set hashing), newly touched states are
        // examined. Buffers are pooled: `candidates_scratch` is free after
        // CNPS, and the result set / id list are rebuilt in place.
        let mut candidates = std::mem::take(&mut self.candidates_scratch);
        candidates.clear();
        for &sid in &self.prev_results {
            if let Some(id) = self.graph.id_of(sid) {
                candidates.push(id);
            }
        }
        candidates.extend_from_slice(touched);

        self.results.clear();
        self.prev_results.clear();
        for id in candidates.drain(..) {
            if !self.graph.node(id).alive {
                continue;
            }
            self.graph.node_mut(id).frames.expire_before(oldest);
            let node = self.graph.node(id);
            if node.frames.has_marked() && self.spec.satisfies_duration(node.frames.len()) {
                self.results.insert_with_counts(
                    node.set.clone(),
                    &node.frames,
                    self.interner.cached_counts(node.sid),
                );
                self.prev_results.push(node.sid);
            }
        }
        self.candidates_scratch = candidates;
        self.prev_results.sort_unstable();
        self.prev_results.dedup();
    }
}

impl StateMaintainer for SsgMaintainer {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn advance(&mut self, frame: FrameId, objects: &ObjectSet) -> Result<()> {
        check_order(self.last_frame, frame)?;
        self.last_frame = Some(frame);
        self.metrics.frames_processed += 1;
        let oldest = self.spec.oldest_valid(frame);

        self.frames_since_sweep += 1;
        if self.frames_since_sweep >= self.spec.window() {
            self.sweep(oldest);
            self.frames_since_sweep = 0;
        }

        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        let frame_sid = self.interner.intern(objects);

        if !frame_sid.is_empty_set()
            && !self.is_terminated(frame_sid)
            && !self.terminate_if_hopeless(frame_sid)
        {
            // The arriving frame's own object set becomes (or stays) the new
            // principal state.
            let ns = match self.graph.id_of(frame_sid) {
                Some(id) => id,
                None => {
                    let id = self.graph.insert(frame_sid, objects.clone());
                    self.metrics.states_created += 1;
                    id
                }
            };
            {
                let node = self.graph.node_mut(ns);
                node.frames.expire_before(oldest);
                node.frames.push(frame, true);
                node.touched = frame.raw();
                Self::expire_principal_frames(node, oldest);
                node.principal_frames.push_back(frame);
            }
            touched.push(ns);

            // State Traversal from every principal state in arrival order.
            // Traversing the new principal first extends its existing
            // descendants (they are all subsets of the arriving frame).
            let mut roots_snapshot = std::mem::take(&mut self.roots_scratch);
            roots_snapshot.clear();
            roots_snapshot.push(ns);
            roots_snapshot.extend_from_slice(&self.roots);
            self.candidates_scratch.clear();
            for &root in &roots_snapshot {
                if !self.graph.node(root).alive {
                    continue;
                }
                self.st_visit(
                    root,
                    None,
                    SetId::EMPTY,
                    frame,
                    frame_sid,
                    ns,
                    oldest,
                    &mut touched,
                );
                // Candidate for CNPS plus principal-based marking: the state
                // holding this principal's intersection with the new frame is
                // pinned down by the principal's creation frames. The
                // traversal above just visited this root, so its intersection
                // with the frame is already recorded on the node.
                let candidate_sid = self.graph.node(root).last_inter;
                if candidate_sid.is_empty_set() {
                    continue;
                }
                if let Some(candidate) = self.graph.id_of(candidate_sid) {
                    self.candidates_scratch.push(candidate);
                    // Copy the creation frames into the pooled scratch (the
                    // candidate may be the root itself, so the marks cannot
                    // be applied while borrowing its frame list).
                    self.marks_scratch.clear();
                    self.marks_scratch
                        .extend(self.graph.node(root).principal_frames.iter().copied());
                    let candidate_node = self.graph.node_mut(candidate);
                    for &f in &self.marks_scratch {
                        if f >= oldest {
                            candidate_node.frames.mark(f);
                        }
                    }
                }
            }
            roots_snapshot.clear();
            self.roots_scratch = roots_snapshot;
            self.connect_new_principal(ns);
            if !self.roots.contains(&ns) {
                self.roots.push(ns);
            }
        }

        // Drop principal status of roots whose creating frames all expired and
        // prune nodes invalidated by this frame's expiry. Index loop: the
        // expiry only touches graph nodes, never the root list itself.
        for index in 0..self.roots.len() {
            let root = self.roots[index];
            if self.graph.node(root).alive {
                Self::expire_principal_frames(self.graph.node_mut(root), oldest);
            }
        }
        // A node can be pushed several times per frame (visit + state
        // creation + frame append); dedup so the pruning and result passes
        // process each once.
        touched.sort_unstable();
        touched.dedup();
        self.prune_touched(&touched, oldest);
        self.metrics.edges_added = self.graph.edges_added;
        self.metrics.edges_removed = self.graph.edges_removed;
        self.metrics.observe_live_states(self.graph.len());
        self.metrics.observe_interner(&self.interner);
        self.collect_results(&touched, oldest);
        touched.clear();
        self.touched_scratch = touched;
        Ok(())
    }

    fn results(&self) -> &ResultStateSet {
        &self.results
    }

    fn metrics(&self) -> &MaintenanceMetrics {
        &self.metrics
    }

    fn live_states(&self) -> usize {
        self.graph.len()
    }

    fn name(&self) -> &'static str {
        if self.pruner.is_some() {
            "SSG_O"
        } else {
            "SSG"
        }
    }

    fn maybe_compact(&mut self, policy: &CompactionPolicy) -> Option<CompactionOutcome> {
        if !policy.should_compact(self.graph.len() + 1, self.interner.len()) {
            return None;
        }
        let live = self.graph.live_sids();
        let mut table = self.interner.compact(&live);
        self.remap(&table);
        self.metrics.compactions += 1;
        self.metrics.observe_interner(&self.interner);
        Some(CompactionOutcome {
            epoch: table.epoch(),
            retired_sets: table.retired(),
            retired_objects: table.take_retired_objects(),
        })
    }

    fn pruner_changed(&mut self) {
        self.verdicts.clear();
    }

    fn snapshot_state(&self, enc: &mut Encoder) -> Result<()> {
        snapshot::put_interner(enc, &self.interner);
        snapshot::put_opt_frame(enc, self.last_frame);
        enc.put_usize(self.frames_since_sweep);
        self.graph.encode(enc);
        enc.put_usize(self.roots.len());
        for &root in &self.roots {
            enc.put_usize(root);
        }
        enc.put_usize(self.prev_results.len());
        for &sid in &self.prev_results {
            snapshot::put_set_id(enc, sid);
        }
        snapshot::put_metrics(enc, &self.metrics);
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<()> {
        if self.last_frame.is_some() || self.graph.len() != 0 || self.interner.len() != 1 {
            return Err(Error::Store(
                "SSG restore requires a freshly built maintainer".into(),
            ));
        }
        snapshot::restore_interner(dec, &mut self.interner)?;
        self.last_frame = snapshot::take_opt_frame(dec)?;
        self.frames_since_sweep = dec.take_usize()?;
        self.graph = StateGraph::decode(dec, &self.interner)?;
        let root_count = dec.take_len()?;
        let mut roots = Vec::with_capacity(root_count);
        for _ in 0..root_count {
            let root = dec.take_usize()?;
            if !self.graph.is_alive(root) || roots.contains(&root) {
                return Err(Error::Corrupt(format!(
                    "root list entry {root} is not a distinct live graph node"
                )));
            }
            roots.push(root);
        }
        self.roots = roots;
        let result_count = dec.take_len()?;
        let mut prev_results = Vec::with_capacity(result_count);
        for _ in 0..result_count {
            let sid = snapshot::take_set_id(dec)?;
            if self.graph.id_of(sid).is_none() {
                return Err(Error::Corrupt(format!(
                    "result list references handle {} with no live graph node",
                    sid.raw()
                )));
            }
            prev_results.push(sid);
        }
        prev_results.sort_unstable();
        prev_results.dedup();
        self.prev_results = prev_results;
        self.metrics = snapshot::take_metrics(dec)?;
        // `results` stays empty: the next frame's collect_results revalidates
        // `prev_results` by handle, reproducing the reported set exactly.
        // Verdicts are re-judged lazily under the live catalog.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::MinCardinalityPruner;
    use std::sync::Arc;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    /// Objects of the paper's running example: A=1, B=2, C=3, D=4, F=6.
    fn paper_frames() -> Vec<ObjectSet> {
        vec![
            set(&[2]),
            set(&[1, 2, 3]),
            set(&[1, 2, 4, 6]),
            set(&[1, 2, 3, 6]),
            set(&[1, 2, 4]),
        ]
    }

    /// SSG must produce exactly the satisfied MCOS of Table 1's EXP column.
    #[test]
    fn paper_example_results_match_table_1() {
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut m = SsgMaintainer::new(spec);
        let frames = paper_frames();

        m.advance(FrameId(0), &frames[0]).unwrap();
        assert!(m.results().is_empty());
        m.advance(FrameId(1), &frames[1]).unwrap();
        assert!(m.results().is_empty());
        m.advance(FrameId(2), &frames[2]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[2])]);
        m.advance(FrameId(3), &frames[3]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2]), set(&[2])]);
        m.advance(FrameId(4), &frames[4]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2])]);
        // The reported frame set covers all frames where {A,B} co-occur.
        assert_eq!(
            m.results().frames_of(&set(&[1, 2])).unwrap(),
            &[FrameId(1), FrameId(2), FrameId(3), FrameId(4)]
        );
    }

    #[test]
    fn principal_states_track_window_frames() {
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut m = SsgMaintainer::new(spec);
        let frames = paper_frames();
        for (i, frame) in frames.iter().enumerate() {
            m.advance(FrameId(i as u64), frame).unwrap();
        }
        // After frame 4 the graph holds the states of Table 2 (without {B});
        // the principal states are the distinct in-window frame object sets.
        assert!(m.principal_states() >= 4);
        let sets: Vec<ObjectSet> = m.states().into_iter().map(|(s, _)| s).collect();
        assert!(sets.contains(&set(&[1, 2])));
        assert!(sets.contains(&set(&[1, 2, 4])));
        assert!(!sets.contains(&set(&[2])), "invalid {{B}} must be pruned");
    }

    #[test]
    fn matches_mfs_on_the_paper_example_for_all_durations() {
        for duration in 1..=4 {
            let spec = WindowSpec::new(4, duration).unwrap();
            let mut ssg = SsgMaintainer::new(spec);
            let mut mfs = crate::mfs::MfsMaintainer::new(spec);
            for (i, frame) in paper_frames().iter().enumerate() {
                ssg.advance(FrameId(i as u64), frame).unwrap();
                mfs.advance(FrameId(i as u64), frame).unwrap();
                assert_eq!(
                    ssg.results().object_sets(),
                    mfs.results().object_sets(),
                    "mismatch at frame {i} with duration {duration}"
                );
            }
        }
    }

    #[test]
    fn empty_frames_and_disjoint_objects() {
        let spec = WindowSpec::new(3, 1).unwrap();
        let mut m = SsgMaintainer::new(spec);
        m.advance(FrameId(0), &ObjectSet::empty()).unwrap();
        m.advance(FrameId(1), &set(&[1, 2])).unwrap();
        m.advance(FrameId(2), &set(&[7, 8])).unwrap();
        assert!(m.results().contains(&set(&[1, 2])));
        assert!(m.results().contains(&set(&[7, 8])));
        m.advance(FrameId(3), &set(&[7, 8])).unwrap();
        m.advance(FrameId(4), &set(&[7, 8])).unwrap();
        // {1,2} has left the window.
        assert!(!m.results().contains(&set(&[1, 2])));
        assert_eq!(
            m.results().frames_of(&set(&[7, 8])).unwrap(),
            &[FrameId(2), FrameId(3), FrameId(4)]
        );
    }

    #[test]
    fn termination_suppresses_hopeless_states() {
        let spec = WindowSpec::new(4, 1).unwrap();
        let pruner = Arc::new(MinCardinalityPruner { min_objects: 2 });
        let mut m = SsgMaintainer::with_pruner(spec, pruner);
        m.advance(FrameId(0), &set(&[1, 2])).unwrap();
        m.advance(FrameId(1), &set(&[2, 3])).unwrap();
        // {2} = {1,2} ∩ {2,3} is hopeless and never materialised.
        assert!(!m.results().contains(&set(&[2])));
        assert!(m.results().contains(&set(&[1, 2])));
        assert!(m.results().contains(&set(&[2, 3])));
        assert_eq!(m.metrics().states_terminated, 1);
        assert_eq!(m.name(), "SSG_O");
    }

    #[test]
    fn rejects_out_of_order_frames() {
        let spec = WindowSpec::new(4, 1).unwrap();
        let mut m = SsgMaintainer::new(spec);
        m.advance(FrameId(1), &set(&[1])).unwrap();
        assert!(m.advance(FrameId(1), &set(&[1])).is_err());
        assert!(m.advance(FrameId(0), &set(&[1])).is_err());
    }

    #[test]
    fn repeated_identical_frames_stay_compact() {
        let spec = WindowSpec::new(10, 5).unwrap();
        let mut m = SsgMaintainer::new(spec);
        for i in 0..50u64 {
            m.advance(FrameId(i), &set(&[1, 2, 3])).unwrap();
        }
        // Only one state is ever needed.
        assert_eq!(m.live_states(), 1);
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2, 3])]);
        assert_eq!(m.results().frames_of(&set(&[1, 2, 3])).unwrap().len(), 10);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut original = SsgMaintainer::new(spec);
        let patterns = paper_frames();
        for (i, frame) in patterns.iter().cycle().take(9).enumerate() {
            original.advance(FrameId(i as u64), frame).unwrap();
        }

        let mut enc = Encoder::new();
        original.snapshot_state(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut restored = SsgMaintainer::new(spec);
        let mut dec = Decoder::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(restored.live_states(), original.live_states());
        assert_eq!(restored.principal_states(), original.principal_states());
        assert_eq!(restored.states(), original.states());
        assert_eq!(restored.metrics(), original.metrics());
        for (i, frame) in patterns.iter().cycle().take(25).enumerate().skip(9) {
            original.advance(FrameId(i as u64), frame).unwrap();
            restored.advance(FrameId(i as u64), frame).unwrap();
            assert_eq!(
                restored.results(),
                original.results(),
                "diverged at frame {i}"
            );
        }
        // Memo gauges drift (the intersection cache is not persisted); every
        // other counter must agree.
        assert_eq!(
            snapshot::scrub_cache_gauges(restored.metrics()),
            snapshot::scrub_cache_gauges(original.metrics())
        );
    }

    #[test]
    fn restore_rejects_used_maintainers_and_dangling_roots() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut original = SsgMaintainer::new(spec);
        original.advance(FrameId(0), &set(&[1, 2])).unwrap();
        let mut enc = Encoder::new();
        original.snapshot_state(&mut enc).unwrap();
        let bytes = enc.into_bytes();

        // A maintainer that already advanced refuses to restore.
        let mut used = SsgMaintainer::new(spec);
        used.advance(FrameId(0), &set(&[9])).unwrap();
        assert!(used.restore_state(&mut Decoder::new(&bytes)).is_err());

        // A root entry naming no live graph node is corrupt, not a panic.
        let mut enc = Encoder::new();
        snapshot::put_interner(&mut enc, original.interner());
        snapshot::put_opt_frame(&mut enc, Some(FrameId(0)));
        enc.put_usize(1); // frames_since_sweep
        original.graph.encode(&mut enc);
        enc.put_usize(1);
        enc.put_usize(17); // dangling root slot
        enc.put_usize(0); // no previous results
        snapshot::put_metrics(&mut enc, original.metrics());
        let bytes = enc.into_bytes();
        let mut fresh = SsgMaintainer::new(spec);
        let err = fresh.restore_state(&mut Decoder::new(&bytes)).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn long_run_prunes_expired_states() {
        // Disjoint bursts: states from old bursts must eventually disappear
        // even if never visited again (periodic sweep).
        let spec = WindowSpec::new(5, 2).unwrap();
        let mut m = SsgMaintainer::new(spec);
        for i in 0..100u64 {
            let objects = set(&[(i / 10) as u32 * 2, (i / 10) as u32 * 2 + 1]);
            m.advance(FrameId(i), &objects).unwrap();
        }
        assert!(
            m.live_states() <= 3,
            "stale states retained: {}",
            m.live_states()
        );
    }
}
