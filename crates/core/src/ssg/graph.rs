//! The Strict State Graph structure.
//!
//! Nodes are states (object set + marked frame set); a directed edge
//! `(s, s')` records that `s'` was generated from `s`, which implies
//! `IDs' ⊂ IDs` (Property 1). Among the children of any node, no child's
//! object set may contain another child's object set (Property 2) — the
//! [`StateGraph::attach`] operation enforces both properties, rewiring edges
//! exactly as described in Section 4.3.4 of the paper.

use std::collections::HashMap;

use tvq_common::{FrameId, MarkedFrameSet, ObjectSet};

/// Index of a node inside the graph's slab.
pub(crate) type NodeId = usize;

/// Sentinel for "never visited".
pub(crate) const NEVER: u64 = u64::MAX;

/// A node of the Strict State Graph.
#[derive(Debug)]
pub(crate) struct Node {
    /// The state's object set.
    pub set: ObjectSet,
    /// The state's marked frame set.
    pub frames: MarkedFrameSet,
    /// Children: states generated from this one (proper subsets).
    pub children: Vec<NodeId>,
    /// Parents: states this one was generated from (proper supersets).
    pub parents: Vec<NodeId>,
    /// Frame id of the last State Traversal that visited this node.
    pub visited: u64,
    /// Frame id of the last frame appended to this node's frame set.
    pub touched: u64,
    /// In-window frames whose object set equals this node's object set
    /// (non-empty while the node is a principal state).
    pub principal_frames: Vec<FrameId>,
    /// Whether the node is live (false once removed; slots are reused).
    pub alive: bool,
}

impl Node {
    fn new(set: ObjectSet) -> Self {
        Node {
            set,
            frames: MarkedFrameSet::new(),
            children: Vec::new(),
            parents: Vec::new(),
            visited: NEVER,
            touched: NEVER,
            principal_frames: Vec::new(),
            alive: true,
        }
    }
}

/// Slab-allocated Strict State Graph with an object-set index.
#[derive(Debug, Default)]
pub(crate) struct StateGraph {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    by_set: HashMap<ObjectSet, NodeId>,
    pub edges_added: u64,
    pub edges_removed: u64,
}

impl StateGraph {
    pub fn new() -> Self {
        StateGraph::default()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.by_set.len()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Looks up the live node holding `set`.
    pub fn id_of(&self, set: &ObjectSet) -> Option<NodeId> {
        self.by_set.get(set).copied()
    }

    /// Inserts a new node for `set`; the set must not already be present.
    pub fn insert(&mut self, set: ObjectSet) -> NodeId {
        debug_assert!(
            !self.by_set.contains_key(&set),
            "duplicate node for {set:?}"
        );
        let node = Node::new(set.clone());
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id] = node;
                id
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.by_set.insert(set, id);
        id
    }

    /// Identifiers of all live nodes, in ascending slab order.
    ///
    /// Sorted so that bulk operations (the maintainer's periodic sweep)
    /// process nodes in a deterministic order: removal rewires edges, so
    /// iterating in `HashMap` order would make the edge counters — and the
    /// intermediate graph shape — differ between identical runs.
    pub fn live_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.by_set.values().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn add_edge(&mut self, parent: NodeId, child: NodeId) {
        if !self.nodes[parent].children.contains(&child) {
            self.nodes[parent].children.push(child);
            self.nodes[child].parents.push(parent);
            self.edges_added += 1;
        }
    }

    fn remove_edge(&mut self, parent: NodeId, child: NodeId) {
        if let Some(pos) = self.nodes[parent].children.iter().position(|&c| c == child) {
            self.nodes[parent].children.swap_remove(pos);
            self.edges_removed += 1;
        }
        if let Some(pos) = self.nodes[child].parents.iter().position(|&p| p == parent) {
            self.nodes[child].parents.swap_remove(pos);
        }
    }

    /// Connects `child` under `parent`, enforcing Properties 1 and 2.
    ///
    /// * If the child's object set is not a proper subset of the parent's,
    ///   the edge is refused (Property 1).
    /// * If an existing child of `parent` contains the new child's set, the
    ///   new child is attached under that child instead (it is the tighter
    ///   parent).
    /// * If the new child's set contains an existing child's set, that edge is
    ///   moved below the new child — the "Modifying Existing Edges" step of
    ///   Section 4.3.4.
    pub fn attach(&mut self, parent: NodeId, child: NodeId) {
        if parent == child {
            return;
        }
        if !self.nodes[child]
            .set
            .is_proper_subset_of(&self.nodes[parent].set)
        {
            return;
        }
        let siblings: Vec<NodeId> = self.nodes[parent].children.clone();
        for sibling in siblings {
            if sibling == child {
                return;
            }
            if !self.nodes[sibling].alive {
                continue;
            }
            if self.nodes[child]
                .set
                .is_proper_subset_of(&self.nodes[sibling].set)
            {
                // A tighter ancestor exists among the siblings; attach below it.
                self.attach(sibling, child);
                return;
            }
            if self.nodes[sibling]
                .set
                .is_proper_subset_of(&self.nodes[child].set)
            {
                // The new child is a tighter parent for this sibling.
                self.remove_edge(parent, sibling);
                self.attach(child, sibling);
            }
        }
        self.add_edge(parent, child);
    }

    /// Removes a node, reconnecting its parents to its children so that every
    /// descendant stays reachable from the surviving ancestors.
    pub fn remove(&mut self, id: NodeId) {
        if !self.nodes[id].alive {
            return;
        }
        let parents = self.nodes[id].parents.clone();
        let children = self.nodes[id].children.clone();
        for &parent in &parents {
            self.remove_edge(parent, id);
        }
        for &child in &children {
            self.remove_edge(id, child);
        }
        for &parent in &parents {
            if !self.nodes[parent].alive {
                continue;
            }
            for &child in &children {
                if self.nodes[child].alive {
                    self.attach(parent, child);
                }
            }
        }
        let set = self.nodes[id].set.clone();
        self.by_set.remove(&set);
        self.nodes[id].alive = false;
        self.nodes[id].children.clear();
        self.nodes[id].parents.clear();
        self.nodes[id].frames = MarkedFrameSet::new();
        self.nodes[id].principal_frames.clear();
        self.free.push(id);
    }

    /// All nodes reachable from `start` (inclusive) by following child edges
    /// (test support).
    #[cfg(test)]
    pub fn reachable(&self, start: NodeId) -> Vec<NodeId> {
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            for &child in &self.nodes[id].children {
                if self.nodes[child].alive && !seen.contains(&child) {
                    seen.push(child);
                    stack.push(child);
                }
            }
        }
        seen
    }

    /// Verifies Properties 1 and 2 over the whole graph (test support).
    #[cfg(test)]
    pub fn check_invariants(&self) {
        for (set, &id) in &self.by_set {
            let node = &self.nodes[id];
            assert!(node.alive);
            assert_eq!(&node.set, set);
            for &child in &node.children {
                assert!(
                    self.nodes[child].set.is_proper_subset_of(&node.set),
                    "property 1 violated: {:?} -> {:?}",
                    node.set,
                    self.nodes[child].set
                );
            }
            for (i, &a) in node.children.iter().enumerate() {
                for &b in node.children.iter().skip(i + 1) {
                    let sa = &self.nodes[a].set;
                    let sb = &self.nodes[b].set;
                    assert!(
                        !sa.is_subset_of(sb) && !sb.is_subset_of(sa),
                        "property 2 violated under {:?}: {sa:?} vs {sb:?}",
                        node.set
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn insert_and_lookup() {
        let mut g = StateGraph::new();
        let a = g.insert(set(&[1, 2, 3]));
        assert_eq!(g.id_of(&set(&[1, 2, 3])), Some(a));
        assert_eq!(g.id_of(&set(&[1])), None);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn attach_enforces_property_1() {
        let mut g = StateGraph::new();
        let a = g.insert(set(&[1, 2]));
        let b = g.insert(set(&[2, 3]));
        // {2,3} is not a subset of {1,2}: the edge is refused.
        g.attach(a, b);
        assert!(g.node(a).children.is_empty());
        g.check_invariants();
    }

    /// The example of Figure 3: adding {ABF} below {ABCF} must rewire the
    /// existing edge ({ABCF}, {AB}) to ({ABF}, {AB}).
    #[test]
    fn attach_rewires_contained_siblings_like_figure_3() {
        // A=1, B=2, C=3, D=4, F=6.
        let mut g = StateGraph::new();
        let abcf = g.insert(set(&[1, 2, 3, 6]));
        let abd = g.insert(set(&[1, 2, 4]));
        let ab = g.insert(set(&[1, 2]));
        g.attach(abcf, ab);
        g.attach(abd, ab);

        let abf = g.insert(set(&[1, 2, 6]));
        g.attach(abcf, abf);

        // {AB} is now reached through {ABF}, not directly from {ABCF}.
        assert!(!g.node(abcf).children.contains(&ab));
        assert!(g.node(abcf).children.contains(&abf));
        assert!(g.node(abf).children.contains(&ab));
        // {ABD} still points at {AB} (Figure 3d).
        assert!(g.node(abd).children.contains(&ab));
        g.check_invariants();
    }

    #[test]
    fn attach_descends_into_tighter_parent() {
        let mut g = StateGraph::new();
        let abc = g.insert(set(&[1, 2, 3]));
        let ab = g.insert(set(&[1, 2]));
        g.attach(abc, ab);
        let a = g.insert(set(&[1]));
        // Attaching {A} to {ABC} must land it under {AB}, the tighter parent.
        g.attach(abc, a);
        assert!(!g.node(abc).children.contains(&a));
        assert!(g.node(ab).children.contains(&a));
        g.check_invariants();
    }

    #[test]
    fn attach_is_idempotent() {
        let mut g = StateGraph::new();
        let abc = g.insert(set(&[1, 2, 3]));
        let ab = g.insert(set(&[1, 2]));
        g.attach(abc, ab);
        g.attach(abc, ab);
        assert_eq!(g.node(abc).children.len(), 1);
        assert_eq!(g.node(ab).parents.len(), 1);
        assert_eq!(g.edges_added, 1);
    }

    #[test]
    fn remove_reconnects_parents_to_children() {
        let mut g = StateGraph::new();
        let abcd = g.insert(set(&[1, 2, 3, 4]));
        let abc = g.insert(set(&[1, 2, 3]));
        let ab = g.insert(set(&[1, 2]));
        g.attach(abcd, abc);
        g.attach(abc, ab);
        g.remove(abc);
        assert_eq!(g.len(), 2);
        assert!(g.id_of(&set(&[1, 2, 3])).is_none());
        assert!(g.node(abcd).children.contains(&ab));
        g.check_invariants();
    }

    #[test]
    fn removed_slots_are_reused() {
        let mut g = StateGraph::new();
        let a = g.insert(set(&[1]));
        g.remove(a);
        let b = g.insert(set(&[2]));
        assert_eq!(a, b, "slab slot should be recycled");
        assert_eq!(g.len(), 1);
        assert!(g.id_of(&set(&[1])).is_none());
    }

    #[test]
    fn reachability_follows_child_edges() {
        let mut g = StateGraph::new();
        let abcd = g.insert(set(&[1, 2, 3, 4]));
        let abc = g.insert(set(&[1, 2, 3]));
        let ab = g.insert(set(&[1, 2]));
        let cd = g.insert(set(&[3, 4]));
        g.attach(abcd, abc);
        g.attach(abc, ab);
        g.attach(abcd, cd);
        let mut reachable = g.reachable(abc);
        reachable.sort_unstable();
        assert_eq!(
            reachable,
            vec![abc, ab].into_iter().collect::<Vec<_>>().tap_sorted()
        );
        let all = g.reachable(abcd);
        assert_eq!(all.len(), 4);
    }

    trait TapSorted {
        fn tap_sorted(self) -> Self;
    }
    impl TapSorted for Vec<NodeId> {
        fn tap_sorted(mut self) -> Self {
            self.sort_unstable();
            self
        }
    }
}
